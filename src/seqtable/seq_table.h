#ifndef COCONUT_SEQTABLE_SEQ_TABLE_H_
#define COCONUT_SEQTABLE_SEQ_TABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/entry.h"
#include "series/distance.h"
#include "series/isax.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace seqtable {

/// In-memory summary of one leaf page, loaded from the on-disk directory.
/// min_key orders leaves; [min_sym, max_sym] per segment define the leaf's
/// SAX bounding region for MINDIST page pruning during exact search.
struct LeafMeta {
  series::SortableKey min_key;
  series::SaxWord min_sym;
  series::SaxWord max_sym;
  uint32_t count = 0;
  /// Physical page holding this leaf. Contiguous (1 + ordinal) right after
  /// a bulk build; leaves appended by post-build inserts (splits) land at
  /// the end of the file, which is exactly how update traffic erodes a
  /// B-tree's contiguity.
  uint64_t page_no = 0;
};

/// Decoded contents of one leaf page.
struct LeafView {
  std::vector<core::IndexEntry> entries;
  /// Materialized tables only: entries.size() * series_length floats,
  /// series i at [i*len, (i+1)*len).
  std::vector<float> payloads;
};

/// Shape and materialization of a table.
struct SeqTableOptions {
  series::SaxConfig sax;
  /// Materialized tables embed the series values next to each entry.
  bool materialized = false;
  /// Fraction of each leaf filled at build time (CTree's update headroom
  /// knob). In (0, 1].
  double fill_factor = 1.0;
};

class SeqTable;

/// Streaming builder for the paper's Compact and Contiguous Sequence Table:
/// entries must arrive in sortable-key order (the output of an external
/// sort or an LSM merge) and are laid out densely page after page with
/// purely sequential writes. Finish() appends the leaf directory and writes
/// the header.
class SeqTableBuilder {
 public:
  static Result<std::unique_ptr<SeqTableBuilder>> Create(
      storage::StorageManager* storage, const std::string& name,
      const SeqTableOptions& options);

  /// Adds the next entry. `payload` must hold series_length values for
  /// materialized tables and be empty otherwise. Entries must be
  /// non-decreasing in key; out-of-order input is rejected.
  Status Add(const core::IndexEntry& entry, std::span<const float> payload);

  /// Seals the table. No Add calls may follow.
  Status Finish();

  uint64_t entries_added() const { return entries_added_; }

  /// Entries that fit in one leaf at the configured fill factor.
  size_t leaf_fill_target() const { return leaf_fill_target_; }

 private:
  SeqTableBuilder(storage::StorageManager* storage, std::string name,
                  const SeqTableOptions& options);

  Status OpenFile();
  Status FlushLeaf();

  storage::StorageManager* storage_;
  std::string name_;
  SeqTableOptions options_;
  std::unique_ptr<storage::File> file_;

  size_t record_size_;
  size_t leaf_capacity_;
  size_t leaf_fill_target_;

  // Current leaf accumulation.
  std::vector<core::IndexEntry> leaf_entries_;
  std::vector<float> leaf_payloads_;

  std::vector<LeafMeta> directory_;
  uint64_t entries_added_ = 0;
  int64_t min_timestamp_ = INT64_MAX;
  int64_t max_timestamp_ = INT64_MIN;
  series::SortableKey last_key_ = series::SortableKey::Min();
  bool finished_ = false;
};

/// Read-side of a sequence table. The leaf directory is resident in memory
/// (it is ~0.1% of the data size); leaf pages are fetched on demand,
/// optionally through a BufferPool.
class SeqTable {
 public:
  /// Opens a table previously sealed by SeqTableBuilder::Finish.
  /// `pool` may be nullptr (reads bypass caching).
  static Result<std::unique_ptr<SeqTable>> Open(
      storage::StorageManager* storage, const std::string& name,
      storage::BufferPool* pool);

  uint64_t num_entries() const { return num_entries_; }
  size_t num_leaves() const { return directory_.size(); }
  const SeqTableOptions& options() const { return options_; }
  const series::SaxConfig& sax() const { return options_.sax; }
  bool materialized() const { return options_.materialized; }
  const std::string& name() const { return name_; }

  /// Arrival-time range covered by this table (INT64_MAX/INT64_MIN when
  /// empty); drives temporal partition pruning in TP/BTP.
  int64_t min_timestamp() const { return min_timestamp_; }
  int64_t max_timestamp() const { return max_timestamp_; }

  const std::vector<LeafMeta>& directory() const { return directory_; }

  /// Index of the leaf whose key range contains `key` (the last leaf whose
  /// min_key <= key, clamped to leaf 0).
  size_t FindLeafForKey(const series::SortableKey& key) const;

  /// Reads and decodes leaf `leaf_idx`.
  Status ReadLeaf(size_t leaf_idx, LeafView* view) const;

  /// SAX bounding region of a leaf, for page-level MINDIST pruning.
  series::SaxRegion LeafRegion(size_t leaf_idx) const;

  /// Bytes of the backing file.
  uint64_t file_bytes() const { return file_->size_bytes(); }

  // -------------------------------------------------------------- updates
  // Post-build mutation support used by CTree. All three methods keep the
  // in-memory directory authoritative; PersistDirectory() writes it back.

  /// Rewrites leaf `leaf_idx` in place with `view` (must fit in one page).
  /// Directory metadata (count, key, SAX bounds) is recomputed.
  Status UpdateLeaf(size_t leaf_idx, const LeafView& view);

  /// Appends a brand-new leaf page at the end of the file and inserts its
  /// directory entry at position `dir_pos` (keeping key order). Returns the
  /// new leaf's directory index.
  Result<size_t> InsertLeaf(size_t dir_pos, const LeafView& view);

  /// Rewrites the directory and header after updates (appends a fresh
  /// directory region; the stale one becomes dead space, as in real
  /// copy-on-write directories).
  Status PersistDirectory();

  /// Entries per leaf page at 100% fill for this table's record size.
  size_t leaf_capacity() const { return leaf_capacity_; }

  /// Sequentially iterates every entry in key order (used by LSM merges and
  /// BTP partition consolidation).
  class Scanner {
   public:
    explicit Scanner(const SeqTable* table) : table_(table) {}

    /// Fetches the next entry. Returns false at the end. For materialized
    /// tables `payload` (if non-null) receives the series values.
    Result<bool> Next(core::IndexEntry* entry, std::vector<float>* payload);

   private:
    const SeqTable* table_;
    size_t leaf_idx_ = 0;
    size_t pos_in_leaf_ = 0;
    LeafView view_;
    bool view_loaded_ = false;
  };

  Scanner NewScanner() const { return Scanner(this); }

 private:
  SeqTable(storage::StorageManager* storage, std::string name,
           storage::BufferPool* pool)
      : storage_(storage), name_(std::move(name)), pool_(pool) {}

  Status Load();
  Status DecodeLeafPage(const storage::Page& page, LeafView* view) const;
  Status EncodeLeafPage(const LeafView& view, storage::Page* page) const;
  LeafMeta MetaFromView(const LeafView& view, uint64_t page_no) const;

  storage::StorageManager* storage_;
  std::string name_;
  storage::BufferPool* pool_;
  std::unique_ptr<storage::File> file_;

  SeqTableOptions options_;
  size_t record_size_ = 0;
  size_t leaf_capacity_ = 0;
  uint64_t num_entries_ = 0;
  int64_t min_timestamp_ = INT64_MAX;
  int64_t max_timestamp_ = INT64_MIN;
  std::vector<LeafMeta> directory_;
};

/// Record bytes per entry for a configuration.
size_t RecordSize(const SeqTableOptions& options);

/// Entries per leaf page at 100% fill.
size_t LeafCapacity(const SeqTableOptions& options);

}  // namespace seqtable
}  // namespace coconut

#endif  // COCONUT_SEQTABLE_SEQ_TABLE_H_
