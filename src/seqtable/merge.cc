#include "seqtable/merge.h"

#include <algorithm>

#include "core/entry.h"

namespace coconut {
namespace seqtable {

namespace {

using core::IndexEntry;

// One input with a single-entry lookahead.
struct Cursor {
  SeqTable::Scanner scanner;
  IndexEntry entry;
  std::vector<float> payload;
  bool has = false;

  explicit Cursor(const SeqTable* table) : scanner(table->NewScanner()) {}

  Status Advance() {
    auto r = scanner.Next(&entry, &payload);
    if (!r.ok()) return r.status();
    has = r.value();
    return Status::OK();
  }
};

}  // namespace

Result<std::unique_ptr<SeqTable>> MergeTables(
    storage::StorageManager* storage, const std::string& out_name,
    const SeqTableOptions& options, const std::vector<const SeqTable*>& inputs,
    storage::BufferPool* pool) {
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<SeqTableBuilder> builder,
                           SeqTableBuilder::Create(storage, out_name, options));

  std::vector<std::unique_ptr<Cursor>> cursors;
  cursors.reserve(inputs.size());
  for (const SeqTable* table : inputs) {
    auto cursor = std::make_unique<Cursor>(table);
    COCONUT_RETURN_NOT_OK(cursor->Advance());
    if (cursor->has) cursors.push_back(std::move(cursor));
  }

  // Small-k merge: linear scan for the minimum (k is the BTP merge factor
  // or the LSM level count — single digits).
  while (!cursors.empty()) {
    size_t min_idx = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      if (core::EntryKeyLess()(cursors[i]->entry, cursors[min_idx]->entry)) {
        min_idx = i;
      }
    }
    Cursor* c = cursors[min_idx].get();
    COCONUT_RETURN_NOT_OK(builder->Add(
        c->entry, options.materialized ? std::span<const float>(c->payload)
                                       : std::span<const float>()));
    COCONUT_RETURN_NOT_OK(c->Advance());
    if (!c->has) cursors.erase(cursors.begin() + min_idx);
  }

  COCONUT_RETURN_NOT_OK(builder->Finish());
  return SeqTable::Open(storage, out_name, pool);
}

}  // namespace seqtable
}  // namespace coconut
