#include "seqtable/table_search.h"

#include <algorithm>

#include "series/distance.h"
#include "series/paa.h"

namespace coconut {
namespace seqtable {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;

// A candidate awaiting verification, ordered by its lower bound.
struct Candidate {
  double mindist;
  size_t index_in_leaf;
};

}  // namespace

SearchContext MakeSearchContext(const series::SaxConfig& sax,
                                std::span<const float> query,
                                std::vector<float>* paa_storage,
                                core::RawSeriesStore* raw,
                                core::QueryCounters* counters) {
  SearchContext ctx;
  ctx.sax = sax;
  ctx.query = query;
  *paa_storage = series::ComputePaa(query, sax.num_segments);
  ctx.query_paa = *paa_storage;
  ctx.query_key =
      series::InterleaveSax(series::ComputeSaxFromPaa(*paa_storage, sax), sax);
  ctx.raw = raw;
  ctx.counters = counters;
  return ctx;
}

Status VerifyCandidate(const SearchContext& ctx, const IndexEntry& entry,
                       std::span<const float> payload, SearchResult* best) {
  std::vector<float> fetched;
  std::span<const float> values = payload;
  if (values.empty()) {
    if (ctx.raw == nullptr) {
      return Status::Internal(
          "non-materialized verification requires a raw store");
    }
    fetched.resize(ctx.sax.series_length);
    COCONUT_RETURN_NOT_OK(ctx.raw->Get(entry.series_id, fetched));
    values = fetched;
    if (ctx.counters != nullptr) ++ctx.counters->raw_fetches;
  }
  const double d = series::EuclideanSquaredEarlyAbandon(ctx.query, values,
                                                        best->distance_sq);
  SearchResult candidate;
  candidate.found = true;
  candidate.series_id = entry.series_id;
  candidate.distance_sq = d;
  candidate.timestamp = entry.timestamp;
  best->Improve(candidate);
  return Status::OK();
}

Status EvaluateCandidates(const SearchContext& ctx,
                          const SearchOptions& options,
                          std::span<const IndexEntry> entries,
                          std::span<const float> payloads, bool materialized,
                          int max_verifications, SearchResult* best) {
  std::vector<Candidate> candidates;
  candidates.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const IndexEntry& entry = entries[i];
    if (!options.window.Contains(entry.timestamp)) continue;
    if (ctx.counters != nullptr) ++ctx.counters->entries_examined;
    const series::SaxWord word = series::DeinterleaveKey(entry.key, ctx.sax);
    const double lb = series::MinDistSquaredToSax(ctx.query_paa, word, ctx.sax);
    candidates.push_back(Candidate{lb, i});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.mindist < b.mindist;
            });
  const size_t limit = max_verifications < 0
                           ? candidates.size()
                           : std::min<size_t>(candidates.size(),
                                              static_cast<size_t>(
                                                  max_verifications));
  const size_t len = ctx.sax.series_length;
  for (size_t c = 0; c < limit; ++c) {
    const Candidate& cand = candidates[c];
    // The lower bound only tightens as best improves; stop early.
    if (cand.mindist >= best->distance_sq) break;
    std::span<const float> payload;
    if (materialized) {
      payload = std::span<const float>(
          payloads.data() + cand.index_in_leaf * len, len);
    }
    COCONUT_RETURN_NOT_OK(
        VerifyCandidate(ctx, entries[cand.index_in_leaf], payload, best));
  }
  return Status::OK();
}

namespace {

// Evaluates one loaded leaf via EvaluateCandidates.
Status EvaluateLeaf(const SeqTable& table, const SearchContext& ctx,
                    const SearchOptions& options, const LeafView& view,
                    int max_verifications, SearchResult* best) {
  return EvaluateCandidates(ctx, options, view.entries, view.payloads,
                            table.materialized(), max_verifications, best);
}

}  // namespace

Result<SearchResult> ApproxSearchTable(const SeqTable& table,
                                       const SearchContext& ctx,
                                       const SearchOptions& options) {
  SearchResult best;
  if (table.num_leaves() == 0) return best;

  const size_t home = table.FindLeafForKey(ctx.query_key);
  // Probe the home leaf; if a time window filtered out every entry, widen
  // outward ring by ring so streaming queries still return an answer.
  const size_t max_ring = table.num_leaves();
  for (size_t ring = 0; ring < max_ring; ++ring) {
    bool probed_any = false;
    for (int side = 0; side < 2; ++side) {
      if (ring == 0 && side == 1) continue;
      size_t idx;
      if (side == 0) {
        if (home + ring >= table.num_leaves()) continue;
        idx = home + ring;
      } else {
        if (ring > home) continue;
        idx = home - ring;
      }
      probed_any = true;
      LeafView view;
      COCONUT_RETURN_NOT_OK(table.ReadLeaf(idx, &view));
      if (ctx.counters != nullptr) ++ctx.counters->leaves_visited;
      COCONUT_RETURN_NOT_OK(EvaluateLeaf(table, ctx, options, view,
                                         options.approx_candidates, &best));
    }
    if (best.found) break;
    if (!probed_any) break;
  }
  return best;
}

double KnnCollector::bound() const {
  if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
  return heap_.front().distance_sq;
}

namespace {
bool FartherFirst(const SearchResult& a, const SearchResult& b) {
  return a.distance_sq < b.distance_sq;
}
}  // namespace

void KnnCollector::Offer(const SearchResult& result) {
  if (!result.found || result.distance_sq >= bound()) return;
  // Collapse duplicate ids: keep only the closer observation.
  for (auto& existing : heap_) {
    if (existing.series_id == result.series_id) {
      if (result.distance_sq < existing.distance_sq) {
        existing = result;
        std::make_heap(heap_.begin(), heap_.end(), FartherFirst);
      }
      return;
    }
  }
  heap_.push_back(result);
  std::push_heap(heap_.begin(), heap_.end(), FartherFirst);
  if (heap_.size() > k_) {
    std::pop_heap(heap_.begin(), heap_.end(), FartherFirst);
    heap_.pop_back();
  }
}

std::vector<SearchResult> KnnCollector::Take() {
  std::sort_heap(heap_.begin(), heap_.end(), FartherFirst);
  return std::move(heap_);
}

Status ExactKnnScanTable(const SeqTable& table, const SearchContext& ctx,
                         const SearchOptions& options,
                         KnnCollector* collector) {
  const size_t len = ctx.sax.series_length;
  for (size_t leaf = 0; leaf < table.num_leaves(); ++leaf) {
    const series::SaxRegion region = table.LeafRegion(leaf);
    if (series::MinDistSquared(ctx.query_paa, region, ctx.sax) >=
        collector->bound()) {
      if (ctx.counters != nullptr) ++ctx.counters->leaves_pruned;
      continue;
    }
    LeafView view;
    COCONUT_RETURN_NOT_OK(table.ReadLeaf(leaf, &view));
    if (ctx.counters != nullptr) ++ctx.counters->leaves_visited;
    for (size_t i = 0; i < view.entries.size(); ++i) {
      const IndexEntry& entry = view.entries[i];
      if (!options.window.Contains(entry.timestamp)) continue;
      if (ctx.counters != nullptr) ++ctx.counters->entries_examined;
      const series::SaxWord word =
          series::DeinterleaveKey(entry.key, ctx.sax);
      if (series::MinDistSquaredToSax(ctx.query_paa, word, ctx.sax) >=
          collector->bound()) {
        continue;
      }
      SearchResult candidate;
      candidate.found = true;
      candidate.series_id = entry.series_id;
      candidate.timestamp = entry.timestamp;
      std::vector<float> fetched;
      std::span<const float> values;
      if (table.materialized()) {
        values = std::span<const float>(view.payloads.data() + i * len, len);
      } else {
        if (ctx.raw == nullptr) {
          return Status::Internal("kNN verification requires a raw store");
        }
        fetched.resize(len);
        COCONUT_RETURN_NOT_OK(ctx.raw->Get(entry.series_id, fetched));
        values = fetched;
        if (ctx.counters != nullptr) ++ctx.counters->raw_fetches;
      }
      candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
          ctx.query, values, collector->bound());
      collector->Offer(candidate);
    }
  }
  return Status::OK();
}

Status ExactScanTableMulti(const SeqTable& table,
                           std::span<const SearchContext> ctxs,
                           const core::SearchOptions& options,
                           std::span<core::SearchResult> bests) {
  const size_t nq = ctxs.size();
  if (nq == 0) return Status::OK();
  if (nq == 1) return ExactScanTable(table, ctxs[0], options, &bests[0]);
  const series::SaxConfig& sax = ctxs[0].sax;
  const size_t len = sax.series_length;

  std::vector<char> leaf_live(nq, 0);
  std::vector<size_t> verify;  // ordinals scoring the current entry
  std::vector<const float*> qptrs;
  std::vector<double> thresholds;
  std::vector<double> dists(nq);
  std::vector<float> fetched(len);
  verify.reserve(nq);
  qptrs.reserve(nq);
  thresholds.reserve(nq);

  for (size_t leaf = 0; leaf < table.num_leaves(); ++leaf) {
    const series::SaxRegion region = table.LeafRegion(leaf);
    bool any_live = false;
    for (size_t q = 0; q < nq; ++q) {
      const bool live =
          series::MinDistSquared(ctxs[q].query_paa, region, sax) <
          bests[q].distance_sq;
      leaf_live[q] = live;
      if (live) {
        any_live = true;
      } else if (ctxs[q].counters != nullptr) {
        ++ctxs[q].counters->leaves_pruned;
      }
    }
    if (!any_live) continue;
    LeafView view;
    COCONUT_RETURN_NOT_OK(table.ReadLeaf(leaf, &view));
    for (size_t q = 0; q < nq; ++q) {
      if (leaf_live[q] && ctxs[q].counters != nullptr) {
        ++ctxs[q].counters->leaves_visited;
      }
    }
    for (size_t i = 0; i < view.entries.size(); ++i) {
      const IndexEntry& entry = view.entries[i];
      if (!options.window.Contains(entry.timestamp)) continue;
      // One deinterleave + region build serves the whole batch.
      const series::SaxWord word = series::DeinterleaveKey(entry.key, sax);
      const series::SaxRegion entry_region = series::RegionFromSax(word, sax);
      verify.clear();
      qptrs.clear();
      thresholds.clear();
      for (size_t q = 0; q < nq; ++q) {
        if (!leaf_live[q]) continue;
        if (ctxs[q].counters != nullptr) ++ctxs[q].counters->entries_examined;
        if (series::MinDistSquared(ctxs[q].query_paa, entry_region, sax) >=
            bests[q].distance_sq) {
          continue;
        }
        verify.push_back(q);
        qptrs.push_back(ctxs[q].query.data());
        thresholds.push_back(bests[q].distance_sq);
      }
      if (verify.empty()) continue;
      std::span<const float> values;
      if (table.materialized()) {
        values =
            std::span<const float>(view.payloads.data() + i * len, len);
      } else {
        if (ctxs[0].raw == nullptr) {
          return Status::Internal(
              "batched verification requires a raw store");
        }
        COCONUT_RETURN_NOT_OK(ctxs[0].raw->Get(entry.series_id, fetched));
        values = fetched;
        // One physical fetch serves every query of the batch; charge it to
        // the first verifying query so raw_fetches still counts real I/O.
        if (ctxs[verify[0]].counters != nullptr) {
          ++ctxs[verify[0]].counters->raw_fetches;
        }
      }
      series::EuclideanSquaredEarlyAbandonBatch(
          values,
          std::span<const float* const>(qptrs.data(), qptrs.size()),
          std::span<const double>(thresholds.data(), thresholds.size()),
          std::span<double>(dists.data(), verify.size()));
      for (size_t v = 0; v < verify.size(); ++v) {
        SearchResult candidate;
        candidate.found = true;
        candidate.series_id = entry.series_id;
        candidate.timestamp = entry.timestamp;
        candidate.distance_sq = dists[v];
        bests[verify[v]].Improve(candidate);
      }
    }
  }
  return Status::OK();
}

Status ExactScanTable(const SeqTable& table, const SearchContext& ctx,
                      const SearchOptions& options, SearchResult* best) {
  for (size_t leaf = 0; leaf < table.num_leaves(); ++leaf) {
    const series::SaxRegion region = table.LeafRegion(leaf);
    const double leaf_lb =
        series::MinDistSquared(ctx.query_paa, region, ctx.sax);
    if (leaf_lb >= best->distance_sq) {
      if (ctx.counters != nullptr) ++ctx.counters->leaves_pruned;
      continue;
    }
    LeafView view;
    COCONUT_RETURN_NOT_OK(table.ReadLeaf(leaf, &view));
    if (ctx.counters != nullptr) ++ctx.counters->leaves_visited;
    COCONUT_RETURN_NOT_OK(EvaluateLeaf(table, ctx, options, view,
                                       /*max_verifications=*/-1, best));
  }
  return Status::OK();
}

}  // namespace seqtable
}  // namespace coconut
