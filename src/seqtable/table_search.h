#ifndef COCONUT_SEQTABLE_TABLE_SEARCH_H_
#define COCONUT_SEQTABLE_TABLE_SEARCH_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "seqtable/seq_table.h"

namespace coconut {
namespace seqtable {

/// Everything a query needs, bundled so the same engine serves CTree, CLSM
/// levels and TP/BTP partitions. The query must already be z-normalized.
struct SearchContext {
  series::SaxConfig sax;
  std::span<const float> query;      ///< z-normalized query values.
  std::span<const float> query_paa;  ///< PAA of the query.
  series::SortableKey query_key;     ///< Interleaved key of the query.
  /// Raw store for verification fetches on non-materialized tables. May be
  /// nullptr for materialized-only search.
  core::RawSeriesStore* raw = nullptr;
  /// Optional per-query counters.
  core::QueryCounters* counters = nullptr;
};

/// Builds a SearchContext from a z-normalized query. The PAA buffer is
/// owned by the caller via `paa_storage`.
SearchContext MakeSearchContext(const series::SaxConfig& sax,
                                std::span<const float> query,
                                std::vector<float>* paa_storage,
                                core::RawSeriesStore* raw,
                                core::QueryCounters* counters);

/// Approximate search: probes the leaf whose key range contains the query
/// key (the iSAX intuition: co-located summarizations are likely near
/// neighbors), ranks its entries by MINDIST, and verifies the best
/// `options.approx_candidates` candidates against the actual series.
/// Widens to neighboring leaves when a time window filters everything out.
Result<core::SearchResult> ApproxSearchTable(const SeqTable& table,
                                             const SearchContext& ctx,
                                             const core::SearchOptions& options);

/// Exact-search continuation: skip-sequential scan of the whole leaf level.
/// Leaves whose SAX bounding region lower-bounds above best-so-far are
/// skipped without I/O; surviving entries are verified with early-abandon
/// Euclidean distance. Improves `best` in place (callers seed it with an
/// approximate answer; CLSM calls this once per level with a shared best).
Status ExactScanTable(const SeqTable& table, const SearchContext& ctx,
                      const core::SearchOptions& options,
                      core::SearchResult* best);

/// Verifies one candidate entry: fetches the series (payload or raw store),
/// computes the true distance with early abandon against best->distance_sq,
/// and improves *best. `payload` may be empty for non-materialized tables.
Status VerifyCandidate(const SearchContext& ctx, const core::IndexEntry& entry,
                       std::span<const float> payload,
                       core::SearchResult* best);

/// Evaluates a flat batch of entries (an in-memory buffer, an ADS+ leaf, a
/// decoded page): filters by options.window, ranks by MINDIST, verifies the
/// `max_verifications` most promising (all when < 0) with shared-bsf
/// pruning. `payloads` holds entries.size()*series_length floats when
/// `materialized`, else is ignored.
Status EvaluateCandidates(const SearchContext& ctx,
                          const core::SearchOptions& options,
                          std::span<const core::IndexEntry> entries,
                          std::span<const float> payloads, bool materialized,
                          int max_verifications, core::SearchResult* best);

/// Accumulates the k nearest neighbors during a search. The pruning bound
/// is the distance of the current k-th best (infinite until k results are
/// collected), so single-NN search is the k=1 special case.
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// Current pruning bound: the k-th best squared distance (or +inf).
  double bound() const;

  /// Offers one verified result; keeps it if it beats the k-th best.
  /// Duplicate series ids are collapsed (the closer one wins).
  void Offer(const core::SearchResult& result);

  /// Results sorted by ascending distance.
  std::vector<core::SearchResult> Take();

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }

 private:
  size_t k_;
  // Max-heap by distance: the root is the current k-th best.
  std::vector<core::SearchResult> heap_;
};

/// Exact k-nearest-neighbors over a table: the same skip-sequential scan
/// as ExactScanTable, pruning with the collector's k-th-best bound.
/// Callers seed the collector across tables/partitions and Take() at the
/// end; timestamps are filtered by options.window as usual.
Status ExactKnnScanTable(const SeqTable& table, const SearchContext& ctx,
                         const core::SearchOptions& options,
                         KnnCollector* collector);

/// Multi-query exact-search continuation: ONE skip-sequential scan of the
/// leaf level scores every query, so each leaf read, key deinterleave and
/// region build is shared across the batch and candidate verification goes
/// through the batched early-abandon distance kernel. All contexts must
/// share the table's SaxConfig (their counters may differ; a raw fetch
/// shared by several queries is attributed to the first verifying one).
/// Improves bests[q] in place, exactly like per-query ExactScanTable calls
/// would — entries are verified in entry order rather than mindist-sorted
/// order, which can only differ on exact distance ties.
Status ExactScanTableMulti(const SeqTable& table,
                           std::span<const SearchContext> ctxs,
                           const core::SearchOptions& options,
                           std::span<core::SearchResult> bests);

}  // namespace seqtable
}  // namespace coconut

#endif  // COCONUT_SEQTABLE_TABLE_SEARCH_H_
