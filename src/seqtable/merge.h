#ifndef COCONUT_SEQTABLE_MERGE_H_
#define COCONUT_SEQTABLE_MERGE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "seqtable/seq_table.h"

namespace coconut {
namespace seqtable {

/// Sort-merges any number of SeqTables into a fresh table named `out_name`
/// (sequential reads of every input, sequential write of the output) and
/// opens it. The inputs are left untouched; callers delete them when the
/// swap is complete. This is the primitive behind BTP's partition
/// consolidation — possible only because summarizations sort.
Result<std::unique_ptr<SeqTable>> MergeTables(
    storage::StorageManager* storage, const std::string& out_name,
    const SeqTableOptions& options, const std::vector<const SeqTable*>& inputs,
    storage::BufferPool* pool);

}  // namespace seqtable
}  // namespace coconut

#endif  // COCONUT_SEQTABLE_MERGE_H_
