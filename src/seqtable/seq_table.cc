#include "seqtable/seq_table.h"

#include <algorithm>
#include <cstring>

namespace coconut {
namespace seqtable {

namespace {

using core::IndexEntry;
using series::SaxWord;
using series::SortableKey;
using storage::kPageSize;
using storage::Page;

constexpr uint64_t kMagic = 0xC0C0471AB1E00001ULL;
constexpr uint32_t kVersion = 1;
constexpr size_t kLeafHeaderBytes = 16;
constexpr size_t kDirEntryBytes = 64;

// Header page field offsets.
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 8;
constexpr size_t kOffSeriesLength = 12;
constexpr size_t kOffNumSegments = 16;
constexpr size_t kOffBitsPerSegment = 20;
constexpr size_t kOffMaterialized = 24;
constexpr size_t kOffFillPercent = 28;
constexpr size_t kOffNumEntries = 32;
constexpr size_t kOffNumLeaves = 40;
constexpr size_t kOffDirOffset = 48;
constexpr size_t kOffMinTimestamp = 56;
constexpr size_t kOffMaxTimestamp = 64;

void EncodeDirEntry(const LeafMeta& meta, uint8_t* out) {
  std::memcpy(out, &meta.min_key.words[0], 8);
  std::memcpy(out + 8, &meta.min_key.words[1], 8);
  std::memcpy(out + 16, meta.min_sym.data(), 16);
  std::memcpy(out + 32, meta.max_sym.data(), 16);
  std::memcpy(out + 48, &meta.count, 4);
  std::memset(out + 52, 0, 4);
  std::memcpy(out + 56, &meta.page_no, 8);
}

LeafMeta DecodeDirEntry(const uint8_t* in) {
  LeafMeta meta;
  std::memcpy(&meta.min_key.words[0], in, 8);
  std::memcpy(&meta.min_key.words[1], in + 8, 8);
  std::memcpy(meta.min_sym.data(), in + 16, 16);
  std::memcpy(meta.max_sym.data(), in + 32, 16);
  std::memcpy(&meta.count, in + 48, 4);
  std::memcpy(&meta.page_no, in + 56, 8);
  return meta;
}

}  // namespace

size_t RecordSize(const SeqTableOptions& options) {
  size_t size = sizeof(IndexEntry);
  if (options.materialized) {
    size += static_cast<size_t>(options.sax.series_length) * sizeof(float);
  }
  return size;
}

size_t LeafCapacity(const SeqTableOptions& options) {
  return (kPageSize - kLeafHeaderBytes) / RecordSize(options);
}

// ---------------------------------------------------------------- Builder

SeqTableBuilder::SeqTableBuilder(storage::StorageManager* storage,
                                 std::string name,
                                 const SeqTableOptions& options)
    : storage_(storage), name_(std::move(name)), options_(options) {
  record_size_ = RecordSize(options_);
  leaf_capacity_ = LeafCapacity(options_);
  leaf_fill_target_ = std::max<size_t>(
      1, static_cast<size_t>(leaf_capacity_ * options_.fill_factor));
}

Result<std::unique_ptr<SeqTableBuilder>> SeqTableBuilder::Create(
    storage::StorageManager* storage, const std::string& name,
    const SeqTableOptions& options) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.fill_factor <= 0.0 || options.fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  if (LeafCapacity(options) == 0) {
    return Status::InvalidArgument(
        "series too long to materialize inside a page (max 1012 points)");
  }
  auto builder = std::unique_ptr<SeqTableBuilder>(
      new SeqTableBuilder(storage, name, options));
  COCONUT_RETURN_NOT_OK(builder->OpenFile());
  return builder;
}

Status SeqTableBuilder::OpenFile() {
  COCONUT_ASSIGN_OR_RETURN(file_, storage_->CreateFile(name_));
  return Status::OK();
}

Status SeqTableBuilder::Add(const core::IndexEntry& entry,
                            std::span<const float> payload) {
  if (finished_) return Status::Internal("Add after Finish");
  if (options_.materialized) {
    if (payload.size() != static_cast<size_t>(options_.sax.series_length)) {
      return Status::InvalidArgument("payload length mismatch");
    }
  } else if (!payload.empty()) {
    return Status::InvalidArgument("payload given to non-materialized table");
  }
  if (entry.key < last_key_) {
    return Status::InvalidArgument(
        "entries must be added in sortable-key order");
  }
  last_key_ = entry.key;

  leaf_entries_.push_back(entry);
  if (options_.materialized) {
    leaf_payloads_.insert(leaf_payloads_.end(), payload.begin(), payload.end());
  }
  min_timestamp_ = std::min(min_timestamp_, entry.timestamp);
  max_timestamp_ = std::max(max_timestamp_, entry.timestamp);
  ++entries_added_;

  if (leaf_entries_.size() >= leaf_fill_target_) {
    COCONUT_RETURN_NOT_OK(FlushLeaf());
  }
  return Status::OK();
}

Status SeqTableBuilder::FlushLeaf() {
  if (leaf_entries_.empty()) return Status::OK();

  Page page;
  const uint32_t count = static_cast<uint32_t>(leaf_entries_.size());
  page.Write<uint32_t>(0, count);
  size_t off = kLeafHeaderBytes;
  const size_t len = options_.sax.series_length;
  for (size_t i = 0; i < leaf_entries_.size(); ++i) {
    std::memcpy(page.data() + off, &leaf_entries_[i], sizeof(IndexEntry));
    off += sizeof(IndexEntry);
    if (options_.materialized) {
      std::memcpy(page.data() + off, leaf_payloads_.data() + i * len,
                  len * sizeof(float));
      off += len * sizeof(float);
    }
  }
  COCONUT_RETURN_NOT_OK(file_->Append(page.data(), kPageSize));

  // Directory metadata: min key plus the per-segment SAX bounding box.
  LeafMeta meta;
  meta.min_key = leaf_entries_.front().key;
  meta.count = count;
  meta.page_no = directory_.size();
  meta.min_sym.fill(0xFF);
  meta.max_sym.fill(0);
  for (const auto& entry : leaf_entries_) {
    SaxWord word = series::DeinterleaveKey(entry.key, options_.sax);
    for (int s = 0; s < options_.sax.num_segments; ++s) {
      meta.min_sym[s] = std::min(meta.min_sym[s], word[s]);
      meta.max_sym[s] = std::max(meta.max_sym[s], word[s]);
    }
  }
  directory_.push_back(meta);

  leaf_entries_.clear();
  leaf_payloads_.clear();
  return Status::OK();
}

Status SeqTableBuilder::Finish() {
  if (finished_) return Status::Internal("Finish called twice");
  COCONUT_RETURN_NOT_OK(FlushLeaf());
  finished_ = true;

  const uint64_t dir_offset = file_->size_bytes();
  std::vector<uint8_t> dir_bytes(directory_.size() * kDirEntryBytes);
  for (size_t i = 0; i < directory_.size(); ++i) {
    EncodeDirEntry(directory_[i], dir_bytes.data() + i * kDirEntryBytes);
  }
  // Pad to a page boundary so the footer occupies one aligned page.
  const size_t padded =
      ((dir_bytes.size() + kPageSize - 1) / kPageSize) * kPageSize;
  dir_bytes.resize(padded, 0);
  if (!dir_bytes.empty()) {
    COCONUT_RETURN_NOT_OK(file_->Append(dir_bytes.data(), dir_bytes.size()));
  }

  // Metadata lives in a footer page appended at the very end (like an
  // SSTable footer): sealing a run is a purely sequential operation — no
  // backward seek to a header block.
  Page footer;
  footer.Write<uint64_t>(kOffMagic, kMagic);
  footer.Write<uint32_t>(kOffVersion, kVersion);
  footer.Write<uint32_t>(kOffSeriesLength,
                         static_cast<uint32_t>(options_.sax.series_length));
  footer.Write<uint32_t>(kOffNumSegments,
                         static_cast<uint32_t>(options_.sax.num_segments));
  footer.Write<uint32_t>(kOffBitsPerSegment,
                         static_cast<uint32_t>(options_.sax.bits_per_segment));
  footer.Write<uint32_t>(kOffMaterialized, options_.materialized ? 1 : 0);
  footer.Write<uint32_t>(kOffFillPercent,
                         static_cast<uint32_t>(options_.fill_factor * 10000));
  footer.Write<uint64_t>(kOffNumEntries, entries_added_);
  footer.Write<uint64_t>(kOffNumLeaves, directory_.size());
  footer.Write<uint64_t>(kOffDirOffset, dir_offset);
  footer.Write<int64_t>(kOffMinTimestamp, min_timestamp_);
  footer.Write<int64_t>(kOffMaxTimestamp, max_timestamp_);
  COCONUT_RETURN_NOT_OK(file_->Append(footer.data(), kPageSize));
  return file_->Sync();
}

// ---------------------------------------------------------------- Reader

Result<std::unique_ptr<SeqTable>> SeqTable::Open(
    storage::StorageManager* storage, const std::string& name,
    storage::BufferPool* pool) {
  auto table =
      std::unique_ptr<SeqTable>(new SeqTable(storage, name, pool));
  COCONUT_RETURN_NOT_OK(table->Load());
  return table;
}

Status SeqTable::Load() {
  COCONUT_ASSIGN_OR_RETURN(file_, storage_->OpenFile(name_));
  if (file_->num_pages() == 0) {
    return Status::InvalidArgument("'" + name_ + "' is empty");
  }
  Page header;
  COCONUT_RETURN_NOT_OK(file_->ReadPage(file_->num_pages() - 1, &header));
  if (header.Read<uint64_t>(kOffMagic) != kMagic) {
    return Status::InvalidArgument("'" + name_ + "' is not a SeqTable");
  }
  if (header.Read<uint32_t>(kOffVersion) != kVersion) {
    return Status::NotSupported("unsupported SeqTable version");
  }
  options_.sax.series_length =
      static_cast<int>(header.Read<uint32_t>(kOffSeriesLength));
  options_.sax.num_segments =
      static_cast<int>(header.Read<uint32_t>(kOffNumSegments));
  options_.sax.bits_per_segment =
      static_cast<int>(header.Read<uint32_t>(kOffBitsPerSegment));
  options_.materialized = header.Read<uint32_t>(kOffMaterialized) != 0;
  options_.fill_factor = header.Read<uint32_t>(kOffFillPercent) / 10000.0;
  num_entries_ = header.Read<uint64_t>(kOffNumEntries);
  const uint64_t num_leaves = header.Read<uint64_t>(kOffNumLeaves);
  const uint64_t dir_offset = header.Read<uint64_t>(kOffDirOffset);
  min_timestamp_ = header.Read<int64_t>(kOffMinTimestamp);
  max_timestamp_ = header.Read<int64_t>(kOffMaxTimestamp);
  record_size_ = RecordSize(options_);
  leaf_capacity_ = LeafCapacity(options_);

  directory_.resize(num_leaves);
  if (num_leaves > 0) {
    std::vector<uint8_t> dir_bytes(num_leaves * kDirEntryBytes);
    COCONUT_RETURN_NOT_OK(
        file_->ReadAt(dir_offset, dir_bytes.data(), dir_bytes.size()));
    for (uint64_t i = 0; i < num_leaves; ++i) {
      directory_[i] = DecodeDirEntry(dir_bytes.data() + i * kDirEntryBytes);
    }
  }
  return Status::OK();
}

size_t SeqTable::FindLeafForKey(const series::SortableKey& key) const {
  if (directory_.empty()) return 0;
  // First leaf whose min_key > key, then step back.
  auto it = std::upper_bound(
      directory_.begin(), directory_.end(), key,
      [](const SortableKey& k, const LeafMeta& m) { return k < m.min_key; });
  if (it == directory_.begin()) return 0;
  return static_cast<size_t>(it - directory_.begin()) - 1;
}

Status SeqTable::ReadLeaf(size_t leaf_idx, LeafView* view) const {
  if (leaf_idx >= directory_.size()) {
    return Status::OutOfRange("leaf index out of range");
  }
  const uint64_t page_no = directory_[leaf_idx].page_no;
  if (pool_ != nullptr) {
    COCONUT_ASSIGN_OR_RETURN(const Page* page,
                             pool_->GetPage(file_.get(), page_no));
    return DecodeLeafPage(*page, view);
  }
  Page page;
  COCONUT_RETURN_NOT_OK(file_->ReadPage(page_no, &page));
  return DecodeLeafPage(page, view);
}

Status SeqTable::DecodeLeafPage(const storage::Page& page,
                                LeafView* view) const {
  const uint32_t count = page.Read<uint32_t>(0);
  const size_t len = options_.sax.series_length;
  view->entries.resize(count);
  view->payloads.clear();
  if (options_.materialized) view->payloads.resize(count * len);
  size_t off = kLeafHeaderBytes;
  for (uint32_t i = 0; i < count; ++i) {
    std::memcpy(&view->entries[i], page.data() + off, sizeof(IndexEntry));
    off += sizeof(IndexEntry);
    if (options_.materialized) {
      std::memcpy(view->payloads.data() + i * len, page.data() + off,
                  len * sizeof(float));
      off += len * sizeof(float);
    }
  }
  return Status::OK();
}

Status SeqTable::EncodeLeafPage(const LeafView& view,
                                storage::Page* page) const {
  if (view.entries.size() > leaf_capacity_) {
    return Status::InvalidArgument("leaf view exceeds page capacity");
  }
  page->Clear();
  page->Write<uint32_t>(0, static_cast<uint32_t>(view.entries.size()));
  size_t off = kLeafHeaderBytes;
  const size_t len = options_.sax.series_length;
  for (size_t i = 0; i < view.entries.size(); ++i) {
    std::memcpy(page->data() + off, &view.entries[i], sizeof(IndexEntry));
    off += sizeof(IndexEntry);
    if (options_.materialized) {
      std::memcpy(page->data() + off, view.payloads.data() + i * len,
                  len * sizeof(float));
      off += len * sizeof(float);
    }
  }
  return Status::OK();
}

LeafMeta SeqTable::MetaFromView(const LeafView& view, uint64_t page_no) const {
  LeafMeta meta;
  meta.count = static_cast<uint32_t>(view.entries.size());
  meta.page_no = page_no;
  meta.min_sym.fill(0xFF);
  meta.max_sym.fill(0);
  if (!view.entries.empty()) meta.min_key = view.entries.front().key;
  for (const auto& entry : view.entries) {
    SaxWord word = series::DeinterleaveKey(entry.key, options_.sax);
    for (int s = 0; s < options_.sax.num_segments; ++s) {
      meta.min_sym[s] = std::min(meta.min_sym[s], word[s]);
      meta.max_sym[s] = std::max(meta.max_sym[s], word[s]);
    }
  }
  return meta;
}

Status SeqTable::UpdateLeaf(size_t leaf_idx, const LeafView& view) {
  if (leaf_idx >= directory_.size()) {
    return Status::OutOfRange("leaf index out of range");
  }
  const uint64_t page_no = directory_[leaf_idx].page_no;
  Page page;
  COCONUT_RETURN_NOT_OK(EncodeLeafPage(view, &page));
  COCONUT_RETURN_NOT_OK(file_->WritePage(page_no, page));
  const uint32_t old_count = directory_[leaf_idx].count;
  directory_[leaf_idx] = MetaFromView(view, page_no);
  num_entries_ += directory_[leaf_idx].count;
  num_entries_ -= old_count;
  for (const auto& entry : view.entries) {
    min_timestamp_ = std::min(min_timestamp_, entry.timestamp);
    max_timestamp_ = std::max(max_timestamp_, entry.timestamp);
  }
  if (pool_ != nullptr) pool_->Invalidate(file_->file_id());
  return Status::OK();
}

Result<size_t> SeqTable::InsertLeaf(size_t dir_pos, const LeafView& view) {
  if (dir_pos > directory_.size()) {
    return Status::OutOfRange("directory position out of range");
  }
  // New leaves land on a fresh page at the end of the file: the physical
  // scatter that accumulating splits inflict on a B-tree.
  const uint64_t page_no = file_->num_pages();
  Page page;
  COCONUT_RETURN_NOT_OK(EncodeLeafPage(view, &page));
  COCONUT_RETURN_NOT_OK(file_->WritePage(page_no, page));
  LeafMeta meta = MetaFromView(view, page_no);
  directory_.insert(directory_.begin() + dir_pos, meta);
  num_entries_ += meta.count;
  for (const auto& entry : view.entries) {
    min_timestamp_ = std::min(min_timestamp_, entry.timestamp);
    max_timestamp_ = std::max(max_timestamp_, entry.timestamp);
  }
  if (pool_ != nullptr) pool_->Invalidate(file_->file_id());
  return dir_pos;
}

Status SeqTable::PersistDirectory() {
  const uint64_t dir_offset = file_->size_bytes();
  std::vector<uint8_t> dir_bytes(directory_.size() * kDirEntryBytes);
  for (size_t i = 0; i < directory_.size(); ++i) {
    EncodeDirEntry(directory_[i], dir_bytes.data() + i * kDirEntryBytes);
  }
  const size_t padded =
      ((dir_bytes.size() + kPageSize - 1) / kPageSize) * kPageSize;
  dir_bytes.resize(padded, 0);
  if (!dir_bytes.empty()) {
    COCONUT_RETURN_NOT_OK(file_->Append(dir_bytes.data(), dir_bytes.size()));
  }
  // Fresh footer after the new directory; the previous directory and footer
  // become dead space until the next rebuild (copy-on-write metadata).
  Page footer;
  footer.Write<uint64_t>(kOffMagic, kMagic);
  footer.Write<uint32_t>(kOffVersion, kVersion);
  footer.Write<uint32_t>(kOffSeriesLength,
                         static_cast<uint32_t>(options_.sax.series_length));
  footer.Write<uint32_t>(kOffNumSegments,
                         static_cast<uint32_t>(options_.sax.num_segments));
  footer.Write<uint32_t>(kOffBitsPerSegment,
                         static_cast<uint32_t>(options_.sax.bits_per_segment));
  footer.Write<uint32_t>(kOffMaterialized, options_.materialized ? 1 : 0);
  footer.Write<uint32_t>(kOffFillPercent,
                         static_cast<uint32_t>(options_.fill_factor * 10000));
  footer.Write<uint64_t>(kOffNumEntries, num_entries_);
  footer.Write<uint64_t>(kOffNumLeaves, directory_.size());
  footer.Write<uint64_t>(kOffDirOffset, dir_offset);
  footer.Write<int64_t>(kOffMinTimestamp, min_timestamp_);
  footer.Write<int64_t>(kOffMaxTimestamp, max_timestamp_);
  COCONUT_RETURN_NOT_OK(file_->Append(footer.data(), kPageSize));
  return file_->Sync();
}

series::SaxRegion SeqTable::LeafRegion(size_t leaf_idx) const {
  const LeafMeta& meta = directory_[leaf_idx];
  return series::RegionFromSymbolRange(meta.min_sym, meta.max_sym,
                                       options_.sax);
}

Result<bool> SeqTable::Scanner::Next(core::IndexEntry* entry,
                                     std::vector<float>* payload) {
  while (true) {
    if (!view_loaded_) {
      if (leaf_idx_ >= table_->num_leaves()) return false;
      COCONUT_RETURN_NOT_OK(table_->ReadLeaf(leaf_idx_, &view_));
      view_loaded_ = true;
      pos_in_leaf_ = 0;
    }
    if (pos_in_leaf_ >= view_.entries.size()) {
      ++leaf_idx_;
      view_loaded_ = false;
      continue;
    }
    *entry = view_.entries[pos_in_leaf_];
    if (payload != nullptr && table_->materialized()) {
      const size_t len = table_->sax().series_length;
      payload->assign(view_.payloads.begin() + pos_in_leaf_ * len,
                      view_.payloads.begin() + (pos_in_leaf_ + 1) * len);
    }
    ++pos_in_leaf_;
    return true;
  }
}

}  // namespace seqtable
}  // namespace coconut
