#ifndef COCONUT_CLSM_CLSM_H_
#define COCONUT_CLSM_CLSM_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "seqtable/seq_table.h"
#include "stream/buffer_gen.h"
#include "stream/epoch.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {
class Wal;
}  // namespace stream
namespace clsm {

/// CoconutLSM: the write-optimized index of the paper. Incoming series
/// accumulate in an in-memory buffer; every flush and every compaction is a
/// sort-merge producing a fresh compact SeqTable with purely sequential
/// I/O. This is only possible because the summarizations are sortable — a
/// log-structured merge over unsortable iSAX words has no merge order.
///
/// Leveling policy: disk level i (0-based) holds at most one run of at most
/// buffer_entries * growth_factor^(i+1) entries. A higher growth factor
/// means fewer levels (faster reads, each query touches every run) but
/// more rewriting per merge (slower ingestion) — the Section 2 read/write
/// knob.
///
/// Concurrency — the epoch-based read path (mirroring stream/tp.h): the
/// tree publishes an atomic pointer to an immutable QuerySnapshot (the
/// live memtable generation, in-flight flushes, and the shared run set).
/// Readers bracket the query in an epoch::EpochGuard, load the pointer,
/// and search without taking mu_ or copying the memtable; writers
/// republish at every structural edge (memtable detach, run-set publish,
/// manifest restore) and retire superseded snapshots to epoch quiescence.
/// The flush and its compaction cascade run as one deferred task on a
/// per-index strand (FIFO over the shared pool), so the run sequence is
/// identical to the synchronous build; replaced run files are unlinked
/// only after the new set is published (open fds keep in-flight scans
/// valid). Without a background pool the ingest side keeps its
/// single-caller contract, but reads go through the same snapshot path.
class Clsm {
 public:
  struct Options {
    series::SaxConfig sax;
    /// Materialized ("CLSMFull"): series travel through every merge.
    bool materialized = false;
    /// LSM growth factor T (>= 2).
    int growth_factor = 4;
    /// In-memory buffer capacity in entries (the paper's memory budget).
    size_t buffer_entries = 1024;
    /// Background pool for flushes and merge cascades (not owned; must
    /// outlive the index). nullptr = synchronous.
    ThreadPool* background = nullptr;
    /// Bounded backpressure: cap on detached-but-unflushed memtables (each
    /// holds up to buffer_entries series in memory). 0 = unbounded. Only
    /// meaningful in async mode; FlushBuffer ignores the cap (a drain
    /// must always make progress).
    size_t max_inflight_seals = 0;
    /// What Insert does at the cap: block until a flush retires, or
    /// refuse the entry with ResourceExhausted.
    stream::BackpressurePolicy backpressure =
        stream::BackpressurePolicy::kBlock;
    /// Test seam: runs at the head of every flush task (on the strand in
    /// async mode) — fault-injection tests throttle or fail it. Never set
    /// in production.
    std::function<Status()> seal_test_hook{};
    /// Write-ahead log (not owned; must outlive the index). When set,
    /// Insert records every admission into it (inside the admission
    /// critical section, so log order == admission order) and every
    /// completed flush cascade appends a checkpoint frame.
    stream::Wal* wal = nullptr;
  };

  /// Creates an empty LSM tree writing runs named `<prefix>.L<i>.<version>`.
  /// `raw` is required for non-materialized verification; `pool` optional.
  static Result<std::unique_ptr<Clsm>> Create(storage::StorageManager* storage,
                                              const std::string& prefix,
                                              const Options& options,
                                              storage::BufferPool* pool,
                                              core::RawSeriesStore* raw);

  ~Clsm();

  /// Buffers one (z-normalized) series; triggers a flush/merge cascade when
  /// the buffer fills (deferred to the background pool in async mode).
  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp);

  /// Forces the buffer to disk. In async mode this is the drain barrier:
  /// it blocks until every deferred flush and cascade has completed and
  /// returns the first background error, if any.
  Status FlushBuffer();

  Result<core::SearchResult> ApproxSearch(std::span<const float> query,
                                          const core::SearchOptions& options,
                                          core::QueryCounters* counters);

  Result<core::SearchResult> ExactSearch(std::span<const float> query,
                                         const core::SearchOptions& options,
                                         core::QueryCounters* counters);

  /// Exact k-nearest-neighbors across the buffer and every run; the
  /// k-th-best bound is shared, so later runs prune harder.
  Result<std::vector<core::SearchResult>> KnnSearch(
      std::span<const float> query, size_t k,
      const core::SearchOptions& options, core::QueryCounters* counters);

  uint64_t num_entries() const;
  size_t buffered_entries() const {
    stream::epoch::EpochGuard guard;
    const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
    return snap->memtable == nullptr
               ? 0
               : static_cast<size_t>(snap->memtable->published.load(
                     std::memory_order_acquire));
  }

  /// Flush tasks enqueued but not yet folded into a level.
  size_t pending_flushes() const {
    stream::epoch::EpochGuard guard;
    return snapshot_.load(std::memory_order_acquire)->pending.size();
  }

  /// Number of disk levels currently holding a run.
  size_t num_active_levels() const;

  /// Entries in level i's run (0 when empty).
  uint64_t level_entries(size_t level) const;

  /// Total bytes across all run files.
  uint64_t total_file_bytes() const;

  /// Cumulative entries rewritten by flushes and compactions — the write
  /// amplification the growth factor trades against read cost.
  uint64_t entries_rewritten() const {
    stream::epoch::EpochGuard guard;
    return snapshot_.load(std::memory_order_acquire)->entries_rewritten;
  }
  uint64_t merges_performed() const {
    stream::epoch::EpochGuard guard;
    return snapshot_.load(std::memory_order_acquire)->merges_performed;
  }

  /// Race-free progress snapshot for the streaming facade. Lock-free:
  /// served from the published snapshot and atomic gate counters, so it
  /// never stalls behind a backpressure-blocked insert.
  stream::StreamingStats SnapshotStats() const;

  /// Monotonic snapshot-version stamp: bumped on every Insert admission and
  /// every run-set publication (flush or merge cascade). The adapters
  /// forward this as DataSeriesIndex::snapshot_version() so the service
  /// answer cache stays exact while the cascade runs in the background.
  uint64_t snapshot_version() const {
    return snapshot_version_.load(std::memory_order_acquire);
  }

  bool async() const { return executor_ != nullptr; }

  const Options& options() const { return options_; }

  /// Rebuilds the run set a WAL checkpoint manifest describes (run files
  /// on disk plus the naming/progress counters). Called once, on an empty
  /// tree, before WAL replay. The PP facade forwards
  /// StreamingIndex::RestoreFromManifest here.
  Status RestoreFromManifest(std::span<const uint8_t> manifest);

  /// Group-commits the attached WAL (OK without one) — the ack gate.
  Status CommitDurable();

 private:
  /// Levels as an immutable snapshot; index = level, nullptr = empty.
  using RunSet = std::vector<std::shared_ptr<seqtable::SeqTable>>;

  /// A memtable generation moved out of the insert path, waiting for (or
  /// undergoing) its background flush. The generation is immutable from
  /// detach (count frozen), so queries evaluate it without copying.
  struct PendingFlush {
    std::shared_ptr<const stream::BufferGen> gen;
    size_t count = 0;

    std::span<const core::IndexEntry> entries() const {
      return gen->EntrySpan(count);
    }
    std::span<const float> payloads() const { return gen->PayloadSpan(count); }
  };

  /// The immutable unit the tree publishes through an atomic pointer and
  /// retires through the epoch manager; see stream/tp.h's QuerySnapshot.
  struct QuerySnapshot {
    std::shared_ptr<const stream::BufferGen> memtable;
    std::vector<std::shared_ptr<const PendingFlush>> pending;
    std::shared_ptr<const RunSet> runs;

    // Stats mirrors, exact as of publication.
    uint64_t entries_pending = 0;  // Sum of pending-flush counts.
    uint64_t entries_in_runs = 0;
    uint64_t entries_rewritten = 0;
    uint64_t merges_performed = 0;
    uint64_t flushes_completed = 0;
  };

  /// One query's frozen view: the published snapshot plus the memtable
  /// prefix captured once (seed and exact pass must agree). Valid only
  /// under the caller's EpochGuard.
  struct QueryView {
    const QuerySnapshot* snap = nullptr;
    std::span<const core::IndexEntry> memtable;
    std::span<const float> memtable_payloads;
  };
  QueryView CaptureView() const;

  Clsm(storage::StorageManager* storage, std::string prefix, Options options,
       storage::BufferPool* pool, core::RawSeriesStore* raw);

  uint64_t LevelCapacity(size_t level) const;
  std::string RunName(size_t level);

  storage::BufferPool* ReadPool() const { return async() ? nullptr : pool_; }

  /// Builds an immutable snapshot of the current state, swaps it into
  /// snapshot_, and returns the superseded one. Caller holds mu_ and MUST
  /// pass the returned pointer to the epoch manager's Retire after
  /// releasing the lock (never delete it — readers may hold it).
  const QuerySnapshot* RepublishSnapshotLocked();

  /// Detaches the full memtable generation into the pending list; caller
  /// holds mu_ and republishes afterwards.
  std::shared_ptr<PendingFlush> DetachMemtableLocked();

  size_t MemtableCountLocked() const {
    return gen_ == nullptr
               ? 0
               : static_cast<size_t>(
                     gen_->published.load(std::memory_order_relaxed));
  }

  /// Blocks (kBlock) or refuses (kReject) when admitting one more entry
  /// would detach a memtable past the flush cap. Caller holds `lock` on
  /// mu_; kBlock waits on it until a flush retires or a background error
  /// lands.
  Status ApplyBackpressureLocked(std::unique_lock<std::mutex>* lock);

  /// Enqueues the flush on the strand. Caller holds mu_, which guarantees
  /// strand order equals detach order even when Insert and FlushBuffer
  /// race.
  void EnqueueFlushLocked(std::shared_ptr<const PendingFlush> pending);

  /// Flush + cascade for one detached memtable; runs on the strand in
  /// async mode, inline otherwise. The only run-set mutator.
  Status FlushTask(std::shared_ptr<const PendingFlush> pending);

  /// Merges `work[level-1]` (or the memtable batch, sorted here) into
  /// `work[level]`, updating the working copy and returning the names of
  /// replaced runs.
  Status MergeIntoLevel(RunSet* work, size_t level,
                        std::span<const core::IndexEntry> mem_entries,
                        std::span<const float> mem_payloads,
                        bool from_memtable,
                        std::vector<std::string>* retired,
                        uint64_t* rewritten);

  /// Publishes `work` as the new run set; optionally retires the pending
  /// flush whose data is now on disk, in the same critical section.
  void PublishRuns(std::shared_ptr<const RunSet> runs,
                   const PendingFlush* retired_pending, uint64_t rewritten,
                   uint64_t merges);

  /// Serializes the run set (names, entries, naming/progress counters)
  /// and the admit count it covers. Takes mu_ briefly.
  void EncodeManifest(std::vector<uint8_t>* manifest,
                      uint64_t* durable_entries) const;

  /// WAL checkpoint after a completed flush cascade, then the deferred
  /// unlinks that had to wait for it. Runs on the strand; no-op without
  /// a WAL.
  Status CheckpointDurable();

  /// Removes a replaced run file — immediately without a WAL; deferred to
  /// the next durable checkpoint with one (the last checkpoint on disk
  /// may still reference it). Strand-serialized.
  Status RetireFile(const std::string& name);

  void RecordBackgroundError(const Status& status);

  /// The approximate pass (memtable, in-flight flushes, every run) over
  /// one query view — ApproxSearch's whole body and ExactSearch's
  /// bound-tightening seed, so the two cannot drift.
  Status ApproxPassOverSnapshot(const QueryView& view,
                                std::span<const float> query,
                                const core::SearchOptions& options,
                                core::QueryCounters* counters,
                                core::SearchResult* best);

  /// Evaluates a batch of in-memory entries against a query.
  Status SearchMemtableEntries(std::span<const core::IndexEntry> entries,
                               std::span<const float> payloads,
                               const std::span<const float>& query,
                               const core::SearchOptions& options,
                               core::QueryCounters* counters,
                               int max_verifications,
                               core::SearchResult* best);

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  storage::BufferPool* pool_;
  core::RawSeriesStore* raw_;

  /// The light insert/state lock: guards the writer-side authoritative
  /// state and serializes snapshot republication. Queries never take it.
  /// Never held across flush/merge I/O.
  mutable std::mutex mu_;

  /// The published read snapshot; see stream/tp.h.
  std::atomic<const QuerySnapshot*> snapshot_{nullptr};

  /// The live memtable generation. Writer-owned; readers reach it via the
  /// snapshot.
  std::shared_ptr<stream::BufferGen> gen_;

  std::vector<std::shared_ptr<const PendingFlush>> pending_;
  std::shared_ptr<const RunSet> runs_;
  uint64_t entries_rewritten_ = 0;
  uint64_t merges_performed_ = 0;
  uint64_t flushes_completed_ = 0;
  Status background_status_;

  /// Backpressure state (writers guarded by mu_; counters and the stall
  /// window readable lock-free): notified when a pending flush retires or
  /// a background error lands, so blocked inserts always wake.
  stream::BackpressureGate backpressure_;

  /// Only touched by the (serialized) flush/cascade path.
  uint64_t version_ = 0;

  /// Replaced run files awaiting the next durable checkpoint (see
  /// RetireFile). Only touched on the strand (or the single caller, in
  /// sync mode), so it needs no lock.
  std::vector<std::string> pending_unlinks_;

  /// See snapshot_version(); distinct from version_ (run-file naming).
  std::atomic<uint64_t> snapshot_version_{0};

  std::unique_ptr<SerialExecutor> executor_;
};

}  // namespace clsm
}  // namespace coconut

#endif  // COCONUT_CLSM_CLSM_H_
