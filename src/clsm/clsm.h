#ifndef COCONUT_CLSM_CLSM_H_
#define COCONUT_CLSM_CLSM_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "seqtable/seq_table.h"

namespace coconut {
namespace clsm {

/// CoconutLSM: the write-optimized index of the paper. Incoming series
/// accumulate in an in-memory buffer; every flush and every compaction is a
/// sort-merge producing a fresh compact SeqTable with purely sequential
/// I/O. This is only possible because the summarizations are sortable — a
/// log-structured merge over unsortable iSAX words has no merge order.
///
/// Leveling policy: disk level i (0-based) holds at most one run of at most
/// buffer_entries * growth_factor^(i+1) entries. A higher growth factor
/// means fewer levels (faster reads, each query touches every run) but
/// more rewriting per merge (slower ingestion) — the Section 2 read/write
/// knob.
class Clsm {
 public:
  struct Options {
    series::SaxConfig sax;
    /// Materialized ("CLSMFull"): series travel through every merge.
    bool materialized = false;
    /// LSM growth factor T (>= 2).
    int growth_factor = 4;
    /// In-memory buffer capacity in entries (the paper's memory budget).
    size_t buffer_entries = 1024;
  };

  /// Creates an empty LSM tree writing runs named `<prefix>.L<i>.<version>`.
  /// `raw` is required for non-materialized verification; `pool` optional.
  static Result<std::unique_ptr<Clsm>> Create(storage::StorageManager* storage,
                                              const std::string& prefix,
                                              const Options& options,
                                              storage::BufferPool* pool,
                                              core::RawSeriesStore* raw);

  /// Buffers one (z-normalized) series; triggers a flush/merge cascade when
  /// the buffer fills.
  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp);

  /// Forces the buffer to disk (e.g. before measuring read-only queries).
  Status FlushBuffer();

  Result<core::SearchResult> ApproxSearch(std::span<const float> query,
                                          const core::SearchOptions& options,
                                          core::QueryCounters* counters);

  Result<core::SearchResult> ExactSearch(std::span<const float> query,
                                         const core::SearchOptions& options,
                                         core::QueryCounters* counters);

  /// Exact k-nearest-neighbors across the buffer and every run; the
  /// k-th-best bound is shared, so later runs prune harder.
  Result<std::vector<core::SearchResult>> KnnSearch(
      std::span<const float> query, size_t k,
      const core::SearchOptions& options, core::QueryCounters* counters);

  uint64_t num_entries() const;
  size_t buffered_entries() const { return memtable_.size(); }

  /// Number of disk levels currently holding a run.
  size_t num_active_levels() const;

  /// Entries in level i's run (0 when empty).
  uint64_t level_entries(size_t level) const;

  /// Total bytes across all run files.
  uint64_t total_file_bytes() const;

  /// Cumulative entries rewritten by flushes and compactions — the write
  /// amplification the growth factor trades against read cost.
  uint64_t entries_rewritten() const { return entries_rewritten_; }
  uint64_t merges_performed() const { return merges_performed_; }

  const Options& options() const { return options_; }

 private:
  Clsm(storage::StorageManager* storage, std::string prefix, Options options,
       storage::BufferPool* pool, core::RawSeriesStore* raw)
      : storage_(storage),
        prefix_(std::move(prefix)),
        options_(options),
        pool_(pool),
        raw_(raw) {}

  uint64_t LevelCapacity(size_t level) const;
  Status MergeIntoLevel(size_t level, bool from_memtable);
  Status CascadeFrom(size_t level);
  std::string RunName(size_t level);

  /// Evaluates the in-memory buffer against a query.
  Status SearchMemtable(const std::span<const float>& query,
                        const core::SearchOptions& options,
                        core::QueryCounters* counters,
                        int max_verifications, core::SearchResult* best);

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  storage::BufferPool* pool_;
  core::RawSeriesStore* raw_;

  std::vector<core::IndexEntry> memtable_;
  std::vector<float> memtable_payloads_;

  std::vector<std::unique_ptr<seqtable::SeqTable>> levels_;
  uint64_t version_ = 0;
  uint64_t entries_rewritten_ = 0;
  uint64_t merges_performed_ = 0;
};

}  // namespace clsm
}  // namespace coconut

#endif  // COCONUT_CLSM_CLSM_H_
