#ifndef COCONUT_CLSM_CLSM_H_
#define COCONUT_CLSM_CLSM_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "seqtable/seq_table.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {
class Wal;
}  // namespace stream
namespace clsm {

/// CoconutLSM: the write-optimized index of the paper. Incoming series
/// accumulate in an in-memory buffer; every flush and every compaction is a
/// sort-merge producing a fresh compact SeqTable with purely sequential
/// I/O. This is only possible because the summarizations are sortable — a
/// log-structured merge over unsortable iSAX words has no merge order.
///
/// Leveling policy: disk level i (0-based) holds at most one run of at most
/// buffer_entries * growth_factor^(i+1) entries. A higher growth factor
/// means fewer levels (faster reads, each query touches every run) but
/// more rewriting per merge (slower ingestion) — the Section 2 read/write
/// knob.
///
/// Concurrency: with Options.background set, Insert appends to the
/// memtable under a light lock and returns; the flush and its compaction
/// cascade run as one deferred task on a per-index strand (FIFO over the
/// shared pool), so the run sequence is identical to the synchronous
/// build. Queries snapshot the memtable, the in-flight flush payloads and
/// the shared_ptr run set, so they never observe a half-swapped level;
/// replaced run files are unlinked only after the new set is published.
/// Without a background pool behaviour is the synchronous original.
class Clsm {
 public:
  struct Options {
    series::SaxConfig sax;
    /// Materialized ("CLSMFull"): series travel through every merge.
    bool materialized = false;
    /// LSM growth factor T (>= 2).
    int growth_factor = 4;
    /// In-memory buffer capacity in entries (the paper's memory budget).
    size_t buffer_entries = 1024;
    /// Background pool for flushes and merge cascades (not owned; must
    /// outlive the index). nullptr = synchronous.
    ThreadPool* background = nullptr;
    /// Bounded backpressure: cap on detached-but-unflushed memtables (each
    /// holds up to buffer_entries series in memory). 0 = unbounded. Only
    /// meaningful in async mode; FlushBuffer ignores the cap (a drain
    /// must always make progress).
    size_t max_inflight_seals = 0;
    /// What Insert does at the cap: block until a flush retires, or
    /// refuse the entry with ResourceExhausted.
    stream::BackpressurePolicy backpressure =
        stream::BackpressurePolicy::kBlock;
    /// Test seam: runs at the head of every flush task (on the strand in
    /// async mode) — fault-injection tests throttle or fail it. Never set
    /// in production.
    std::function<Status()> seal_test_hook{};
    /// Write-ahead log (not owned; must outlive the index). When set,
    /// Insert records every admission into it (inside the admission
    /// critical section, so log order == admission order) and every
    /// completed flush cascade appends a checkpoint frame.
    stream::Wal* wal = nullptr;
  };

  /// Creates an empty LSM tree writing runs named `<prefix>.L<i>.<version>`.
  /// `raw` is required for non-materialized verification; `pool` optional.
  static Result<std::unique_ptr<Clsm>> Create(storage::StorageManager* storage,
                                              const std::string& prefix,
                                              const Options& options,
                                              storage::BufferPool* pool,
                                              core::RawSeriesStore* raw);

  ~Clsm();

  /// Buffers one (z-normalized) series; triggers a flush/merge cascade when
  /// the buffer fills (deferred to the background pool in async mode).
  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp);

  /// Forces the buffer to disk. In async mode this is the drain barrier:
  /// it blocks until every deferred flush and cascade has completed and
  /// returns the first background error, if any.
  Status FlushBuffer();

  Result<core::SearchResult> ApproxSearch(std::span<const float> query,
                                          const core::SearchOptions& options,
                                          core::QueryCounters* counters);

  Result<core::SearchResult> ExactSearch(std::span<const float> query,
                                         const core::SearchOptions& options,
                                         core::QueryCounters* counters);

  /// Exact k-nearest-neighbors across the buffer and every run; the
  /// k-th-best bound is shared, so later runs prune harder.
  Result<std::vector<core::SearchResult>> KnnSearch(
      std::span<const float> query, size_t k,
      const core::SearchOptions& options, core::QueryCounters* counters);

  uint64_t num_entries() const;
  size_t buffered_entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return memtable_.size();
  }

  /// Flush tasks enqueued but not yet folded into a level.
  size_t pending_flushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }

  /// Number of disk levels currently holding a run.
  size_t num_active_levels() const;

  /// Entries in level i's run (0 when empty).
  uint64_t level_entries(size_t level) const;

  /// Total bytes across all run files.
  uint64_t total_file_bytes() const;

  /// Cumulative entries rewritten by flushes and compactions — the write
  /// amplification the growth factor trades against read cost.
  uint64_t entries_rewritten() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_rewritten_;
  }
  uint64_t merges_performed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return merges_performed_;
  }

  /// Race-free progress snapshot for the streaming facade.
  stream::StreamingStats SnapshotStats() const;

  /// Monotonic snapshot-version stamp: bumped on every Insert admission and
  /// every run-set publication (flush or merge cascade). The adapters
  /// forward this as DataSeriesIndex::snapshot_version() so the service
  /// answer cache stays exact while the cascade runs in the background.
  uint64_t snapshot_version() const {
    return snapshot_version_.load(std::memory_order_acquire);
  }

  bool async() const { return executor_ != nullptr; }

  const Options& options() const { return options_; }

  /// Rebuilds the run set a WAL checkpoint manifest describes (run files
  /// on disk plus the naming/progress counters). Called once, on an empty
  /// tree, before WAL replay. The PP facade forwards
  /// StreamingIndex::RestoreFromManifest here.
  Status RestoreFromManifest(std::span<const uint8_t> manifest);

  /// Group-commits the attached WAL (OK without one) — the ack gate.
  Status CommitDurable();

 private:
  /// Levels as an immutable snapshot; index = level, nullptr = empty.
  using RunSet = std::vector<std::shared_ptr<seqtable::SeqTable>>;

  /// A memtable moved out of the insert path, waiting for (or undergoing)
  /// its background flush. Immutable after construction so queries can
  /// evaluate it without copying.
  struct PendingFlush {
    std::vector<core::IndexEntry> entries;
    std::vector<float> payloads;
  };

  /// In async mode the memtable is copied (inserts keep mutating it); in
  /// sync mode — single-caller contract — the spans alias the live
  /// memtable and queries pay no copy, as before this layer went
  /// concurrent.
  struct QuerySnapshot {
    std::vector<core::IndexEntry> memtable_copy;
    std::vector<float> payload_copy;
    std::span<const core::IndexEntry> memtable;
    std::span<const float> memtable_payloads;
    std::vector<std::shared_ptr<const PendingFlush>> pending;
    std::shared_ptr<const RunSet> runs;
  };

  Clsm(storage::StorageManager* storage, std::string prefix, Options options,
       storage::BufferPool* pool, core::RawSeriesStore* raw);

  uint64_t LevelCapacity(size_t level) const;
  std::string RunName(size_t level);

  storage::BufferPool* ReadPool() const { return async() ? nullptr : pool_; }

  QuerySnapshot TakeSnapshot() const;

  /// Detaches the full memtable into the pending list; caller holds mu_.
  std::shared_ptr<PendingFlush> DetachMemtableLocked();

  /// Blocks (kBlock) or refuses (kReject) when admitting one more entry
  /// would detach a memtable past the flush cap. Caller holds `lock` on
  /// mu_; kBlock waits on it until a flush retires or a background error
  /// lands.
  Status ApplyBackpressureLocked(std::unique_lock<std::mutex>* lock);

  /// Enqueues the flush on the strand. Caller holds mu_, which guarantees
  /// strand order equals detach order even when Insert and FlushBuffer
  /// race.
  void EnqueueFlushLocked(std::shared_ptr<const PendingFlush> pending);

  /// Flush + cascade for one detached memtable; runs on the strand in
  /// async mode, inline otherwise. The only run-set mutator.
  Status FlushTask(std::shared_ptr<const PendingFlush> pending);

  /// Merges `work[level-1]` (or the memtable batch, sorted here) into
  /// `work[level]`, updating the working copy and returning the names of
  /// replaced runs.
  Status MergeIntoLevel(RunSet* work, size_t level,
                        std::span<const core::IndexEntry> mem_entries,
                        std::span<const float> mem_payloads,
                        bool from_memtable,
                        std::vector<std::string>* retired,
                        uint64_t* rewritten);

  /// Publishes `work` as the new run set; optionally retires the pending
  /// flush whose data is now on disk, in the same critical section.
  void PublishRuns(std::shared_ptr<const RunSet> runs,
                   const PendingFlush* retired_pending, uint64_t rewritten,
                   uint64_t merges);

  /// Serializes the run set (names, entries, naming/progress counters)
  /// and the admit count it covers. Takes mu_ briefly.
  void EncodeManifest(std::vector<uint8_t>* manifest,
                      uint64_t* durable_entries) const;

  /// WAL checkpoint after a completed flush cascade, then the deferred
  /// unlinks that had to wait for it. Runs on the strand; no-op without
  /// a WAL.
  Status CheckpointDurable();

  /// Removes a replaced run file — immediately without a WAL; deferred to
  /// the next durable checkpoint with one (the last checkpoint on disk
  /// may still reference it). Strand-serialized.
  Status RetireFile(const std::string& name);

  void RecordBackgroundError(const Status& status);

  /// The approximate pass (memtable, in-flight flushes, every run) over
  /// one snapshot — ApproxSearch's whole body and ExactSearch's
  /// bound-tightening seed, so the two cannot drift.
  Status ApproxPassOverSnapshot(const QuerySnapshot& snap,
                                std::span<const float> query,
                                const core::SearchOptions& options,
                                core::QueryCounters* counters,
                                core::SearchResult* best);

  /// Evaluates a batch of in-memory entries against a query.
  Status SearchMemtableEntries(std::span<const core::IndexEntry> entries,
                               std::span<const float> payloads,
                               const std::span<const float>& query,
                               const core::SearchOptions& options,
                               core::QueryCounters* counters,
                               int max_verifications,
                               core::SearchResult* best);

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  storage::BufferPool* pool_;
  core::RawSeriesStore* raw_;

  /// The light insert/state lock; never held across flush/merge I/O.
  mutable std::mutex mu_;

  std::vector<core::IndexEntry> memtable_;
  std::vector<float> memtable_payloads_;
  std::vector<std::shared_ptr<const PendingFlush>> pending_;
  std::shared_ptr<const RunSet> runs_;
  uint64_t entries_rewritten_ = 0;
  uint64_t merges_performed_ = 0;
  uint64_t flushes_completed_ = 0;
  Status background_status_;

  /// Backpressure state (guarded by mu_): notified when a pending flush
  /// retires or a background error lands, so blocked inserts always wake.
  stream::BackpressureGate backpressure_;

  /// Only touched by the (serialized) flush/cascade path.
  uint64_t version_ = 0;

  /// Replaced run files awaiting the next durable checkpoint (see
  /// RetireFile). Only touched on the strand (or the single caller, in
  /// sync mode), so it needs no lock.
  std::vector<std::string> pending_unlinks_;

  /// See snapshot_version(); distinct from version_ (run-file naming).
  std::atomic<uint64_t> snapshot_version_{0};

  std::unique_ptr<SerialExecutor> executor_;
};

}  // namespace clsm
}  // namespace coconut

#endif  // COCONUT_CLSM_CLSM_H_
