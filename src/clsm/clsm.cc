#include "clsm/clsm.h"

#include <algorithm>

#include "seqtable/table_search.h"
#include "series/distance.h"
#include "series/paa.h"

namespace coconut {
namespace clsm {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;
using seqtable::LeafView;
using seqtable::SeqTable;
using seqtable::SeqTableBuilder;
using seqtable::SeqTableOptions;

SeqTableOptions RunOptions(const Clsm::Options& options) {
  SeqTableOptions topts;
  topts.sax = options.sax;
  topts.materialized = options.materialized;
  topts.fill_factor = 1.0;  // Runs are immutable: always fully packed.
  return topts;
}

/// One input of a two-way merge: either the sorted memtable or a run scan.
class MergeSource {
 public:
  virtual ~MergeSource() = default;
  /// Loads the next entry; false at end.
  virtual Result<bool> Next(IndexEntry* entry, std::vector<float>* payload) = 0;
};

class MemtableSource : public MergeSource {
 public:
  MemtableSource(std::vector<IndexEntry> entries, std::vector<float> payloads,
                 size_t series_length)
      : entries_(std::move(entries)),
        payloads_(std::move(payloads)),
        len_(series_length) {}

  Result<bool> Next(IndexEntry* entry, std::vector<float>* payload) override {
    if (pos_ >= entries_.size()) return false;
    *entry = entries_[pos_];
    if (payload != nullptr && !payloads_.empty()) {
      payload->assign(payloads_.begin() + pos_ * len_,
                      payloads_.begin() + (pos_ + 1) * len_);
    }
    ++pos_;
    return true;
  }

 private:
  std::vector<IndexEntry> entries_;
  std::vector<float> payloads_;
  size_t len_;
  size_t pos_ = 0;
};

class TableSource : public MergeSource {
 public:
  explicit TableSource(const SeqTable* table) : scanner_(table->NewScanner()) {}

  Result<bool> Next(IndexEntry* entry, std::vector<float>* payload) override {
    return scanner_.Next(entry, payload);
  }

 private:
  SeqTable::Scanner scanner_;
};

}  // namespace

Result<std::unique_ptr<Clsm>> Clsm::Create(storage::StorageManager* storage,
                                           const std::string& prefix,
                                           const Options& options,
                                           storage::BufferPool* pool,
                                           core::RawSeriesStore* raw) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.growth_factor < 2) {
    return Status::InvalidArgument("growth_factor must be >= 2");
  }
  if (options.buffer_entries == 0) {
    return Status::InvalidArgument("buffer_entries must be > 0");
  }
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized CLSM needs a raw store for verification");
  }
  return std::unique_ptr<Clsm>(
      new Clsm(storage, prefix, options, pool, raw));
}

uint64_t Clsm::LevelCapacity(size_t level) const {
  uint64_t cap = options_.buffer_entries;
  for (size_t i = 0; i <= level; ++i) {
    cap *= static_cast<uint64_t>(options_.growth_factor);
  }
  return cap;
}

std::string Clsm::RunName(size_t level) {
  return prefix_ + ".L" + std::to_string(level) + "." +
         std::to_string(version_++);
}

Status Clsm::Insert(uint64_t series_id, std::span<const float> znorm_values,
                    int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }
  IndexEntry entry;
  entry.key = series::InterleaveSax(
      series::ComputeSax(znorm_values, options_.sax), options_.sax);
  entry.series_id = series_id;
  entry.timestamp = timestamp;
  memtable_.push_back(entry);
  if (options_.materialized) {
    memtable_payloads_.insert(memtable_payloads_.end(), znorm_values.begin(),
                              znorm_values.end());
  }
  if (memtable_.size() >= options_.buffer_entries) {
    COCONUT_RETURN_NOT_OK(FlushBuffer());
  }
  return Status::OK();
}

Status Clsm::FlushBuffer() {
  if (memtable_.empty()) return Status::OK();
  COCONUT_RETURN_NOT_OK(MergeIntoLevel(0, /*from_memtable=*/true));
  return CascadeFrom(0);
}

Status Clsm::MergeIntoLevel(size_t level, bool from_memtable) {
  const size_t len = options_.sax.series_length;

  // Assemble the newer input.
  std::unique_ptr<MergeSource> newer;
  if (from_memtable) {
    // Sort the buffer: indices sorted by key, then payloads permuted.
    std::vector<size_t> order(memtable_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return core::EntryKeyLess()(memtable_[a], memtable_[b]);
    });
    std::vector<IndexEntry> sorted_entries(memtable_.size());
    std::vector<float> sorted_payloads;
    if (options_.materialized) sorted_payloads.resize(memtable_payloads_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted_entries[i] = memtable_[order[i]];
      if (options_.materialized) {
        std::copy(memtable_payloads_.begin() + order[i] * len,
                  memtable_payloads_.begin() + (order[i] + 1) * len,
                  sorted_payloads.begin() + i * len);
      }
    }
    newer = std::make_unique<MemtableSource>(std::move(sorted_entries),
                                             std::move(sorted_payloads), len);
    memtable_.clear();
    memtable_payloads_.clear();
  } else {
    newer = std::make_unique<TableSource>(levels_[level - 1].get());
  }

  if (levels_.size() <= level) levels_.resize(level + 1);

  // Older input: the existing run at this level, if any.
  std::unique_ptr<MergeSource> older;
  if (levels_[level] != nullptr) {
    older = std::make_unique<TableSource>(levels_[level].get());
  }

  const std::string new_name = RunName(level);
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<SeqTableBuilder> builder,
      SeqTableBuilder::Create(storage_, new_name, RunOptions(options_)));

  // Two-way merge; ties go to the newer input (freshness, though entries
  // are append-only here so order among equals is cosmetic).
  IndexEntry a_entry, b_entry;
  std::vector<float> a_payload, b_payload;
  COCONUT_ASSIGN_OR_RETURN(bool a_has, newer->Next(&a_entry, &a_payload));
  bool b_has = false;
  if (older != nullptr) {
    COCONUT_ASSIGN_OR_RETURN(b_has, older->Next(&b_entry, &b_payload));
  }
  while (a_has || b_has) {
    const bool take_a =
        a_has && (!b_has || !core::EntryKeyLess()(b_entry, a_entry));
    if (take_a) {
      COCONUT_RETURN_NOT_OK(builder->Add(
          a_entry, options_.materialized
                       ? std::span<const float>(a_payload)
                       : std::span<const float>()));
      COCONUT_ASSIGN_OR_RETURN(a_has, newer->Next(&a_entry, &a_payload));
    } else {
      COCONUT_RETURN_NOT_OK(builder->Add(
          b_entry, options_.materialized
                       ? std::span<const float>(b_payload)
                       : std::span<const float>()));
      COCONUT_ASSIGN_OR_RETURN(b_has, older->Next(&b_entry, &b_payload));
    }
  }
  entries_rewritten_ += builder->entries_added();
  ++merges_performed_;
  COCONUT_RETURN_NOT_OK(builder->Finish());

  // Swap in the merged run; drop inputs.
  if (levels_[level] != nullptr) {
    const std::string old_name = levels_[level]->name();
    levels_[level].reset();
    COCONUT_RETURN_NOT_OK(storage_->RemoveFile(old_name));
  }
  if (!from_memtable) {
    const std::string drained = levels_[level - 1]->name();
    levels_[level - 1].reset();
    COCONUT_RETURN_NOT_OK(storage_->RemoveFile(drained));
  }
  COCONUT_ASSIGN_OR_RETURN(levels_[level],
                           SeqTable::Open(storage_, new_name, pool_));
  return Status::OK();
}

Status Clsm::CascadeFrom(size_t start) {
  for (size_t level = start; level < levels_.size(); ++level) {
    if (levels_[level] == nullptr) continue;
    if (levels_[level]->num_entries() <= LevelCapacity(level)) break;
    COCONUT_RETURN_NOT_OK(MergeIntoLevel(level + 1, /*from_memtable=*/false));
  }
  return Status::OK();
}

Result<std::vector<SearchResult>> Clsm::KnnSearch(
    std::span<const float> query, size_t k, const SearchOptions& options,
    core::QueryCounters* counters) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  seqtable::KnnCollector collector(k);

  // Buffered entries first (cheap, tightens the bound).
  const size_t len = options_.sax.series_length;
  for (size_t i = 0; i < memtable_.size(); ++i) {
    const IndexEntry& entry = memtable_[i];
    if (!options.window.Contains(entry.timestamp)) continue;
    const series::SaxWord word =
        series::DeinterleaveKey(entry.key, options_.sax);
    if (series::MinDistSquaredToSax(ctx.query_paa, word, options_.sax) >=
        collector.bound()) {
      continue;
    }
    SearchResult candidate;
    candidate.found = true;
    candidate.series_id = entry.series_id;
    candidate.timestamp = entry.timestamp;
    if (options_.materialized) {
      candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
          query,
          std::span<const float>(memtable_payloads_.data() + i * len, len),
          collector.bound());
    } else {
      std::vector<float> fetched(len);
      COCONUT_RETURN_NOT_OK(raw_->Get(entry.series_id, fetched));
      if (counters != nullptr) ++counters->raw_fetches;
      candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
          query, fetched, collector.bound());
    }
    collector.Offer(candidate);
  }

  for (const auto& level : levels_) {
    if (level == nullptr) continue;
    COCONUT_RETURN_NOT_OK(
        seqtable::ExactKnnScanTable(*level, ctx, options, &collector));
  }
  return collector.Take();
}

uint64_t Clsm::num_entries() const {
  uint64_t total = memtable_.size();
  for (const auto& level : levels_) {
    if (level != nullptr) total += level->num_entries();
  }
  return total;
}

size_t Clsm::num_active_levels() const {
  size_t active = 0;
  for (const auto& level : levels_) {
    if (level != nullptr) ++active;
  }
  return active;
}

uint64_t Clsm::level_entries(size_t level) const {
  if (level >= levels_.size() || levels_[level] == nullptr) return 0;
  return levels_[level]->num_entries();
}

uint64_t Clsm::total_file_bytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    if (level != nullptr) total += level->file_bytes();
  }
  return total;
}

Status Clsm::SearchMemtable(const std::span<const float>& query,
                            const SearchOptions& options,
                            core::QueryCounters* counters,
                            int max_verifications, SearchResult* best) {
  if (memtable_.empty()) return Status::OK();
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  return seqtable::EvaluateCandidates(ctx, options, memtable_,
                                      memtable_payloads_,
                                      options_.materialized,
                                      max_verifications, best);
}

Result<SearchResult> Clsm::ApproxSearch(std::span<const float> query,
                                        const SearchOptions& options,
                                        core::QueryCounters* counters) {
  SearchResult best;
  COCONUT_RETURN_NOT_OK(SearchMemtable(query, options, counters,
                                       options.approx_candidates, &best));
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  for (const auto& level : levels_) {
    if (level == nullptr) continue;
    COCONUT_ASSIGN_OR_RETURN(SearchResult r,
                             seqtable::ApproxSearchTable(*level, ctx, options));
    best.Improve(r);
  }
  return best;
}

Result<SearchResult> Clsm::ExactSearch(std::span<const float> query,
                                       const SearchOptions& options,
                                       core::QueryCounters* counters) {
  // Seed with the approximate answer, then prune-scan every run. The best
  // distance is shared across runs, so later runs prune harder.
  COCONUT_ASSIGN_OR_RETURN(SearchResult best,
                           ApproxSearch(query, options, counters));
  COCONUT_RETURN_NOT_OK(
      SearchMemtable(query, options, counters, /*max_verifications=*/-1,
                     &best));
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  for (const auto& level : levels_) {
    if (level == nullptr) continue;
    COCONUT_RETURN_NOT_OK(
        seqtable::ExactScanTable(*level, ctx, options, &best));
  }
  return best;
}

}  // namespace clsm
}  // namespace coconut
