#include "clsm/clsm.h"

#include <algorithm>

#include "common/timer.h"
#include "seqtable/table_search.h"
#include "series/distance.h"
#include "series/paa.h"
#include "stream/wal.h"

namespace coconut {
namespace clsm {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;
using seqtable::LeafView;
using seqtable::SeqTable;
using seqtable::SeqTableBuilder;
using seqtable::SeqTableOptions;

SeqTableOptions RunOptions(const Clsm::Options& options) {
  SeqTableOptions topts;
  topts.sax = options.sax;
  topts.materialized = options.materialized;
  topts.fill_factor = 1.0;  // Runs are immutable: always fully packed.
  return topts;
}

/// One input of a two-way merge: either the sorted memtable or a run scan.
class MergeSource {
 public:
  virtual ~MergeSource() = default;
  /// Loads the next entry; false at end.
  virtual Result<bool> Next(IndexEntry* entry, std::vector<float>* payload) = 0;
};

class MemtableSource : public MergeSource {
 public:
  MemtableSource(std::vector<IndexEntry> entries, std::vector<float> payloads,
                 size_t series_length)
      : entries_(std::move(entries)),
        payloads_(std::move(payloads)),
        len_(series_length) {}

  Result<bool> Next(IndexEntry* entry, std::vector<float>* payload) override {
    if (pos_ >= entries_.size()) return false;
    *entry = entries_[pos_];
    if (payload != nullptr && !payloads_.empty()) {
      payload->assign(payloads_.begin() + pos_ * len_,
                      payloads_.begin() + (pos_ + 1) * len_);
    }
    ++pos_;
    return true;
  }

 private:
  std::vector<IndexEntry> entries_;
  std::vector<float> payloads_;
  size_t len_;
  size_t pos_ = 0;
};

class TableSource : public MergeSource {
 public:
  explicit TableSource(const SeqTable* table) : scanner_(table->NewScanner()) {}

  Result<bool> Next(IndexEntry* entry, std::vector<float>* payload) override {
    return scanner_.Next(entry, payload);
  }

 private:
  SeqTable::Scanner scanner_;
};

}  // namespace

Clsm::Clsm(storage::StorageManager* storage, std::string prefix,
           Options options, storage::BufferPool* pool,
           core::RawSeriesStore* raw)
    : storage_(storage),
      prefix_(std::move(prefix)),
      options_(options),
      pool_(pool),
      raw_(raw),
      gen_(std::make_shared<stream::BufferGen>(
          options_.buffer_entries,
          static_cast<size_t>(options_.sax.series_length),
          options_.materialized)),
      runs_(std::make_shared<RunSet>()) {
  if (options_.background != nullptr) {
    executor_ = std::make_unique<SerialExecutor>(options_.background);
  }
  // Initial publication; no readers exist yet, so nothing to retire.
  std::lock_guard<std::mutex> lock(mu_);
  RepublishSnapshotLocked();
}

Clsm::~Clsm() {
  // Background tasks close over `this`; drain them before members die.
  if (executor_ != nullptr) executor_->Drain();
  // Unpublish, then wait out every reader that could still hold any
  // snapshot of this tree before members are torn down.
  stream::epoch::EpochManager::Global().Retire(
      snapshot_.exchange(nullptr, std::memory_order_acq_rel));
  stream::epoch::EpochManager::Global().Synchronize();
}

Result<std::unique_ptr<Clsm>> Clsm::Create(storage::StorageManager* storage,
                                           const std::string& prefix,
                                           const Options& options,
                                           storage::BufferPool* pool,
                                           core::RawSeriesStore* raw) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.growth_factor < 2) {
    return Status::InvalidArgument("growth_factor must be >= 2");
  }
  if (options.buffer_entries == 0) {
    return Status::InvalidArgument("buffer_entries must be > 0");
  }
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized CLSM needs a raw store for verification");
  }
  return std::unique_ptr<Clsm>(
      new Clsm(storage, prefix, options, pool, raw));
}

uint64_t Clsm::LevelCapacity(size_t level) const {
  uint64_t cap = options_.buffer_entries;
  for (size_t i = 0; i <= level; ++i) {
    cap *= static_cast<uint64_t>(options_.growth_factor);
  }
  return cap;
}

std::string Clsm::RunName(size_t level) {
  return prefix_ + ".L" + std::to_string(level) + "." +
         std::to_string(version_++);
}

const Clsm::QuerySnapshot* Clsm::RepublishSnapshotLocked() {
  auto snap = std::make_unique<QuerySnapshot>();
  snap->memtable = gen_;
  snap->pending = pending_;
  snap->runs = runs_;
  for (const auto& pending : pending_) snap->entries_pending += pending->count;
  for (const auto& level : *runs_) {
    if (level != nullptr) snap->entries_in_runs += level->num_entries();
  }
  snap->entries_rewritten = entries_rewritten_;
  snap->merges_performed = merges_performed_;
  snap->flushes_completed = flushes_completed_;
  return snapshot_.exchange(snap.release(), std::memory_order_acq_rel);
}

Clsm::QueryView Clsm::CaptureView() const {
  QueryView view;
  view.snap = snapshot_.load(std::memory_order_acquire);
  if (view.snap->memtable != nullptr) {
    // Capture the published count ONCE: the approximate seed and the exact
    // pass must evaluate the identical prefix even while admissions race
    // the count forward.
    const size_t count = static_cast<size_t>(
        view.snap->memtable->published.load(std::memory_order_acquire));
    view.memtable = view.snap->memtable->EntrySpan(count);
    view.memtable_payloads = view.snap->memtable->PayloadSpan(count);
  }
  return view;
}

std::shared_ptr<Clsm::PendingFlush> Clsm::DetachMemtableLocked() {
  const size_t count = MemtableCountLocked();
  if (count == 0) return nullptr;
  auto pending = std::make_shared<PendingFlush>();
  pending->gen = gen_;
  pending->count = count;
  pending_.push_back(pending);
  gen_ = std::make_shared<stream::BufferGen>(
      options_.buffer_entries,
      static_cast<size_t>(options_.sax.series_length), options_.materialized);
  return pending;
}

void Clsm::EnqueueFlushLocked(std::shared_ptr<const PendingFlush> pending) {
  // Called with mu_ held so strand order always matches detach order even
  // when Insert and FlushBuffer race. Safe: Submit only takes the
  // executor's own queue lock, never mu_.
  executor_->Submit([this, pending = std::move(pending)] {
    const Status status = FlushTask(pending);
    if (!status.ok()) RecordBackgroundError(status);
  });
}

void Clsm::RecordBackgroundError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (background_status_.ok()) background_status_ = status;
  // Wake inserts blocked on the flush cap: with the flusher dead the cap
  // will never clear, and they must surface the error instead of hanging.
  backpressure_.Notify();
}

void Clsm::PublishRuns(std::shared_ptr<const RunSet> runs,
                       const PendingFlush* retired_pending,
                       uint64_t rewritten, uint64_t merges) {
  const QuerySnapshot* superseded = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_ = std::move(runs);
    // Run-set publication (flush or cascade) changes the queryable snapshot.
    snapshot_version_.fetch_add(1, std::memory_order_acq_rel);
    if (retired_pending != nullptr) {
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->get() == retired_pending) {
          pending_.erase(it);
          break;
        }
      }
      ++flushes_completed_;
      // A pending flush retired: inserts blocked on the cap may proceed.
      backpressure_.Notify();
    }
    entries_rewritten_ += rewritten;
    merges_performed_ += merges;
    superseded = RepublishSnapshotLocked();
  }
  stream::epoch::EpochManager::Global().Retire(superseded);
}

Status Clsm::ApplyBackpressureLocked(std::unique_lock<std::mutex>* lock) {
  const size_t cap = options_.max_inflight_seals;
  if (cap == 0 || !async()) return Status::OK();
  if (MemtableCountLocked() + 1 < options_.buffer_entries ||
      pending_.size() < cap) {
    return Status::OK();
  }
  if (options_.backpressure == stream::BackpressurePolicy::kReject) {
    return backpressure_.Reject(pending_.size(), cap);
  }
  backpressure_.Block(lock, [this, cap] {
    return pending_.size() < cap || !background_status_.ok();
  });
  return background_status_;
}

Status Clsm::Insert(uint64_t series_id, std::span<const float> znorm_values,
                    int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }
  // Summarize outside the lock: admission needs no shared state.
  IndexEntry entry;
  entry.key = series::InterleaveSax(
      series::ComputeSax(znorm_values, options_.sax), options_.sax);
  entry.series_id = series_id;
  entry.timestamp = timestamp;

  std::shared_ptr<const PendingFlush> pending;
  const QuerySnapshot* superseded = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!background_status_.ok()) return background_status_;
    // Backpressure gates admission before any state commits: a refused or
    // error-woken entry leaves the memtable untouched.
    COCONUT_RETURN_NOT_OK(ApplyBackpressureLocked(&lock));
    const uint64_t n = gen_->published.load(std::memory_order_relaxed);
    gen_->entries[n] = entry;
    if (options_.materialized) {
      std::copy(znorm_values.begin(), znorm_values.end(),
                gen_->payloads.get() + n * gen_->series_length);
    }
    // The admission commit point, still under mu_: log record order is
    // exactly the admission order. The PP facade clamps timestamps before
    // Insert, so what is logged replays idempotently through this path.
    if (options_.wal != nullptr) {
      options_.wal->AppendAdmit(series_id, timestamp, znorm_values);
    }
    // Admitted: visible to snapshot readers from this release store.
    gen_->published.store(n + 1, std::memory_order_release);
    snapshot_version_.fetch_add(1, std::memory_order_acq_rel);
    if (n + 1 >= options_.buffer_entries) {
      pending = DetachMemtableLocked();
      if (pending != nullptr) {
        superseded = RepublishSnapshotLocked();
        if (async()) {
          EnqueueFlushLocked(pending);
          pending = nullptr;
        }
      }
    }
  }
  stream::epoch::EpochManager::Global().Retire(superseded);
  // Sync mode: flush inline, off the lock (FlushTask re-acquires mu_).
  if (pending != nullptr) return FlushTask(std::move(pending));
  return Status::OK();
}

Status Clsm::FlushBuffer() {
  std::shared_ptr<const PendingFlush> pending;
  const QuerySnapshot* superseded = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending = DetachMemtableLocked();
    if (pending != nullptr) {
      superseded = RepublishSnapshotLocked();
      if (async()) {
        EnqueueFlushLocked(pending);
        pending = nullptr;
      }
    }
  }
  stream::epoch::EpochManager::Global().Retire(superseded);
  if (pending != nullptr) {
    COCONUT_RETURN_NOT_OK(FlushTask(std::move(pending)));
  }
  if (async()) executor_->Drain();
  std::lock_guard<std::mutex> lock(mu_);
  return background_status_;
}

Status Clsm::MergeIntoLevel(RunSet* work, size_t level,
                            std::span<const IndexEntry> mem_entries,
                            std::span<const float> mem_payloads,
                            bool from_memtable,
                            std::vector<std::string>* retired,
                            uint64_t* rewritten) {
  const size_t len = options_.sax.series_length;

  // Assemble the newer input.
  std::unique_ptr<MergeSource> newer;
  if (from_memtable) {
    // Sort the buffer: indices sorted by key, then payloads permuted. The
    // detached generation is immutable, so the spans read race-free.
    std::vector<size_t> order(mem_entries.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&mem_entries](size_t a, size_t b) {
                return core::EntryKeyLess()(mem_entries[a], mem_entries[b]);
              });
    std::vector<IndexEntry> sorted_entries(mem_entries.size());
    std::vector<float> sorted_payloads;
    if (options_.materialized) sorted_payloads.resize(mem_payloads.size());
    for (size_t i = 0; i < order.size(); ++i) {
      sorted_entries[i] = mem_entries[order[i]];
      if (options_.materialized) {
        std::copy(mem_payloads.begin() + order[i] * len,
                  mem_payloads.begin() + (order[i] + 1) * len,
                  sorted_payloads.begin() + i * len);
      }
    }
    newer = std::make_unique<MemtableSource>(std::move(sorted_entries),
                                             std::move(sorted_payloads), len);
  } else {
    newer = std::make_unique<TableSource>((*work)[level - 1].get());
  }

  if (work->size() <= level) work->resize(level + 1);

  // Older input: the existing run at this level, if any.
  std::unique_ptr<MergeSource> older;
  if ((*work)[level] != nullptr) {
    older = std::make_unique<TableSource>((*work)[level].get());
  }

  const std::string new_name = RunName(level);
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<SeqTableBuilder> builder,
      SeqTableBuilder::Create(storage_, new_name, RunOptions(options_)));

  // Two-way merge; ties go to the newer input (freshness, though entries
  // are append-only here so order among equals is cosmetic).
  IndexEntry a_entry, b_entry;
  std::vector<float> a_payload, b_payload;
  COCONUT_ASSIGN_OR_RETURN(bool a_has, newer->Next(&a_entry, &a_payload));
  bool b_has = false;
  if (older != nullptr) {
    COCONUT_ASSIGN_OR_RETURN(b_has, older->Next(&b_entry, &b_payload));
  }
  while (a_has || b_has) {
    const bool take_a =
        a_has && (!b_has || !core::EntryKeyLess()(b_entry, a_entry));
    if (take_a) {
      COCONUT_RETURN_NOT_OK(builder->Add(
          a_entry, options_.materialized
                       ? std::span<const float>(a_payload)
                       : std::span<const float>()));
      COCONUT_ASSIGN_OR_RETURN(a_has, newer->Next(&a_entry, &a_payload));
    } else {
      COCONUT_RETURN_NOT_OK(builder->Add(
          b_entry, options_.materialized
                       ? std::span<const float>(b_payload)
                       : std::span<const float>()));
      COCONUT_ASSIGN_OR_RETURN(b_has, older->Next(&b_entry, &b_payload));
    }
  }
  *rewritten += builder->entries_added();
  COCONUT_RETURN_NOT_OK(builder->Finish());

  // Swap the merged run into the working copy; remember replaced names so
  // their files are unlinked after publication.
  if ((*work)[level] != nullptr) {
    retired->push_back((*work)[level]->name());
  }
  if (!from_memtable) {
    retired->push_back((*work)[level - 1]->name());
    (*work)[level - 1] = nullptr;
  }
  COCONUT_ASSIGN_OR_RETURN(std::shared_ptr<SeqTable> opened,
                           SeqTable::Open(storage_, new_name, ReadPool()));
  (*work)[level] = std::move(opened);
  return Status::OK();
}

Status Clsm::FlushTask(std::shared_ptr<const PendingFlush> pending) {
  // Test seam: fault-injection suites throttle flushes here (to pile up
  // in-flight memtables against the cap) or fail them outright.
  if (options_.seal_test_hook) {
    COCONUT_RETURN_NOT_OK(options_.seal_test_hook());
  }
  // Working copy of the current run set: this path is the only mutator and
  // is serialized (strand in async mode, single caller in sync mode).
  RunSet work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    work = *runs_;
  }

  // Level-0 merge folds the detached memtable in; publish immediately so
  // the pending data is retired the instant it is queryable on disk.
  std::vector<std::string> retired;
  uint64_t rewritten = 0;
  COCONUT_RETURN_NOT_OK(MergeIntoLevel(&work, 0, pending->entries(),
                                       pending->payloads(),
                                       /*from_memtable=*/true, &retired,
                                       &rewritten));
  PublishRuns(std::make_shared<RunSet>(work), pending.get(), rewritten,
              /*merges=*/1);
  for (const std::string& name : retired) {
    COCONUT_RETURN_NOT_OK(RetireFile(name));
  }

  // Cascade: push overflowing runs down, publishing after every merge so
  // queries always see a complete, consistent set.
  for (size_t level = 0; level < work.size(); ++level) {
    if (work[level] == nullptr) continue;
    if (work[level]->num_entries() <= LevelCapacity(level)) break;
    retired.clear();
    rewritten = 0;
    COCONUT_RETURN_NOT_OK(MergeIntoLevel(&work, level + 1, {}, {},
                                         /*from_memtable=*/false, &retired,
                                         &rewritten));
    PublishRuns(std::make_shared<RunSet>(work), /*retired_pending=*/nullptr,
                rewritten, /*merges=*/1);
    for (const std::string& name : retired) {
      COCONUT_RETURN_NOT_OK(RetireFile(name));
    }
  }
  // The cascade is complete and its outputs are synced; record the new
  // run set durably so recovery replays only the suffix.
  return CheckpointDurable();
}

void Clsm::EncodeManifest(std::vector<uint8_t>* manifest,
                          uint64_t* durable_entries) const {
  std::shared_ptr<const RunSet> runs;
  uint64_t version = 0;
  uint64_t rewritten = 0;
  uint64_t merges = 0;
  uint64_t flushes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs = runs_;
    version = version_;
    rewritten = entries_rewritten_;
    merges = merges_performed_;
    flushes = flushes_completed_;
  }
  manifest->clear();
  *durable_entries = 0;
  stream::WalPutU32(manifest, static_cast<uint32_t>(runs->size()));
  for (const auto& level : *runs) {
    stream::WalPutU32(manifest, level != nullptr ? 1 : 0);
    if (level == nullptr) continue;
    stream::WalPutString(manifest, level->name());
    stream::WalPutU64(manifest, level->num_entries());
    *durable_entries += level->num_entries();
  }
  stream::WalPutU64(manifest, version);
  stream::WalPutU64(manifest, rewritten);
  stream::WalPutU64(manifest, merges);
  stream::WalPutU64(manifest, flushes);
}

Status Clsm::RestoreFromManifest(std::span<const uint8_t> manifest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (MemtableCountLocked() != 0 || !pending_.empty() || !runs_->empty()) {
      return Status::InvalidArgument(
          "manifest restore requires an empty tree");
    }
  }
  stream::WalReader reader(manifest);
  uint32_t level_count = 0;
  if (!reader.GetU32(&level_count)) {
    return Status::DataLoss("checkpoint manifest truncated");
  }
  auto runs = std::make_shared<RunSet>();
  runs->resize(level_count);
  for (uint32_t i = 0; i < level_count; ++i) {
    uint32_t present = 0;
    if (!reader.GetU32(&present)) {
      return Status::DataLoss("checkpoint manifest truncated");
    }
    if (present == 0) continue;
    std::string name;
    uint64_t entries = 0;
    if (!reader.GetString(&name) || !reader.GetU64(&entries)) {
      return Status::DataLoss("checkpoint manifest truncated");
    }
    COCONUT_ASSIGN_OR_RETURN(std::shared_ptr<SeqTable> table,
                             SeqTable::Open(storage_, name, ReadPool()));
    if (table->num_entries() != entries) {
      return Status::DataLoss(
          "run " + name + " holds " + std::to_string(table->num_entries()) +
          " entries, checkpoint manifest recorded " + std::to_string(entries));
    }
    (*runs)[i] = std::move(table);
  }
  uint64_t version = 0;
  uint64_t rewritten = 0;
  uint64_t merges = 0;
  uint64_t flushes = 0;
  if (!reader.GetU64(&version) || !reader.GetU64(&rewritten) ||
      !reader.GetU64(&merges) || !reader.GetU64(&flushes) ||
      !reader.AtEnd()) {
    return Status::DataLoss("checkpoint manifest truncated");
  }
  const QuerySnapshot* superseded = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_ = std::move(runs);
    version_ = version;
    entries_rewritten_ = rewritten;
    merges_performed_ = merges;
    flushes_completed_ = flushes;
    snapshot_version_.fetch_add(1, std::memory_order_acq_rel);
    superseded = RepublishSnapshotLocked();
  }
  stream::epoch::EpochManager::Global().Retire(superseded);
  return Status::OK();
}

Status Clsm::CommitDurable() {
  if (options_.wal == nullptr) return Status::OK();
  return options_.wal->Commit();
}

Status Clsm::CheckpointDurable() {
  if (options_.wal == nullptr) return Status::OK();
  std::vector<uint8_t> manifest;
  uint64_t durable = 0;
  EncodeManifest(&manifest, &durable);
  COCONUT_RETURN_NOT_OK(options_.wal->AppendCheckpoint(durable, manifest));
  // Only now is it safe to drop files the previous checkpoint referenced.
  std::vector<std::string> unlinks;
  unlinks.swap(pending_unlinks_);
  for (const std::string& name : unlinks) {
    COCONUT_RETURN_NOT_OK(storage_->RemoveFile(name));
  }
  return Status::OK();
}

Status Clsm::RetireFile(const std::string& name) {
  if (options_.wal != nullptr) {
    pending_unlinks_.push_back(name);
    return Status::OK();
  }
  return storage_->RemoveFile(name);
}

Result<std::vector<SearchResult>> Clsm::KnnSearch(
    std::span<const float> query, size_t k, const SearchOptions& options,
    core::QueryCounters* counters) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  stream::epoch::EpochGuard guard;
  const QueryView view = CaptureView();
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  seqtable::KnnCollector collector(k);

  // In-memory entries first (cheap, tightens the bound): the memtable and
  // any flushes still in flight.
  const size_t len = options_.sax.series_length;
  auto offer_batch = [&](std::span<const IndexEntry> entries,
                         std::span<const float> payloads) -> Status {
    for (size_t i = 0; i < entries.size(); ++i) {
      const IndexEntry& entry = entries[i];
      if (!options.window.Contains(entry.timestamp)) continue;
      const series::SaxWord word =
          series::DeinterleaveKey(entry.key, options_.sax);
      if (series::MinDistSquaredToSax(ctx.query_paa, word, options_.sax) >=
          collector.bound()) {
        continue;
      }
      SearchResult candidate;
      candidate.found = true;
      candidate.series_id = entry.series_id;
      candidate.timestamp = entry.timestamp;
      if (options_.materialized) {
        candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
            query, std::span<const float>(payloads.data() + i * len, len),
            collector.bound());
      } else {
        std::vector<float> fetched(len);
        COCONUT_RETURN_NOT_OK(raw_->Get(entry.series_id, fetched));
        if (counters != nullptr) ++counters->raw_fetches;
        candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
            query, fetched, collector.bound());
      }
      collector.Offer(candidate);
    }
    return Status::OK();
  };
  COCONUT_RETURN_NOT_OK(offer_batch(view.memtable, view.memtable_payloads));
  for (const auto& pending : view.snap->pending) {
    COCONUT_RETURN_NOT_OK(offer_batch(pending->entries(), pending->payloads()));
  }

  for (const auto& level : *view.snap->runs) {
    if (level == nullptr) continue;
    COCONUT_RETURN_NOT_OK(
        seqtable::ExactKnnScanTable(*level, ctx, options, &collector));
  }
  return collector.Take();
}

uint64_t Clsm::num_entries() const {
  stream::epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  uint64_t total = snap->entries_pending + snap->entries_in_runs;
  if (snap->memtable != nullptr) {
    total += snap->memtable->published.load(std::memory_order_acquire);
  }
  return total;
}

size_t Clsm::num_active_levels() const {
  stream::epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  size_t active = 0;
  for (const auto& level : *snap->runs) {
    if (level != nullptr) ++active;
  }
  return active;
}

uint64_t Clsm::level_entries(size_t level) const {
  stream::epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  if (level >= snap->runs->size() || (*snap->runs)[level] == nullptr) return 0;
  return (*snap->runs)[level]->num_entries();
}

uint64_t Clsm::total_file_bytes() const {
  stream::epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  uint64_t total = 0;
  for (const auto& level : *snap->runs) {
    if (level != nullptr) total += level->file_bytes();
  }
  return total;
}

stream::StreamingStats Clsm::SnapshotStats() const {
  stream::epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  stream::StreamingStats stats;
  stats.buffered =
      snap->memtable != nullptr
          ? static_cast<size_t>(
                snap->memtable->published.load(std::memory_order_acquire))
          : 0;
  stats.entries = stats.buffered + snap->entries_pending + snap->entries_in_runs;
  uint64_t runs = 0;
  for (const auto& level : *snap->runs) {
    if (level != nullptr) ++runs;
  }
  stats.sealed_partitions = runs;
  stats.pending_tasks = snap->pending.size();
  stats.seals_completed = snap->flushes_completed;
  stats.merges_completed = snap->merges_performed;
  stats.seals_inflight = snap->pending.size();
  stats.ingest_stalls = backpressure_.stalls();
  stats.ingest_rejects = backpressure_.rejects();
  stats.stall_ms_p50 = backpressure_.StallPercentileMs(0.50);
  stats.stall_ms_p99 = backpressure_.StallPercentileMs(0.99);
  stats.stall_samples = backpressure_.SnapshotSamples();
  return stats;
}

Status Clsm::SearchMemtableEntries(std::span<const IndexEntry> entries,
                                   std::span<const float> payloads,
                                   const std::span<const float>& query,
                                   const SearchOptions& options,
                                   core::QueryCounters* counters,
                                   int max_verifications, SearchResult* best) {
  if (entries.empty()) return Status::OK();
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  return seqtable::EvaluateCandidates(ctx, options, entries, payloads,
                                      options_.materialized,
                                      max_verifications, best);
}

Status Clsm::ApproxPassOverSnapshot(const QueryView& view,
                                    std::span<const float> query,
                                    const SearchOptions& options,
                                    core::QueryCounters* counters,
                                    SearchResult* best) {
  COCONUT_RETURN_NOT_OK(SearchMemtableEntries(
      view.memtable, view.memtable_payloads, query, options, counters,
      options.approx_candidates, best));
  for (const auto& pending : view.snap->pending) {
    COCONUT_RETURN_NOT_OK(SearchMemtableEntries(
        pending->entries(), pending->payloads(), query, options, counters,
        options.approx_candidates, best));
  }
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  for (const auto& level : *view.snap->runs) {
    if (level == nullptr) continue;
    COCONUT_ASSIGN_OR_RETURN(SearchResult r,
                             seqtable::ApproxSearchTable(*level, ctx, options));
    best->Improve(r);
  }
  return Status::OK();
}

Result<SearchResult> Clsm::ApproxSearch(std::span<const float> query,
                                        const SearchOptions& options,
                                        core::QueryCounters* counters) {
  stream::epoch::EpochGuard guard;
  const QueryView view = CaptureView();
  SearchResult best;
  COCONUT_RETURN_NOT_OK(
      ApproxPassOverSnapshot(view, query, options, counters, &best));
  return best;
}

Result<SearchResult> Clsm::ExactSearch(std::span<const float> query,
                                       const SearchOptions& options,
                                       core::QueryCounters* counters) {
  // One captured view serves the approximate seed and the exact scans, so
  // both passes see the same entries even while ingestion races ahead. The
  // best distance is shared across runs, so later runs prune harder.
  stream::epoch::EpochGuard guard;
  const QueryView view = CaptureView();
  SearchResult best;
  COCONUT_RETURN_NOT_OK(
      ApproxPassOverSnapshot(view, query, options, counters, &best));
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  COCONUT_RETURN_NOT_OK(SearchMemtableEntries(
      view.memtable, view.memtable_payloads, query, options, counters,
      /*max_verifications=*/-1, &best));
  for (const auto& pending : view.snap->pending) {
    COCONUT_RETURN_NOT_OK(SearchMemtableEntries(
        pending->entries(), pending->payloads(), query, options, counters,
        /*max_verifications=*/-1, &best));
  }
  for (const auto& level : *view.snap->runs) {
    if (level == nullptr) continue;
    COCONUT_RETURN_NOT_OK(
        seqtable::ExactScanTable(*level, ctx, options, &best));
  }
  return best;
}

}  // namespace clsm
}  // namespace coconut
