#include "stream/tp.h"

#include <algorithm>

#include "common/timer.h"
#include "seqtable/table_search.h"
#include "series/paa.h"
#include "stream/wal.h"

namespace coconut {
namespace stream {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;
using core::TimeWindow;

}  // namespace

TemporalPartitioningIndex::TemporalPartitioningIndex(
    storage::StorageManager* storage, std::string prefix,
    const Options& options, storage::BufferPool* pool,
    core::RawSeriesStore* raw)
    : storage_(storage),
      prefix_(std::move(prefix)),
      options_(options),
      pool_(pool),
      raw_(raw),
      partitions_(std::make_shared<PartitionSet>()) {
  if (options_.backend == PartitionBackend::kSeqTable) {
    gen_ = std::make_shared<BufferGen>(
        options_.buffer_entries,
        static_cast<size_t>(options_.sax.series_length),
        options_.materialized);
  }
  if (options_.background != nullptr) {
    executor_ = std::make_unique<SerialExecutor>(options_.background);
  }
  // First publication; no reader exists yet and nothing is superseded.
  RepublishSnapshotLocked();
}

TemporalPartitioningIndex::~TemporalPartitioningIndex() {
  // Background tasks close over `this`; drain them before members die.
  DrainBackground();
  // Unpublish and wait for epoch quiescence: a reader that loaded the
  // snapshot before this destructor ran finishes inside its guard before
  // the snapshot (or anything it references) is freed.
  const QuerySnapshot* last =
      snapshot_.exchange(nullptr, std::memory_order_acq_rel);
  epoch::EpochManager::Global().Retire(last);
  epoch::EpochManager::Global().Synchronize();
}

Result<std::unique_ptr<TemporalPartitioningIndex>>
TemporalPartitioningIndex::Create(storage::StorageManager* storage,
                                  const std::string& prefix,
                                  const Options& options,
                                  storage::BufferPool* pool,
                                  core::RawSeriesStore* raw) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.buffer_entries == 0) {
    return Status::InvalidArgument("buffer_entries must be > 0");
  }
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized TP needs a raw store for verification");
  }
  if (options.background != nullptr &&
      options.backend == PartitionBackend::kAds) {
    return Status::InvalidArgument(
        "background ingestion requires the kSeqTable backend (a live ADS+ "
        "tree cannot be sealed behind ingestion's back)");
  }
  if (options.wal != nullptr && options.backend == PartitionBackend::kAds) {
    return Status::InvalidArgument(
        "durability requires the kSeqTable backend (an ADS+ partition has "
        "no checkpointable manifest)");
  }
  return std::unique_ptr<TemporalPartitioningIndex>(
      new TemporalPartitioningIndex(storage, prefix, options, pool, raw));
}

Status TemporalPartitioningIndex::EnsureCurrentAdsLocked() {
  if (current_ads_ != nullptr) return Status::OK();
  ads::AdsIndex::Options aopts;
  aopts.sax = options_.sax;
  aopts.materialized = options_.materialized;
  aopts.leaf_capacity = options_.ads_leaf_capacity;
  aopts.global_buffer_entries = options_.buffer_entries;
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<ads::AdsIndex> ads,
      ads::AdsIndex::Create(
          storage_, prefix_ + ".p" + std::to_string(next_partition_id_),
          aopts, raw_));
  current_ads_ = std::move(ads);
  return Status::OK();
}

size_t TemporalPartitioningIndex::UnsealedCountLocked() const {
  if (options_.backend == PartitionBackend::kAds) {
    return current_ads_ == nullptr
               ? 0
               : static_cast<size_t>(current_ads_->num_entries());
  }
  return gen_ == nullptr
             ? 0
             : static_cast<size_t>(
                   gen_->published.load(std::memory_order_relaxed));
}

const TemporalPartitioningIndex::QuerySnapshot*
TemporalPartitioningIndex::RepublishSnapshotLocked() {
  auto* snap = new QuerySnapshot();
  snap->buffer = gen_;
  snap->pending = pending_;
  snap->partitions = partitions_;
  snap->current_ads = current_ads_;
  if (current_ads_ != nullptr) {
    snap->ads_buffered = current_ads_->num_entries();
  }
  for (const auto& p : pending_) snap->entries_pending += p->count;
  uint64_t bytes = 0;
  for (const auto& p : *partitions_) {
    snap->entries_sealed += p->entries;
    if (p->table != nullptr) bytes += p->table->file_bytes();
    if (p->ads != nullptr) bytes += p->ads->total_file_bytes();
  }
  if (current_ads_ != nullptr) bytes += current_ads_->total_file_bytes();
  snap->index_bytes = bytes;
  snap->seals_completed = seals_completed_;
  snap->merges_completed = merges_completed_;
  return snapshot_.exchange(snap, std::memory_order_acq_rel);
}

std::shared_ptr<const TemporalPartitioningIndex::PartitionSet>
TemporalPartitioningIndex::CurrentPartitions() const {
  epoch::EpochGuard guard;
  return snapshot_.load(std::memory_order_acquire)->partitions;
}

void TemporalPartitioningIndex::PublishPartitions(
    std::shared_ptr<const PartitionSet> set,
    const PendingSeal* retired_pending, bool count_seal,
    uint64_t merges_delta) {
  const QuerySnapshot* retired = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    partitions_ = std::move(set);
    // Publication changes the queryable partition set (a seal or a merge
    // can change approx-search pruning order even when contents are
    // identical).
    BumpSnapshotVersion();
    if (retired_pending != nullptr) {
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->get() == retired_pending) {
          pending_.erase(it);
          break;
        }
      }
      // A pending seal retired: ingests blocked on the seal cap may
      // proceed.
      backpressure_.Notify();
    }
    if (count_seal) ++seals_completed_;
    merges_completed_ += merges_delta;
    retired = RepublishSnapshotLocked();
  }
  epoch::EpochManager::Global().Retire(retired);
}

void TemporalPartitioningIndex::RecordBackgroundError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (background_status_.ok()) background_status_ = status;
  // Wake ingests blocked on the seal cap: with the flusher dead the cap
  // will never clear, and they must surface the error instead of hanging.
  backpressure_.Notify();
}

Status TemporalPartitioningIndex::ApplyBackpressureLocked(
    std::unique_lock<std::mutex>* lock) {
  const size_t cap = options_.max_inflight_seals;
  if (cap == 0 || !async()) return Status::OK();
  // Only the admission that would detach one more buffer is gated; the
  // buffer itself is already bounded by buffer_entries.
  if (UnsealedCountLocked() + 1 < options_.buffer_entries ||
      pending_.size() < cap) {
    return Status::OK();
  }
  if (options_.backpressure == BackpressurePolicy::kReject) {
    return backpressure_.Reject(pending_.size(), cap);
  }
  backpressure_.Block(lock, [this, cap] {
    return pending_.size() < cap || !background_status_.ok();
  });
  return background_status_;
}

Status TemporalPartitioningIndex::BackgroundStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  return background_status_;
}

std::shared_ptr<TemporalPartitioningIndex::PendingSeal>
TemporalPartitioningIndex::DetachBufferLocked() {
  const size_t count = UnsealedCountLocked();
  if (count == 0) return nullptr;
  auto pending = std::make_shared<PendingSeal>();
  pending->gen = gen_;
  pending->count = count;
  pending->t_min = unsealed_t_min_;
  pending->t_max = unsealed_t_max_;
  unsealed_t_min_ = INT64_MAX;
  unsealed_t_max_ = INT64_MIN;
  pending->name = prefix_ + ".p" + std::to_string(next_partition_id_++);
  pending_.push_back(pending);
  // Fresh generation for the ingest path; the detached one is frozen (its
  // writer is gone) and lives on through the pending descriptor and any
  // published snapshots.
  gen_ = std::make_shared<BufferGen>(
      options_.buffer_entries,
      static_cast<size_t>(options_.sax.series_length), options_.materialized);
  return pending;
}

void TemporalPartitioningIndex::EnqueueSealLocked(
    std::shared_ptr<const PendingSeal> pending) {
  // Called with mu_ held so strand order always matches detach order even
  // when Ingest and FlushAll race. Safe: Submit only takes the executor's
  // own queue lock, never mu_.
  executor_->Submit([this, pending = std::move(pending)] {
    const Status status = SealTask(pending);
    if (!status.ok()) RecordBackgroundError(status);
  });
}

Status TemporalPartitioningIndex::SealTask(
    std::shared_ptr<const PendingSeal> pending) {
  // Test seam: fault-injection suites throttle seals here (to pile up
  // in-flight buffers against the cap) or fail them outright.
  if (options_.seal_test_hook) {
    COCONUT_RETURN_NOT_OK(options_.seal_test_hook());
  }
  // Sort by key and lay the buffer out as one compact partition. All the
  // I/O happens here, off the ingest lock.
  const size_t len = options_.sax.series_length;
  const std::span<const IndexEntry> entries = pending->entries();
  const std::span<const float> payloads = pending->payloads();
  std::vector<size_t> order(pending->count);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&entries](size_t a, size_t b) {
    return core::EntryKeyLess()(entries[a], entries[b]);
  });
  seqtable::SeqTableOptions topts;
  topts.sax = options_.sax;
  topts.materialized = options_.materialized;
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<seqtable::SeqTableBuilder> builder,
      seqtable::SeqTableBuilder::Create(storage_, pending->name, topts));
  for (size_t i : order) {
    std::span<const float> payload;
    if (options_.materialized) {
      payload = payloads.subspan(i * len, len);
    }
    COCONUT_RETURN_NOT_OK(builder->Add(entries[i], payload));
  }
  auto partition = std::make_shared<SealedPartition>();
  partition->entries = builder->entries_added();
  COCONUT_RETURN_NOT_OK(builder->Finish());
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<seqtable::SeqTable> table,
      seqtable::SeqTable::Open(storage_, pending->name, ReadPool()));
  partition->table = std::move(table);
  partition->t_min = pending->t_min;
  partition->t_max = pending->t_max;
  partition->name = pending->name;

  auto next = std::make_shared<PartitionSet>(*CurrentPartitions());
  next->push_back(std::move(partition));
  PublishPartitions(std::move(next), pending.get(), /*count_seal=*/true,
                    /*merges_delta=*/0);
  COCONUT_RETURN_NOT_OK(AfterSeal());
  return CheckpointDurable();
}

Status TemporalPartitioningIndex::Ingest(uint64_t series_id,
                                         std::span<const float> znorm_values,
                                         int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }

  if (options_.backend == PartitionBackend::kAds) {
    // Synchronous-only backend; everything under the lock for simplicity.
    const QuerySnapshot* retired = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.timestamp_policy == TimestampPolicy::kStrict &&
          timestamp < last_timestamp_) {
        return Status::InvalidArgument(
            "timestamp regression rejected by kStrict policy");
      }
      if (options_.timestamp_policy == TimestampPolicy::kClamp) {
        timestamp = std::max(timestamp, last_timestamp_);
      }
      COCONUT_RETURN_NOT_OK(EnsureCurrentAdsLocked());
      COCONUT_RETURN_NOT_OK(
          current_ads_->Insert(series_id, znorm_values, timestamp));
      // Watermark and range commit only once the entry is actually
      // admitted.
      last_timestamp_ = std::max(last_timestamp_, timestamp);
      unsealed_t_min_ = std::min(unsealed_t_min_, timestamp);
      unsealed_t_max_ = std::max(unsealed_t_max_, timestamp);
      if (UnsealedCountLocked() >= options_.buffer_entries) {
        COCONUT_RETURN_NOT_OK(current_ads_->FlushAll());
        auto partition = std::make_shared<SealedPartition>();
        partition->entries = current_ads_->num_entries();
        partition->ads = std::move(current_ads_);
        current_ads_ = nullptr;
        partition->t_min = unsealed_t_min_;
        partition->t_max = unsealed_t_max_;
        partition->name =
            prefix_ + ".p" + std::to_string(next_partition_id_++);
        unsealed_t_min_ = INT64_MAX;
        unsealed_t_max_ = INT64_MIN;
        auto next = std::make_shared<PartitionSet>(*partitions_);
        next->push_back(std::move(partition));
        partitions_ = std::move(next);
        ++seals_completed_;
      }
      // Admission (and the occasional inline seal) changed the answer set.
      // The live ADS+ tree mutates in place, so every admission republishes
      // the snapshot — that keeps the stats mirrors exact without readers
      // ever touching the tree's internals.
      BumpSnapshotVersion();
      retired = RepublishSnapshotLocked();
    }
    epoch::EpochManager::Global().Retire(retired);
    return Status::OK();
  }

  // Summarize outside the lock: the SAX computation is the CPU-heavy part
  // of admission and needs no shared state.
  IndexEntry entry;
  entry.key = series::InterleaveSax(
      series::ComputeSax(znorm_values, options_.sax), options_.sax);
  entry.series_id = series_id;

  std::shared_ptr<const PendingSeal> pending;
  const QuerySnapshot* retired = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!background_status_.ok()) return background_status_;
    // Backpressure gates admission before any state commits: a refused or
    // error-woken entry leaves the watermark, ranges and buffer untouched.
    COCONUT_RETURN_NOT_OK(ApplyBackpressureLocked(&lock));
    if (options_.timestamp_policy == TimestampPolicy::kStrict &&
        timestamp < last_timestamp_) {
      return Status::InvalidArgument(
          "timestamp regression rejected by kStrict policy");
    }
    if (options_.timestamp_policy == TimestampPolicy::kClamp) {
      timestamp = std::max(timestamp, last_timestamp_);
    }
    last_timestamp_ = std::max(last_timestamp_, timestamp);
    entry.timestamp = timestamp;
    const uint64_t n = gen_->published.load(std::memory_order_relaxed);
    gen_->entries[n] = entry;
    if (options_.materialized) {
      std::copy(znorm_values.begin(), znorm_values.end(),
                gen_->payloads.get() +
                    n * static_cast<size_t>(options_.sax.series_length));
    }
    // This is the admission commit point, still under mu_: the log record
    // order is exactly the admission order (a checkpoint from the strand
    // cannot slip between the write and the record). The clamped timestamp
    // is logged so replay through this same path is idempotent.
    if (options_.wal != nullptr) {
      options_.wal->AppendAdmit(series_id, timestamp, znorm_values);
    }
    unsealed_t_min_ = std::min(unsealed_t_min_, timestamp);
    unsealed_t_max_ = std::max(unsealed_t_max_, timestamp);
    // The entry is admitted (visible to snapshot readers) from here: the
    // release store pairs with readers' acquire load of the count.
    gen_->published.store(n + 1, std::memory_order_release);
    BumpSnapshotVersion();
    if (n + 1 >= options_.buffer_entries) {
      pending = DetachBufferLocked();
      retired = RepublishSnapshotLocked();
      if (pending != nullptr && async()) {
        EnqueueSealLocked(pending);
        pending = nullptr;
      }
    }
  }
  if (retired != nullptr) epoch::EpochManager::Global().Retire(retired);
  // Sync mode: seal inline, off the lock (SealTask re-acquires mu_).
  if (pending != nullptr) return SealTask(std::move(pending));
  return Status::OK();
}

Status TemporalPartitioningIndex::FlushAll() {
  if (options_.backend == PartitionBackend::kAds) {
    const QuerySnapshot* retired = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (UnsealedCountLocked() == 0) return Status::OK();
      COCONUT_RETURN_NOT_OK(current_ads_->FlushAll());
      auto partition = std::make_shared<SealedPartition>();
      partition->entries = current_ads_->num_entries();
      partition->ads = std::move(current_ads_);
      current_ads_ = nullptr;
      partition->t_min = unsealed_t_min_;
      partition->t_max = unsealed_t_max_;
      partition->name = prefix_ + ".p" + std::to_string(next_partition_id_++);
      unsealed_t_min_ = INT64_MAX;
      unsealed_t_max_ = INT64_MIN;
      auto next = std::make_shared<PartitionSet>(*partitions_);
      next->push_back(std::move(partition));
      partitions_ = std::move(next);
      ++seals_completed_;
      BumpSnapshotVersion();
      retired = RepublishSnapshotLocked();
    }
    epoch::EpochManager::Global().Retire(retired);
    return Status::OK();
  }

  std::shared_ptr<const PendingSeal> pending;
  const QuerySnapshot* retired = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending = DetachBufferLocked();
    if (pending != nullptr) {
      retired = RepublishSnapshotLocked();
      if (async()) {
        EnqueueSealLocked(pending);
        pending = nullptr;
      }
    }
  }
  if (retired != nullptr) epoch::EpochManager::Global().Retire(retired);
  if (pending != nullptr) {
    COCONUT_RETURN_NOT_OK(SealTask(std::move(pending)));
  }
  if (async()) executor_->Drain();
  return BackgroundStatus();
}

TemporalPartitioningIndex::QueryView
TemporalPartitioningIndex::CaptureView() const {
  QueryView view;
  view.snap = snapshot_.load(std::memory_order_acquire);
  if (view.snap->buffer != nullptr) {
    // Capture the published count once: the approximate seed and the
    // exact pass must evaluate exactly the same prefix even while
    // admissions race the count forward.
    const uint64_t n =
        view.snap->buffer->published.load(std::memory_order_acquire);
    view.buffer = view.snap->buffer->EntrySpan(n);
    view.buffer_payloads = view.snap->buffer->PayloadSpan(n);
  }
  return view;
}

Status TemporalPartitioningIndex::SearchUnsealedEntries(
    std::span<const IndexEntry> entries, std::span<const float> payloads,
    std::span<const float> query, const SearchOptions& options,
    core::QueryCounters* counters, bool exact, SearchResult* best) const {
  if (entries.empty()) return Status::OK();
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  return seqtable::EvaluateCandidates(
      ctx, options, entries, payloads, options_.materialized,
      exact ? -1 : options.approx_candidates, best);
}

Status TemporalPartitioningIndex::ApproxPassOverSnapshot(
    const QueryView& view, std::span<const float> query,
    const SearchOptions& options, core::QueryCounters* counters,
    SearchResult* best) {
  const QuerySnapshot& snap = *view.snap;
  // Newest data first: the unsealed tail, in-flight seals, then partitions
  // newest to oldest.
  if (snap.current_ads != nullptr && snap.ads_buffered > 0) {
    COCONUT_ASSIGN_OR_RETURN(
        SearchResult r, snap.current_ads->ApproxSearch(query, options,
                                                       counters));
    best->Improve(r);
  }
  COCONUT_RETURN_NOT_OK(SearchUnsealedEntries(
      view.buffer, view.buffer_payloads, query, options, counters,
      /*exact=*/false, best));
  for (auto it = snap.pending.rbegin(); it != snap.pending.rend(); ++it) {
    COCONUT_RETURN_NOT_OK(SearchUnsealedEntries(
        (*it)->entries(), (*it)->payloads(), query, options, counters,
        /*exact=*/false, best));
  }
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  for (auto it = snap.partitions->rbegin(); it != snap.partitions->rend();
       ++it) {
    const SealedPartition& p = **it;
    if (!options.window.Intersects(p.t_min, p.t_max)) {
      if (counters != nullptr) ++counters->partitions_skipped;
      continue;
    }
    if (counters != nullptr) ++counters->partitions_visited;
    // Fully covered partitions skip per-entry timestamp checks.
    SearchOptions inner = options;
    if (options.window.Covers(p.t_min, p.t_max)) {
      inner.window = TimeWindow::All();
    }
    if (p.table != nullptr) {
      COCONUT_ASSIGN_OR_RETURN(
          SearchResult r, seqtable::ApproxSearchTable(*p.table, ctx, inner));
      best->Improve(r);
    } else {
      COCONUT_ASSIGN_OR_RETURN(SearchResult r,
                               p.ads->ApproxSearch(query, inner, counters));
      best->Improve(r);
    }
  }
  return Status::OK();
}

Result<SearchResult> TemporalPartitioningIndex::ApproxSearch(
    std::span<const float> query, const SearchOptions& options,
    core::QueryCounters* counters) {
  // Lock-free read: the guard spans the whole query (including partition
  // I/O), so everything the snapshot references stays alive without any
  // reference-count traffic.
  epoch::EpochGuard guard;
  const QueryView view = CaptureView();
  SearchResult best;
  COCONUT_RETURN_NOT_OK(
      ApproxPassOverSnapshot(view, query, options, counters, &best));
  return best;
}

Result<SearchResult> TemporalPartitioningIndex::ExactSearch(
    std::span<const float> query, const SearchOptions& options,
    core::QueryCounters* counters) {
  // One view serves both passes, so the approximate seed and the exact
  // scan see the same entries even while ingestion races ahead.
  epoch::EpochGuard guard;
  const QueryView view = CaptureView();
  const QuerySnapshot& snap = *view.snap;
  SearchResult best;
  // Approximate pass (cheap, tightens the bound) over the snapshot.
  COCONUT_RETURN_NOT_OK(
      ApproxPassOverSnapshot(view, query, options, counters, &best));
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);

  // Exact pass: every intersecting source with the shared best-so-far.
  if (snap.current_ads != nullptr && snap.ads_buffered > 0) {
    COCONUT_ASSIGN_OR_RETURN(
        SearchResult r, snap.current_ads->ExactSearch(query, options,
                                                      counters));
    best.Improve(r);
  }
  COCONUT_RETURN_NOT_OK(SearchUnsealedEntries(
      view.buffer, view.buffer_payloads, query, options, counters,
      /*exact=*/true, &best));
  for (auto it = snap.pending.rbegin(); it != snap.pending.rend(); ++it) {
    COCONUT_RETURN_NOT_OK(SearchUnsealedEntries(
        (*it)->entries(), (*it)->payloads(), query, options, counters,
        /*exact=*/true, &best));
  }
  for (auto it = snap.partitions->rbegin(); it != snap.partitions->rend();
       ++it) {
    const SealedPartition& p = **it;
    if (!options.window.Intersects(p.t_min, p.t_max)) continue;
    SearchOptions inner = options;
    if (options.window.Covers(p.t_min, p.t_max)) {
      inner.window = TimeWindow::All();
    }
    if (p.table != nullptr) {
      COCONUT_RETURN_NOT_OK(
          seqtable::ExactScanTable(*p.table, ctx, inner, &best));
    } else {
      COCONUT_ASSIGN_OR_RETURN(SearchResult r,
                               p.ads->ExactSearch(query, inner, counters));
      best.Improve(r);
    }
  }
  return best;
}

uint64_t TemporalPartitioningIndex::num_entries() const {
  epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  uint64_t total =
      snap->entries_sealed + snap->entries_pending + snap->ads_buffered;
  if (snap->buffer != nullptr) {
    total += snap->buffer->published.load(std::memory_order_acquire);
  }
  return total;
}

size_t TemporalPartitioningIndex::num_partitions() const {
  epoch::EpochGuard guard;
  return snapshot_.load(std::memory_order_acquire)->partitions->size();
}

uint64_t TemporalPartitioningIndex::index_bytes() const {
  epoch::EpochGuard guard;
  return snapshot_.load(std::memory_order_acquire)->index_bytes;
}

StreamingStats TemporalPartitioningIndex::SnapshotStats() const {
  // Pure snapshot + atomic reads: never blocks, even while a
  // backpressure-stalled producer holds the admission path.
  epoch::EpochGuard guard;
  const QuerySnapshot* snap = snapshot_.load(std::memory_order_acquire);
  StreamingStats stats;
  stats.buffered = snap->ads_buffered;
  if (snap->buffer != nullptr) {
    stats.buffered += snap->buffer->published.load(std::memory_order_acquire);
  }
  stats.entries = stats.buffered + snap->entries_pending + snap->entries_sealed;
  stats.sealed_partitions = snap->partitions->size();
  stats.pending_tasks = snap->pending.size();
  stats.seals_completed = snap->seals_completed;
  stats.merges_completed = snap->merges_completed;
  stats.seals_inflight = snap->pending.size();
  stats.ingest_stalls = backpressure_.stalls();
  stats.ingest_rejects = backpressure_.rejects();
  stats.stall_ms_p50 = backpressure_.StallPercentileMs(0.50);
  stats.stall_ms_p99 = backpressure_.StallPercentileMs(0.99);
  stats.stall_samples = backpressure_.SnapshotSamples();
  return stats;
}

std::vector<TemporalPartitioningIndex::PartitionInfo>
TemporalPartitioningIndex::SnapshotPartitions() const {
  std::shared_ptr<const PartitionSet> parts = CurrentPartitions();
  std::vector<PartitionInfo> infos;
  infos.reserve(parts->size());
  for (const auto& p : *parts) {
    PartitionInfo info;
    info.name = p->name;
    info.entries = p->entries;
    info.size_class = p->size_class;
    info.t_min = p->t_min;
    info.t_max = p->t_max;
    infos.push_back(std::move(info));
  }
  return infos;
}

Result<std::vector<core::IndexEntry>>
TemporalPartitioningIndex::DumpPartitionEntries(size_t idx) const {
  std::shared_ptr<const PartitionSet> parts = CurrentPartitions();
  if (idx >= parts->size()) {
    return Status::OutOfRange("partition index out of range");
  }
  const SealedPartition& p = *(*parts)[idx];
  if (p.table == nullptr) {
    return Status::NotSupported("entry dumps require kSeqTable partitions");
  }
  std::vector<core::IndexEntry> entries;
  entries.reserve(p.entries);
  seqtable::SeqTable::Scanner scanner = p.table->NewScanner();
  core::IndexEntry entry;
  while (true) {
    COCONUT_ASSIGN_OR_RETURN(bool has, scanner.Next(&entry, nullptr));
    if (!has) break;
    entries.push_back(entry);
  }
  return entries;
}

void TemporalPartitioningIndex::EncodeManifest(std::vector<uint8_t>* manifest,
                                               uint64_t* durable_entries) const {
  std::shared_ptr<const PartitionSet> parts;
  uint64_t next_id = 0;
  uint64_t seals = 0;
  uint64_t merges = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    parts = partitions_;
    next_id = next_partition_id_;
    seals = seals_completed_;
    merges = merges_completed_;
  }
  manifest->clear();
  *durable_entries = 0;
  WalPutU32(manifest, static_cast<uint32_t>(parts->size()));
  for (const auto& p : *parts) {
    WalPutString(manifest, p->name);
    WalPutU64(manifest, p->entries);
    WalPutI64(manifest, p->t_min);
    WalPutI64(manifest, p->t_max);
    WalPutU32(manifest, static_cast<uint32_t>(p->size_class));
    *durable_entries += p->entries;
  }
  WalPutU64(manifest, next_id);
  WalPutU64(manifest, seals);
  WalPutU64(manifest, merges);
  // The subclass's own deterministic-name counter (BTP's merge outputs);
  // read on the strand, where every mutation of it happens.
  WalPutU64(manifest, ManifestAuxCounter());
}

Status TemporalPartitioningIndex::RestoreFromManifest(
    std::span<const uint8_t> manifest) {
  if (options_.backend != PartitionBackend::kSeqTable) {
    return Status::NotSupported(
        "manifest restore requires the kSeqTable backend");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (UnsealedCountLocked() != 0 || !pending_.empty() ||
        !partitions_->empty()) {
      return Status::InvalidArgument(
          "manifest restore requires an empty index");
    }
  }
  WalReader reader(manifest);
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return Status::DataLoss("checkpoint manifest truncated");
  }
  auto set = std::make_shared<PartitionSet>();
  set->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    auto partition = std::make_shared<SealedPartition>();
    uint32_t size_class = 0;
    if (!reader.GetString(&partition->name) ||
        !reader.GetU64(&partition->entries) ||
        !reader.GetI64(&partition->t_min) ||
        !reader.GetI64(&partition->t_max) || !reader.GetU32(&size_class)) {
      return Status::DataLoss("checkpoint manifest truncated");
    }
    partition->size_class = static_cast<int>(size_class);
    COCONUT_ASSIGN_OR_RETURN(
        std::unique_ptr<seqtable::SeqTable> table,
        seqtable::SeqTable::Open(storage_, partition->name, ReadPool()));
    if (table->num_entries() != partition->entries) {
      return Status::DataLoss(
          "partition " + partition->name + " holds " +
          std::to_string(table->num_entries()) + " entries, checkpoint "
          "manifest recorded " + std::to_string(partition->entries));
    }
    partition->table = std::move(table);
    set->push_back(std::move(partition));
  }
  uint64_t next_id = 0;
  uint64_t seals = 0;
  uint64_t merges = 0;
  uint64_t aux = 0;
  if (!reader.GetU64(&next_id) || !reader.GetU64(&seals) ||
      !reader.GetU64(&merges) || !reader.GetU64(&aux) || !reader.AtEnd()) {
    return Status::DataLoss("checkpoint manifest truncated");
  }
  const QuerySnapshot* retired = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    partitions_ = std::move(set);
    next_partition_id_ = next_id;
    seals_completed_ = seals;
    merges_completed_ = merges;
    BumpSnapshotVersion();
    retired = RepublishSnapshotLocked();
  }
  epoch::EpochManager::Global().Retire(retired);
  RestoreManifestAuxCounter(aux);
  return Status::OK();
}

void TemporalPartitioningIndex::RestoreWatermark(int64_t timestamp) {
  std::lock_guard<std::mutex> lock(mu_);
  last_timestamp_ = std::max(last_timestamp_, timestamp);
}

Status TemporalPartitioningIndex::CommitDurable() {
  if (options_.wal == nullptr) return Status::OK();
  return options_.wal->Commit();
}

Status TemporalPartitioningIndex::CheckpointDurable() {
  if (options_.wal == nullptr) return Status::OK();
  std::vector<uint8_t> manifest;
  uint64_t durable = 0;
  EncodeManifest(&manifest, &durable);
  COCONUT_RETURN_NOT_OK(options_.wal->AppendCheckpoint(durable, manifest));
  // Only now is it safe to drop files the previous checkpoint referenced.
  std::vector<std::string> unlinks;
  unlinks.swap(pending_unlinks_);
  for (const std::string& name : unlinks) {
    COCONUT_RETURN_NOT_OK(storage_->RemoveFile(name));
  }
  return Status::OK();
}

Status TemporalPartitioningIndex::RetireFile(const std::string& name) {
  if (options_.wal != nullptr) {
    pending_unlinks_.push_back(name);
    return Status::OK();
  }
  return storage_->RemoveFile(name);
}

std::string TemporalPartitioningIndex::describe() const {
  std::string base = options_.backend == PartitionBackend::kAds
                         ? (options_.materialized ? "ADSFull" : "ADS+")
                         : (options_.materialized ? "CTreeFull" : "CTree");
  return base + "-TP";
}

}  // namespace stream
}  // namespace coconut
