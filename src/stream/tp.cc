#include "stream/tp.h"

#include <algorithm>

#include "seqtable/table_search.h"
#include "series/paa.h"

namespace coconut {
namespace stream {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;
using core::TimeWindow;

}  // namespace

Result<std::unique_ptr<TemporalPartitioningIndex>>
TemporalPartitioningIndex::Create(storage::StorageManager* storage,
                                  const std::string& prefix,
                                  const Options& options,
                                  storage::BufferPool* pool,
                                  core::RawSeriesStore* raw) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.buffer_entries == 0) {
    return Status::InvalidArgument("buffer_entries must be > 0");
  }
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized TP needs a raw store for verification");
  }
  return std::unique_ptr<TemporalPartitioningIndex>(
      new TemporalPartitioningIndex(storage, prefix, options, pool, raw));
}

Status TemporalPartitioningIndex::EnsureCurrentAds() {
  if (current_ads_ != nullptr) return Status::OK();
  ads::AdsIndex::Options aopts;
  aopts.sax = options_.sax;
  aopts.materialized = options_.materialized;
  aopts.leaf_capacity = options_.ads_leaf_capacity;
  aopts.global_buffer_entries = options_.buffer_entries;
  COCONUT_ASSIGN_OR_RETURN(
      current_ads_,
      ads::AdsIndex::Create(
          storage_, prefix_ + ".p" + std::to_string(next_partition_id_),
          aopts, raw_));
  return Status::OK();
}

size_t TemporalPartitioningIndex::UnsealedCount() const {
  if (options_.backend == PartitionBackend::kAds) {
    return current_ads_ == nullptr
               ? 0
               : static_cast<size_t>(current_ads_->num_entries());
  }
  return buffer_.size();
}

Status TemporalPartitioningIndex::Ingest(uint64_t series_id,
                                         std::span<const float> znorm_values,
                                         int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }
  if (options_.backend == PartitionBackend::kAds) {
    COCONUT_RETURN_NOT_OK(EnsureCurrentAds());
    COCONUT_RETURN_NOT_OK(
        current_ads_->Insert(series_id, znorm_values, timestamp));
  } else {
    IndexEntry entry;
    entry.key = series::InterleaveSax(
        series::ComputeSax(znorm_values, options_.sax), options_.sax);
    entry.series_id = series_id;
    entry.timestamp = timestamp;
    buffer_.push_back(entry);
    if (options_.materialized) {
      buffer_payloads_.insert(buffer_payloads_.end(), znorm_values.begin(),
                              znorm_values.end());
    }
  }
  unsealed_t_min_ = std::min(unsealed_t_min_, timestamp);
  unsealed_t_max_ = std::max(unsealed_t_max_, timestamp);

  if (UnsealedCount() >= options_.buffer_entries) {
    COCONUT_RETURN_NOT_OK(SealPartition());
    COCONUT_RETURN_NOT_OK(AfterSeal());
  }
  return Status::OK();
}

Status TemporalPartitioningIndex::SealPartition() {
  if (UnsealedCount() == 0) return Status::OK();

  SealedPartition partition;
  partition.t_min = unsealed_t_min_;
  partition.t_max = unsealed_t_max_;
  partition.name = prefix_ + ".p" + std::to_string(next_partition_id_++);

  if (options_.backend == PartitionBackend::kAds) {
    COCONUT_RETURN_NOT_OK(current_ads_->FlushAll());
    partition.entries = current_ads_->num_entries();
    partition.ads = std::move(current_ads_);
  } else {
    // Sort the buffer by key and lay it out as one compact partition.
    const size_t len = options_.sax.series_length;
    std::vector<size_t> order(buffer_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return core::EntryKeyLess()(buffer_[a], buffer_[b]);
    });
    seqtable::SeqTableOptions topts;
    topts.sax = options_.sax;
    topts.materialized = options_.materialized;
    COCONUT_ASSIGN_OR_RETURN(
        std::unique_ptr<seqtable::SeqTableBuilder> builder,
        seqtable::SeqTableBuilder::Create(storage_, partition.name, topts));
    for (size_t i : order) {
      std::span<const float> payload;
      if (options_.materialized) {
        payload =
            std::span<const float>(buffer_payloads_.data() + i * len, len);
      }
      COCONUT_RETURN_NOT_OK(builder->Add(buffer_[i], payload));
    }
    partition.entries = builder->entries_added();
    COCONUT_RETURN_NOT_OK(builder->Finish());
    COCONUT_ASSIGN_OR_RETURN(
        partition.table,
        seqtable::SeqTable::Open(storage_, partition.name, pool_));
    buffer_.clear();
    buffer_payloads_.clear();
  }

  partitions_.push_back(std::move(partition));
  unsealed_t_min_ = INT64_MAX;
  unsealed_t_max_ = INT64_MIN;
  return Status::OK();
}

Status TemporalPartitioningIndex::FlushAll() {
  COCONUT_RETURN_NOT_OK(SealPartition());
  return AfterSeal();
}

Status TemporalPartitioningIndex::SearchUnsealed(
    std::span<const float> query, const SearchOptions& options,
    core::QueryCounters* counters, bool exact, SearchResult* best) {
  if (options_.backend == PartitionBackend::kAds) {
    if (current_ads_ == nullptr || current_ads_->num_entries() == 0) {
      return Status::OK();
    }
    auto r = exact ? current_ads_->ExactSearch(query, options, counters)
                   : current_ads_->ApproxSearch(query, options, counters);
    if (!r.ok()) return r.status();
    best->Improve(r.value());
    return Status::OK();
  }
  if (buffer_.empty()) return Status::OK();
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  return seqtable::EvaluateCandidates(
      ctx, options, buffer_, buffer_payloads_, options_.materialized,
      exact ? -1 : options.approx_candidates, best);
}

Result<SearchResult> TemporalPartitioningIndex::ApproxSearch(
    std::span<const float> query, const SearchOptions& options,
    core::QueryCounters* counters) {
  SearchResult best;
  // Newest data first: the unsealed tail, then partitions newest to oldest.
  COCONUT_RETURN_NOT_OK(
      SearchUnsealed(query, options, counters, /*exact=*/false, &best));
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  for (auto it = partitions_.rbegin(); it != partitions_.rend(); ++it) {
    if (!options.window.Intersects(it->t_min, it->t_max)) {
      if (counters != nullptr) ++counters->partitions_skipped;
      continue;
    }
    if (counters != nullptr) ++counters->partitions_visited;
    // Fully covered partitions skip per-entry timestamp checks.
    SearchOptions inner = options;
    if (options.window.Covers(it->t_min, it->t_max)) {
      inner.window = TimeWindow::All();
    }
    if (it->table != nullptr) {
      COCONUT_ASSIGN_OR_RETURN(
          SearchResult r, seqtable::ApproxSearchTable(*it->table, ctx, inner));
      best.Improve(r);
    } else {
      COCONUT_ASSIGN_OR_RETURN(SearchResult r,
                               it->ads->ApproxSearch(query, inner, counters));
      best.Improve(r);
    }
  }
  return best;
}

Result<SearchResult> TemporalPartitioningIndex::ExactSearch(
    std::span<const float> query, const SearchOptions& options,
    core::QueryCounters* counters) {
  // Seed with the approximate pass (cheap, tightens the bound), then scan
  // every intersecting partition with the shared best-so-far.
  COCONUT_ASSIGN_OR_RETURN(SearchResult best,
                           ApproxSearch(query, options, counters));
  COCONUT_RETURN_NOT_OK(
      SearchUnsealed(query, options, counters, /*exact=*/true, &best));
  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  for (auto it = partitions_.rbegin(); it != partitions_.rend(); ++it) {
    if (!options.window.Intersects(it->t_min, it->t_max)) continue;
    SearchOptions inner = options;
    if (options.window.Covers(it->t_min, it->t_max)) {
      inner.window = TimeWindow::All();
    }
    if (it->table != nullptr) {
      COCONUT_RETURN_NOT_OK(
          seqtable::ExactScanTable(*it->table, ctx, inner, &best));
    } else {
      COCONUT_ASSIGN_OR_RETURN(SearchResult r,
                               it->ads->ExactSearch(query, inner, counters));
      best.Improve(r);
    }
  }
  return best;
}

uint64_t TemporalPartitioningIndex::num_entries() const {
  uint64_t total = UnsealedCount();
  for (const auto& p : partitions_) total += p.entries;
  return total;
}

uint64_t TemporalPartitioningIndex::index_bytes() const {
  uint64_t total = 0;
  for (const auto& p : partitions_) {
    if (p.table != nullptr) total += p.table->file_bytes();
    if (p.ads != nullptr) total += p.ads->total_file_bytes();
  }
  if (current_ads_ != nullptr) total += current_ads_->total_file_bytes();
  return total;
}

std::string TemporalPartitioningIndex::describe() const {
  std::string base = options_.backend == PartitionBackend::kAds
                         ? (options_.materialized ? "ADSFull" : "ADS+")
                         : (options_.materialized ? "CTreeFull" : "CTree");
  return base + "-TP";
}

}  // namespace stream
}  // namespace coconut
