#ifndef COCONUT_STREAM_TP_H_
#define COCONUT_STREAM_TP_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ads/ads_index.h"
#include "common/thread_pool.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "seqtable/seq_table.h"
#include "stream/buffer_gen.h"
#include "stream/epoch.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {

class Wal;

/// Which structure backs each sealed temporal partition.
enum class PartitionBackend {
  kSeqTable,  ///< Sorted compact partitions ("CTreeTP").
  kAds,       ///< One ADS+ tree per partition ("ADS+TP").
};

/// Temporal Partitioning (TP, Section 3): every time the in-memory buffer
/// fills, its contents are sealed into a new immutable partition tagged
/// with its [min, max] arrival-time range. Window queries touch only
/// partitions whose range intersects the window — small windows skip
/// nearly everything — but partitions accumulate without bound, so large
/// windows pay one probe per partition.
///
/// Concurrency — the epoch-based read path: the index publishes an atomic
/// pointer to an immutable QuerySnapshot (the current buffer generation,
/// the in-flight seals, and the shared partition set, with stats mirrors
/// precomputed). Readers bracket the whole query in an epoch::EpochGuard,
/// load the pointer, and search — they never take mu_, never copy the
/// ingest buffer (admissions publish into a fixed buffer generation via
/// an atomic count), and never block behind a backpressure-stalled
/// producer. Writers replace the snapshot at every structural edge
/// (buffer detach, seal retire, merge install, manifest restore) and hand
/// the superseded one to the epoch manager, which frees it once every
/// reader that could hold it has exited. Every acknowledged entry is
/// visible to the very next query: admissions bump the generation's
/// published count, detaches move the generation wholesale into the
/// pending list within one republish.
///
/// Without a background pool the index keeps its single-caller contract
/// (one thread at a time), but reads go through the same snapshot path.
class TemporalPartitioningIndex : public StreamingIndex {
 public:
  struct Options {
    series::SaxConfig sax;
    bool materialized = false;
    PartitionBackend backend = PartitionBackend::kSeqTable;
    /// Entries buffered before sealing a partition.
    size_t buffer_entries = 4096;
    /// Leaf capacity for kAds partitions.
    size_t ads_leaf_capacity = 1024;
    /// What Ingest does with a timestamp below the max accepted so far.
    TimestampPolicy timestamp_policy = TimestampPolicy::kPermissive;
    /// Background pool for seals and merge cascades (not owned; must
    /// outlive the index). nullptr = synchronous, the classic behaviour.
    /// Requires the kSeqTable backend (a live ADS+ tree cannot be sealed
    /// behind ingestion's back).
    ThreadPool* background = nullptr;
    /// Bounded backpressure: cap on detached-but-unflushed buffers (each
    /// holds up to buffer_entries series in memory). 0 = unbounded, the
    /// pre-cap behaviour. Only meaningful in async mode — a synchronous
    /// index seals inline and never accumulates pending buffers. FlushAll
    /// ignores the cap (a drain must always make progress).
    size_t max_inflight_seals = 0;
    /// What Ingest does at the cap: block until a seal retires, or refuse
    /// the entry with ResourceExhausted.
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Test seam: runs at the head of every seal task (on the strand in
    /// async mode). Tests throttle it to keep seals in flight, or return
    /// a non-OK status to inject a background flush failure. Never set in
    /// production.
    std::function<Status()> seal_test_hook{};
    /// Write-ahead log (not owned; must outlive the index). When set,
    /// Ingest records every admission into it (inside the admission
    /// critical section, so log order == admission order) and every
    /// completed seal appends a checkpoint. kSeqTable backend only.
    Wal* wal = nullptr;
  };

  /// Externally visible shape of one sealed partition, for tests and the
  /// server's stats endpoints. Taken from a consistent snapshot.
  struct PartitionInfo {
    std::string name;
    uint64_t entries = 0;
    int size_class = 0;
    int64_t t_min = 0;
    int64_t t_max = 0;
  };

  struct SealedPartition {
    std::shared_ptr<seqtable::SeqTable> table;  // kSeqTable backend.
    std::shared_ptr<ads::AdsIndex> ads;         // kAds backend.
    int64_t t_min = 0;
    int64_t t_max = 0;
    uint64_t entries = 0;
    int size_class = 0;  // Used by the BTP subclass.
    std::string name;
  };
  /// Immutable once published; snapshots hold shared_ptr copies while
  /// merges swap in replacement sets.
  using PartitionSet = std::vector<std::shared_ptr<const SealedPartition>>;

  /// A buffer generation moved out of the ingest path, waiting for (or
  /// undergoing) its background seal. The generation is immutable from
  /// detach (count frozen), so queries evaluate it without copying.
  struct PendingSeal {
    std::shared_ptr<const BufferGen> gen;
    size_t count = 0;
    int64_t t_min = 0;
    int64_t t_max = 0;
    std::string name;

    std::span<const core::IndexEntry> entries() const {
      return gen->EntrySpan(count);
    }
    std::span<const float> payloads() const { return gen->PayloadSpan(count); }
  };

  /// Everything one query evaluates — the immutable unit the index
  /// publishes through an atomic pointer and retires through the epoch
  /// manager. Readers access members directly (no shared_ptr copies on
  /// the hot path) for the lifetime of their EpochGuard. The stats
  /// mirrors are precomputed at publication so stats/health reads are
  /// pure loads that can never stall behind a blocked writer.
  struct QuerySnapshot {
    /// Live buffer generation; its atomic published count is the only
    /// part of a snapshot that advances after publication (append-only).
    std::shared_ptr<const BufferGen> buffer;
    std::vector<std::shared_ptr<const PendingSeal>> pending;
    std::shared_ptr<const PartitionSet> partitions;
    std::shared_ptr<ads::AdsIndex> current_ads;

    // Stats mirrors, exact as of publication.
    uint64_t ads_buffered = 0;     // kAds: live-tree entries at publish.
    uint64_t entries_pending = 0;  // Sum of pending-seal counts.
    uint64_t entries_sealed = 0;   // Sum over *partitions.
    uint64_t seals_completed = 0;
    uint64_t merges_completed = 0;
    uint64_t index_bytes = 0;      // Partition files (+ live ADS+ tree).
  };

  static Result<std::unique_ptr<TemporalPartitioningIndex>> Create(
      storage::StorageManager* storage, const std::string& prefix,
      const Options& options, storage::BufferPool* pool,
      core::RawSeriesStore* raw);

  ~TemporalPartitioningIndex() override;

  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override;
  Status FlushAll() override;
  Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  uint64_t num_entries() const override;
  size_t num_partitions() const override;
  uint64_t index_bytes() const override;
  std::string describe() const override;
  StreamingStats SnapshotStats() const override;
  Status RestoreFromManifest(std::span<const uint8_t> manifest) override;
  void RestoreWatermark(int64_t timestamp) override;
  Status CommitDurable() override;

  bool async() const { return executor_ != nullptr; }

  /// Readers are lock-free (epoch-guarded snapshot loads) whenever the
  /// index is async: async mode reads partitions with direct preads (no
  /// shared BufferPool frames), so any number of queries may run against
  /// each other and against Ingest. Sync mode keeps the single-caller
  /// contract (reads share the caller's pool).
  bool ConcurrentReadsSafe() const override { return async(); }

  /// Metadata of every sealed partition, oldest first.
  std::vector<PartitionInfo> SnapshotPartitions() const;

  /// Entries of sealed partition `idx` in stored (key) order — the
  /// merge-determinism suite compares these across thread counts.
  /// kSeqTable partitions only.
  Result<std::vector<core::IndexEntry>> DumpPartitionEntries(size_t idx) const;

  /// Test seam for the epoch-reclamation suite: the raw published
  /// snapshot. Must only be loaded and dereferenced under an
  /// epoch::EpochGuard held for the whole use.
  const QuerySnapshot* snapshot_for_testing() const {
    return snapshot_.load(std::memory_order_acquire);
  }

 protected:
  TemporalPartitioningIndex(storage::StorageManager* storage,
                            std::string prefix, const Options& options,
                            storage::BufferPool* pool,
                            core::RawSeriesStore* raw);

  /// Pool sealed partitions read through: the caller's pool when
  /// synchronous, nullptr (direct preads) when concurrent queries must not
  /// share cache frames.
  storage::BufferPool* ReadPool() const { return async() ? nullptr : pool_; }

  /// Blocks until the strand is empty. Subclasses overriding AfterSeal
  /// must call this from their own destructor so no background task can
  /// make a virtual call during destruction.
  void DrainBackground() {
    if (executor_ != nullptr) executor_->Drain();
  }

  /// One query's frozen view: the published snapshot plus the buffer
  /// prefix captured once, so the approximate seed and the exact pass
  /// evaluate exactly the same entries even while admissions race the
  /// generation's count forward. Valid only under the caller's
  /// EpochGuard.
  struct QueryView {
    const QuerySnapshot* snap = nullptr;
    std::span<const core::IndexEntry> buffer;
    std::span<const float> buffer_payloads;
  };
  QueryView CaptureView() const;

  std::shared_ptr<const PartitionSet> CurrentPartitions() const;

  /// Builds the partition for one pending seal (I/O, off-lock), publishes
  /// it, then runs the subclass consolidation hook. Runs on the strand in
  /// async mode, inline otherwise.
  Status SealTask(std::shared_ptr<const PendingSeal> pending);

  /// Publishes `set` as the new sealed-partition set. `retired_pending`
  /// (may be null) is removed from the pending list in the same critical
  /// section, so entries are never invisible or double-visible.
  void PublishPartitions(std::shared_ptr<const PartitionSet> set,
                         const PendingSeal* retired_pending,
                         bool count_seal, uint64_t merges_delta);

  void RecordBackgroundError(const Status& status);
  Status BackgroundStatus() const;

  /// Hook for BTP: consolidation after a partition is appended. Runs on
  /// the strand (async) or inline (sync); it is the only partition-set
  /// mutator besides SealTask, and the two are serialized.
  virtual Status AfterSeal() { return Status::OK(); }

  /// One extra manifest counter for the subclass (BTP's merge-output name
  /// sequence); TP itself has none.
  virtual uint64_t ManifestAuxCounter() const { return 0; }
  virtual void RestoreManifestAuxCounter(uint64_t value) { (void)value; }

  /// Serializes the sealed-partition state (names, entries, time ranges,
  /// size classes, deterministic-name counters) and the admit count it
  /// covers. Takes mu_ briefly for a consistent snapshot.
  void EncodeManifest(std::vector<uint8_t>* manifest,
                      uint64_t* durable_entries) const;

  /// WAL checkpoint after a completed seal/merge, then the deferred
  /// unlinks that had to wait for it (see RetireFile). Runs on the
  /// strand; no-op without a WAL.
  Status CheckpointDurable();

  /// Removes a replaced partition file — immediately without a WAL;
  /// deferred to the next durable checkpoint with one, because the last
  /// durable checkpoint may still reference it (a crash between the
  /// unlink and the next checkpoint would otherwise be unrecoverable
  /// once the log is truncated). Strand-serialized.
  ///
  /// Unlink-while-read safety is POSIX's: an epoch-held snapshot may keep
  /// the replaced partition's SeqTable (and its fd) open past the unlink,
  /// and its preads stay valid until the last reference drops.
  Status RetireFile(const std::string& name);

  /// Builds an immutable snapshot of the current state (buffer
  /// generation, pending list, partition set, stats mirrors), swaps it
  /// into snapshot_, and returns the superseded one. Caller holds mu_
  /// and MUST pass the returned pointer to the epoch manager's Retire
  /// after releasing the lock (never delete it — readers may hold it).
  const QuerySnapshot* RepublishSnapshotLocked();

  /// Moves the full buffer generation into the pending list and hands
  /// back the seal descriptor; returns nullptr when the buffer is empty.
  /// Does NOT republish — the caller republishes once after all edges in
  /// its critical section. Caller holds mu_.
  std::shared_ptr<PendingSeal> DetachBufferLocked();

  /// Enqueues the seal on the strand. Caller holds mu_, which guarantees
  /// strand order equals detach order even when Ingest and FlushAll race.
  void EnqueueSealLocked(std::shared_ptr<const PendingSeal> pending);

  Status EnsureCurrentAdsLocked();
  size_t UnsealedCountLocked() const;

  /// Blocks (kBlock) or refuses (kReject) when admitting one more entry
  /// would detach a buffer past the seal cap. Caller holds `lock` on mu_;
  /// kBlock waits on it until a seal retires or a background error lands.
  Status ApplyBackpressureLocked(std::unique_lock<std::mutex>* lock);

  /// Evaluates in-memory entries (buffer generation or a pending seal).
  Status SearchUnsealedEntries(std::span<const core::IndexEntry> entries,
                               std::span<const float> payloads,
                               std::span<const float> query,
                               const core::SearchOptions& options,
                               core::QueryCounters* counters, bool exact,
                               core::SearchResult* best) const;

  /// The approximate pass (unsealed tail, in-flight seals, partitions
  /// newest to oldest) over one query view — ApproxSearch's whole body
  /// and ExactSearch's bound-tightening seed, so the two cannot drift.
  Status ApproxPassOverSnapshot(const QueryView& view,
                                std::span<const float> query,
                                const core::SearchOptions& options,
                                core::QueryCounters* counters,
                                core::SearchResult* best);

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  storage::BufferPool* pool_;
  core::RawSeriesStore* raw_;

  /// The light ingest/state lock: guards the writer-side authoritative
  /// state below (buffer generation pointer, pending list, partition-set
  /// pointer, counters) and serializes snapshot republication. Queries
  /// never take it. Never held across seal/merge I/O.
  mutable std::mutex mu_;

  /// The published read snapshot. Readers acquire-load under an
  /// EpochGuard; writers exchange under mu_ and retire the old pointer
  /// through the epoch manager once off the lock.
  std::atomic<const QuerySnapshot*> snapshot_{nullptr};

  // kSeqTable backend: the live buffer generation (entries + payloads
  // when materialized). Writer-owned; readers reach it via the snapshot.
  std::shared_ptr<BufferGen> gen_;

  // kAds backend (synchronous only): the partition being built, live.
  std::shared_ptr<ads::AdsIndex> current_ads_;

  std::vector<std::shared_ptr<const PendingSeal>> pending_;
  std::shared_ptr<const PartitionSet> partitions_;
  uint64_t next_partition_id_ = 0;
  int64_t unsealed_t_min_ = INT64_MAX;
  int64_t unsealed_t_max_ = INT64_MIN;
  int64_t last_timestamp_ = INT64_MIN;
  uint64_t seals_completed_ = 0;
  uint64_t merges_completed_ = 0;
  Status background_status_;

  /// Backpressure state (writers guarded by mu_; counters and the stall
  /// window readable lock-free): notified whenever a pending seal retires
  /// or a background error lands, so a blocked Ingest always wakes —
  /// including into a failed index it must not keep feeding.
  BackpressureGate backpressure_;

  /// Replaced partition files awaiting the next durable checkpoint (see
  /// RetireFile). Only touched on the strand (or the single caller, in
  /// sync mode), so it needs no lock.
  std::vector<std::string> pending_unlinks_;

  /// Per-index FIFO strand over Options.background; null when synchronous.
  std::unique_ptr<SerialExecutor> executor_;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_TP_H_
