#ifndef COCONUT_STREAM_TP_H_
#define COCONUT_STREAM_TP_H_

#include <memory>
#include <string>
#include <vector>

#include "ads/ads_index.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "seqtable/seq_table.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {

/// Which structure backs each sealed temporal partition.
enum class PartitionBackend {
  kSeqTable,  ///< Sorted compact partitions ("CTreeTP").
  kAds,       ///< One ADS+ tree per partition ("ADS+TP").
};

/// Temporal Partitioning (TP, Section 3): every time the in-memory buffer
/// fills, its contents are sealed into a new immutable partition tagged
/// with its [min, max] arrival-time range. Window queries touch only
/// partitions whose range intersects the window — small windows skip
/// nearly everything — but partitions accumulate without bound, so large
/// windows pay one probe per partition.
class TemporalPartitioningIndex : public StreamingIndex {
 public:
  struct Options {
    series::SaxConfig sax;
    bool materialized = false;
    PartitionBackend backend = PartitionBackend::kSeqTable;
    /// Entries buffered before sealing a partition.
    size_t buffer_entries = 4096;
    /// Leaf capacity for kAds partitions.
    size_t ads_leaf_capacity = 1024;
  };

  static Result<std::unique_ptr<TemporalPartitioningIndex>> Create(
      storage::StorageManager* storage, const std::string& prefix,
      const Options& options, storage::BufferPool* pool,
      core::RawSeriesStore* raw);

  ~TemporalPartitioningIndex() override = default;

  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override;
  Status FlushAll() override;
  Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  uint64_t num_entries() const override;
  size_t num_partitions() const override { return partitions_.size(); }
  uint64_t index_bytes() const override;
  std::string describe() const override;

 protected:
  struct SealedPartition {
    std::unique_ptr<seqtable::SeqTable> table;  // kSeqTable backend.
    std::unique_ptr<ads::AdsIndex> ads;         // kAds backend.
    int64_t t_min = 0;
    int64_t t_max = 0;
    uint64_t entries = 0;
    int size_class = 0;  // Used by the BTP subclass.
    std::string name;
  };

  TemporalPartitioningIndex(storage::StorageManager* storage,
                            std::string prefix, const Options& options,
                            storage::BufferPool* pool,
                            core::RawSeriesStore* raw)
      : storage_(storage),
        prefix_(std::move(prefix)),
        options_(options),
        pool_(pool),
        raw_(raw) {}

  /// Seals the current buffer / in-progress ADS+ tree into a partition.
  Status SealPartition();

  /// Hook for BTP: consolidation after a partition is appended.
  virtual Status AfterSeal() { return Status::OK(); }

  /// Evaluates the unsealed tail (buffer or live ADS+ tree).
  Status SearchUnsealed(std::span<const float> query,
                        const core::SearchOptions& options,
                        core::QueryCounters* counters, bool exact,
                        core::SearchResult* best);

  size_t UnsealedCount() const;
  Status EnsureCurrentAds();

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  storage::BufferPool* pool_;
  core::RawSeriesStore* raw_;

  // kSeqTable backend: buffered entries (+payloads when materialized).
  std::vector<core::IndexEntry> buffer_;
  std::vector<float> buffer_payloads_;

  // kAds backend: the partition being built, live.
  std::unique_ptr<ads::AdsIndex> current_ads_;

  std::vector<SealedPartition> partitions_;
  uint64_t next_partition_id_ = 0;
  int64_t unsealed_t_min_ = INT64_MAX;
  int64_t unsealed_t_max_ = INT64_MIN;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_TP_H_
