#ifndef COCONUT_STREAM_TP_H_
#define COCONUT_STREAM_TP_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ads/ads_index.h"
#include "common/thread_pool.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "seqtable/seq_table.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {

class Wal;

/// Which structure backs each sealed temporal partition.
enum class PartitionBackend {
  kSeqTable,  ///< Sorted compact partitions ("CTreeTP").
  kAds,       ///< One ADS+ tree per partition ("ADS+TP").
};

/// Temporal Partitioning (TP, Section 3): every time the in-memory buffer
/// fills, its contents are sealed into a new immutable partition tagged
/// with its [min, max] arrival-time range. Window queries touch only
/// partitions whose range intersects the window — small windows skip
/// nearly everything — but partitions accumulate without bound, so large
/// windows pay one probe per partition.
///
/// Concurrency: with Options.background set, Ingest appends to the buffer
/// under a light lock and returns; sealing (sorting + the partition write)
/// runs on the pool, serialized per index so the sealed-partition sequence
/// is identical to the synchronous build. Queries take an immutable
/// snapshot — buffer copy, in-flight seal payloads, and the shared_ptr
/// partition set — so they never block on, and are never corrupted by,
/// concurrent seals or merges. Every acknowledged entry is visible to the
/// very next query: entries move buffer → pending → sealed under one lock.
/// Without a background pool behaviour is the synchronous original.
class TemporalPartitioningIndex : public StreamingIndex {
 public:
  struct Options {
    series::SaxConfig sax;
    bool materialized = false;
    PartitionBackend backend = PartitionBackend::kSeqTable;
    /// Entries buffered before sealing a partition.
    size_t buffer_entries = 4096;
    /// Leaf capacity for kAds partitions.
    size_t ads_leaf_capacity = 1024;
    /// What Ingest does with a timestamp below the max accepted so far.
    TimestampPolicy timestamp_policy = TimestampPolicy::kPermissive;
    /// Background pool for seals and merge cascades (not owned; must
    /// outlive the index). nullptr = synchronous, the classic behaviour.
    /// Requires the kSeqTable backend (a live ADS+ tree cannot be sealed
    /// behind ingestion's back).
    ThreadPool* background = nullptr;
    /// Bounded backpressure: cap on detached-but-unflushed buffers (each
    /// holds up to buffer_entries series in memory). 0 = unbounded, the
    /// pre-cap behaviour. Only meaningful in async mode — a synchronous
    /// index seals inline and never accumulates pending buffers. FlushAll
    /// ignores the cap (a drain must always make progress).
    size_t max_inflight_seals = 0;
    /// What Ingest does at the cap: block until a seal retires, or refuse
    /// the entry with ResourceExhausted.
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Test seam: runs at the head of every seal task (on the strand in
    /// async mode). Tests throttle it to keep seals in flight, or return
    /// a non-OK status to inject a background flush failure. Never set in
    /// production.
    std::function<Status()> seal_test_hook{};
    /// Write-ahead log (not owned; must outlive the index). When set,
    /// Ingest records every admission into it (inside the admission
    /// critical section, so log order == admission order) and every
    /// completed seal appends a checkpoint. kSeqTable backend only.
    Wal* wal = nullptr;
  };

  /// Externally visible shape of one sealed partition, for tests and the
  /// server's stats endpoints. Taken from a consistent snapshot.
  struct PartitionInfo {
    std::string name;
    uint64_t entries = 0;
    int size_class = 0;
    int64_t t_min = 0;
    int64_t t_max = 0;
  };

  static Result<std::unique_ptr<TemporalPartitioningIndex>> Create(
      storage::StorageManager* storage, const std::string& prefix,
      const Options& options, storage::BufferPool* pool,
      core::RawSeriesStore* raw);

  ~TemporalPartitioningIndex() override;

  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override;
  Status FlushAll() override;
  Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  uint64_t num_entries() const override;
  size_t num_partitions() const override;
  uint64_t index_bytes() const override;
  std::string describe() const override;
  StreamingStats SnapshotStats() const override;
  Status RestoreFromManifest(std::span<const uint8_t> manifest) override;
  void RestoreWatermark(int64_t timestamp) override;
  Status CommitDurable() override;

  bool async() const { return executor_ != nullptr; }

  /// Metadata of every sealed partition, oldest first.
  std::vector<PartitionInfo> SnapshotPartitions() const;

  /// Entries of sealed partition `idx` in stored (key) order — the
  /// merge-determinism suite compares these across thread counts.
  /// kSeqTable partitions only.
  Result<std::vector<core::IndexEntry>> DumpPartitionEntries(size_t idx) const;

 protected:
  struct SealedPartition {
    std::shared_ptr<seqtable::SeqTable> table;  // kSeqTable backend.
    std::shared_ptr<ads::AdsIndex> ads;         // kAds backend.
    int64_t t_min = 0;
    int64_t t_max = 0;
    uint64_t entries = 0;
    int size_class = 0;  // Used by the BTP subclass.
    std::string name;
  };
  /// Immutable once published; queries hold shared_ptr copies while merges
  /// swap in replacement sets.
  using PartitionSet = std::vector<std::shared_ptr<const SealedPartition>>;

  /// A buffer moved out of the ingest path, waiting for (or undergoing) its
  /// background seal. Immutable after construction so queries can evaluate
  /// it without copying.
  struct PendingSeal {
    std::vector<core::IndexEntry> entries;
    std::vector<float> payloads;
    int64_t t_min = 0;
    int64_t t_max = 0;
    std::string name;
  };

  /// Everything one query evaluates, captured atomically under mu_. In
  /// async mode the unsealed buffer is copied (ingestion keeps mutating
  /// it); in sync mode — single-caller contract — the spans alias the live
  /// buffer and queries pay no copy, as before this layer went concurrent.
  struct QuerySnapshot {
    std::vector<core::IndexEntry> buffer_copy;
    std::vector<float> payload_copy;
    std::span<const core::IndexEntry> buffer;
    std::span<const float> buffer_payloads;
    std::vector<std::shared_ptr<const PendingSeal>> pending;
    std::shared_ptr<const PartitionSet> partitions;
    std::shared_ptr<ads::AdsIndex> current_ads;
  };

  TemporalPartitioningIndex(storage::StorageManager* storage,
                            std::string prefix, const Options& options,
                            storage::BufferPool* pool,
                            core::RawSeriesStore* raw);

  /// Pool sealed partitions read through: the caller's pool when
  /// synchronous, nullptr (direct preads) when concurrent queries must not
  /// share cache frames.
  storage::BufferPool* ReadPool() const { return async() ? nullptr : pool_; }

  /// Blocks until the strand is empty. Subclasses overriding AfterSeal
  /// must call this from their own destructor so no background task can
  /// make a virtual call during destruction.
  void DrainBackground() {
    if (executor_ != nullptr) executor_->Drain();
  }

  QuerySnapshot TakeSnapshot() const;
  std::shared_ptr<const PartitionSet> CurrentPartitions() const;

  /// Builds the partition for one pending seal (I/O, off-lock), publishes
  /// it, then runs the subclass consolidation hook. Runs on the strand in
  /// async mode, inline otherwise.
  Status SealTask(std::shared_ptr<const PendingSeal> pending);

  /// Publishes `set` as the new sealed-partition set. `retired_pending`
  /// (may be null) is removed from the pending list in the same critical
  /// section, so entries are never invisible or double-visible.
  void PublishPartitions(std::shared_ptr<const PartitionSet> set,
                         const PendingSeal* retired_pending,
                         bool count_seal, uint64_t merges_delta);

  void RecordBackgroundError(const Status& status);
  Status BackgroundStatus() const;

  /// Hook for BTP: consolidation after a partition is appended. Runs on
  /// the strand (async) or inline (sync); it is the only partition-set
  /// mutator besides SealTask, and the two are serialized.
  virtual Status AfterSeal() { return Status::OK(); }

  /// One extra manifest counter for the subclass (BTP's merge-output name
  /// sequence); TP itself has none.
  virtual uint64_t ManifestAuxCounter() const { return 0; }
  virtual void RestoreManifestAuxCounter(uint64_t value) { (void)value; }

  /// Serializes the sealed-partition state (names, entries, time ranges,
  /// size classes, deterministic-name counters) and the admit count it
  /// covers. Takes mu_ briefly for a consistent snapshot.
  void EncodeManifest(std::vector<uint8_t>* manifest,
                      uint64_t* durable_entries) const;

  /// WAL checkpoint after a completed seal/merge, then the deferred
  /// unlinks that had to wait for it (see RetireFile). Runs on the
  /// strand; no-op without a WAL.
  Status CheckpointDurable();

  /// Removes a replaced partition file — immediately without a WAL;
  /// deferred to the next durable checkpoint with one, because the last
  /// durable checkpoint may still reference it (a crash between the
  /// unlink and the next checkpoint would otherwise be unrecoverable
  /// once the log is truncated). Strand-serialized.
  Status RetireFile(const std::string& name);

  /// Moves the full buffer into the pending list and hands back the seal
  /// descriptor; returns nullptr when the buffer is empty. Caller holds mu_.
  std::shared_ptr<PendingSeal> DetachBufferLocked();

  /// Enqueues the seal on the strand. Caller holds mu_, which guarantees
  /// strand order equals detach order even when Ingest and FlushAll race.
  void EnqueueSealLocked(std::shared_ptr<const PendingSeal> pending);

  Status EnsureCurrentAdsLocked();
  size_t UnsealedCountLocked() const;

  /// Blocks (kBlock) or refuses (kReject) when admitting one more entry
  /// would detach a buffer past the seal cap. Caller holds `lock` on mu_;
  /// kBlock waits on it until a seal retires or a background error lands.
  Status ApplyBackpressureLocked(std::unique_lock<std::mutex>* lock);

  /// Evaluates in-memory entries (buffer copy or a pending seal).
  Status SearchUnsealedEntries(std::span<const core::IndexEntry> entries,
                               std::span<const float> payloads,
                               std::span<const float> query,
                               const core::SearchOptions& options,
                               core::QueryCounters* counters, bool exact,
                               core::SearchResult* best) const;

  /// The approximate pass (unsealed tail, in-flight seals, partitions
  /// newest to oldest) over one snapshot — ApproxSearch's whole body and
  /// ExactSearch's bound-tightening seed, so the two cannot drift.
  Status ApproxPassOverSnapshot(const QuerySnapshot& snap,
                                std::span<const float> query,
                                const core::SearchOptions& options,
                                core::QueryCounters* counters,
                                core::SearchResult* best);

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  storage::BufferPool* pool_;
  core::RawSeriesStore* raw_;

  /// The light ingest/state lock: guards the buffer, the pending list, the
  /// partition-set pointer and the counters below. Never held across
  /// seal/merge I/O.
  mutable std::mutex mu_;

  // kSeqTable backend: buffered entries (+payloads when materialized).
  std::vector<core::IndexEntry> buffer_;
  std::vector<float> buffer_payloads_;

  // kAds backend (synchronous only): the partition being built, live.
  std::shared_ptr<ads::AdsIndex> current_ads_;

  std::vector<std::shared_ptr<const PendingSeal>> pending_;
  std::shared_ptr<const PartitionSet> partitions_;
  uint64_t next_partition_id_ = 0;
  int64_t unsealed_t_min_ = INT64_MAX;
  int64_t unsealed_t_max_ = INT64_MIN;
  int64_t last_timestamp_ = INT64_MIN;
  uint64_t seals_completed_ = 0;
  uint64_t merges_completed_ = 0;
  Status background_status_;

  /// Backpressure state (guarded by mu_): notified whenever a pending
  /// seal retires or a background error lands, so a blocked Ingest always
  /// wakes — including into a failed index it must not keep feeding.
  BackpressureGate backpressure_;

  /// Replaced partition files awaiting the next durable checkpoint (see
  /// RetireFile). Only touched on the strand (or the single caller, in
  /// sync mode), so it needs no lock.
  std::vector<std::string> pending_unlinks_;

  /// Per-index FIFO strand over Options.background; null when synchronous.
  std::unique_ptr<SerialExecutor> executor_;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_TP_H_
