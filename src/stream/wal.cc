#include "stream/wal.h"

#include <cstring>

#include "common/crc32c.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {

bool WalReader::GetFloats(std::vector<float>* out, size_t count) {
  if (count > remaining() / sizeof(float)) return false;
  out->resize(count);
  std::memcpy(out->data(), bytes_.data() + pos_, count * sizeof(float));
  pos_ += count * sizeof(float);
  return true;
}

bool WalReader::GetBytes(std::vector<uint8_t>* out, size_t count) {
  if (count > remaining()) return false;
  out->assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
              bytes_.begin() + static_cast<ptrdiff_t>(pos_ + count));
  pos_ += count;
  return true;
}

bool WalReader::GetString(std::string* out) {
  uint32_t len = 0;
  if (!GetU32(&len) || len > remaining()) return false;
  out->assign(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
              bytes_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  return true;
}

namespace {

using Reader = WalReader;

void PutU32(std::vector<uint8_t>* out, uint32_t v) { WalPutU32(out, v); }
void PutU64(std::vector<uint8_t>* out, uint64_t v) { WalPutU64(out, v); }
void PutI64(std::vector<uint8_t>* out, int64_t v) { WalPutI64(out, v); }

/// Sanity cap on a frame's declared payload length: far above any real
/// frame (a batch is bounded by buffer_entries x series bytes), far below
/// anything a flipped length byte could use to balloon an allocation.
constexpr uint32_t kMaxFramePayload = 1u << 30;

}  // namespace

// --------------------------------------------------------------- frames

std::vector<uint8_t> Wal::EncodeFrame(WalFrameType type,
                                      std::span<const uint8_t> payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kWalFrameHeaderBytes + payload.size());
  PutU32(&frame, kWalMagic);
  frame.push_back(kWalVersionMajor);
  frame.push_back(kWalVersionMinor);
  frame.push_back(static_cast<uint8_t>(type));
  frame.push_back(0);  // reserved
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32c(frame.data() + 4, 8);
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  PutU32(&frame, crc);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

size_t Wal::DecodeFrames(std::span<const uint8_t> bytes,
                         std::vector<WalFrame>* frames,
                         bool* major_too_new) {
  if (major_too_new != nullptr) *major_too_new = false;
  size_t pos = 0;
  while (bytes.size() - pos >= kWalFrameHeaderBytes) {
    const uint8_t* h = bytes.data() + pos;
    Reader header(std::span<const uint8_t>(h, kWalFrameHeaderBytes));
    uint32_t magic = 0;
    uint8_t major = 0;
    uint8_t minor = 0;
    uint8_t type = 0;
    uint8_t reserved = 0;
    uint32_t payload_len = 0;
    uint32_t stored_crc = 0;
    header.GetU32(&magic);
    header.GetU8(&major);
    header.GetU8(&minor);
    header.GetU8(&type);
    header.GetU8(&reserved);
    header.GetU32(&payload_len);
    header.GetU32(&stored_crc);
    if (magic != kWalMagic) break;
    if (payload_len > kMaxFramePayload) break;
    if (bytes.size() - pos - kWalFrameHeaderBytes < payload_len) break;
    uint32_t crc = Crc32c(h + 4, 8);
    crc = Crc32cExtend(crc, h + kWalFrameHeaderBytes, payload_len);
    if (crc != stored_crc) break;
    if (major > kWalVersionMajor) {
      // A valid frame from a future format generation: stop before it and
      // let the caller surface the structured error.
      if (major_too_new != nullptr) *major_too_new = true;
      break;
    }
    // A frame type this minor version does not know is skipped, not
    // fatal: its CRC proved it intact, and minor bumps only add types.
    if (type >= 1 && type <= 4) {
      WalFrame frame;
      frame.type = static_cast<WalFrameType>(type);
      frame.payload.assign(h + kWalFrameHeaderBytes,
                           h + kWalFrameHeaderBytes + payload_len);
      frames->push_back(std::move(frame));
    }
    pos += kWalFrameHeaderBytes + payload_len;
  }
  return pos;
}

// ----------------------------------------------------------------- open

Result<std::unique_ptr<Wal>> Wal::Open(storage::StorageManager* storage,
                                       const std::string& name,
                                       uint32_t series_length,
                                       Options options) {
  auto wal = std::unique_ptr<Wal>(
      new Wal(storage, name, series_length, std::move(options)));
  std::vector<uint8_t> bytes;
  const bool existed = storage->Exists(name);
  if (existed) {
    COCONUT_ASSIGN_OR_RETURN(wal->file_, storage->OpenFile(name));
    bytes.resize(wal->file_->size_bytes());
    if (!bytes.empty()) {
      COCONUT_RETURN_NOT_OK(wal->file_->ReadAt(0, bytes.data(), bytes.size()));
    }
  } else {
    COCONUT_ASSIGN_OR_RETURN(wal->file_, storage->CreateFile(name));
  }

  if (bytes.empty()) {
    // Fresh (or empty) log: write the stream-header frame and make both
    // the bytes and the name durable before anything is acknowledged.
    std::vector<uint8_t> payload;
    PutU32(&payload, series_length);
    const std::vector<uint8_t> frame =
        EncodeFrame(WalFrameType::kStreamHeader, payload);
    COCONUT_RETURN_NOT_OK(wal->file_->Append(frame.data(), frame.size()));
    COCONUT_RETURN_NOT_OK(wal->file_->DataSync());
    return wal;
  }

  bool major_too_new = false;
  std::vector<WalFrame> frames;
  const size_t valid_bytes = DecodeFrames(bytes, &frames, &major_too_new);
  if (frames.empty()) {
    if (major_too_new) {
      return Status::NotSupported(
          "wal '" + name + "' was written by a newer major format version");
    }
    // Non-empty file whose first frame doesn't parse: the header frame
    // was synced at creation, so this is corruption, not a torn tail —
    // refuse rather than silently wipe the stream.
    return Status::DataLoss("wal '" + name +
                            "' is corrupt at its stream header");
  }
  if (major_too_new) {
    // Valid frames from a newer major generation follow the readable
    // prefix. They are committed data, not a torn tail — truncating them
    // away would destroy a newer writer's acknowledged records.
    return Status::NotSupported(
        "wal '" + name + "' contains frames from a newer major format version");
  }
  if (frames[0].type != WalFrameType::kStreamHeader) {
    return Status::DataLoss("wal '" + name +
                            "' does not start with a stream header");
  }
  Reader header(frames[0].payload);
  uint32_t logged_length = 0;
  if (!header.GetU32(&logged_length)) {
    return Status::DataLoss("wal '" + name + "' has a short stream header");
  }
  if (logged_length != series_length) {
    return Status::InvalidArgument(
        "wal '" + name + "' holds series of length " +
        std::to_string(logged_length) + ", expected " +
        std::to_string(series_length));
  }
  // Drop the torn tail (a mid-write crash) so future appends extend a
  // valid log. Bytes past valid_bytes were never acknowledged: an ack
  // requires Commit's fdatasync to have returned, after the full frame.
  if (valid_bytes < bytes.size()) {
    COCONUT_RETURN_NOT_OK(
        wal->file_->Truncate(static_cast<uint64_t>(valid_bytes)));
    COCONUT_RETURN_NOT_OK(wal->file_->DataSync());
  }
  COCONUT_RETURN_NOT_OK(wal->AdoptScan(std::move(frames), valid_bytes));
  return wal;
}

Status Wal::AdoptScan(std::vector<WalFrame> frames, uint64_t valid_bytes) {
  (void)valid_bytes;
  for (size_t i = 1; i < frames.size(); ++i) {
    WalFrame& frame = frames[i];
    switch (frame.type) {
      case WalFrameType::kStreamHeader:
        return Status::DataLoss("wal '" + name_ +
                                "' has a duplicate stream header");
      case WalFrameType::kBase: {
        if (i != 1) {
          return Status::DataLoss("wal '" + name_ +
                                  "' has a misplaced base frame");
        }
        Reader r(frame.payload);
        uint64_t ckpt_entries = 0;
        uint32_t manifest_len = 0;
        uint64_t map_count = 0;
        if (!r.GetU64(&base_ordinals_) || !r.GetU64(&base_admitted_) ||
            !r.GetI64(&base_watermark_) || !r.GetU64(&ckpt_entries) ||
            !r.GetU32(&manifest_len) || manifest_len > r.remaining()) {
          return Status::DataLoss("wal '" + name_ + "' has a bad base frame");
        }
        std::vector<uint8_t> manifest;
        if (!r.GetBytes(&manifest, manifest_len) || !r.GetU64(&map_count) ||
            map_count > r.remaining() / 8) {
          return Status::DataLoss("wal '" + name_ + "' has a bad base frame");
        }
        if (!manifest.empty() || ckpt_entries > 0) {
          base_checkpoint_ = Checkpoint{ckpt_entries, std::move(manifest)};
        }
        base_map_.resize(map_count);
        for (uint64_t m = 0; m < map_count; ++m) {
          if (!r.GetU64(&base_map_[m])) {
            return Status::DataLoss("wal '" + name_ +
                                    "' has a bad base frame");
          }
        }
        break;
      }
      case WalFrameType::kBatch: {
        // Count the admits now (checkpoint validity needs the total);
        // full record decoding happens during Recover.
        Reader r(frame.payload);
        uint32_t count = 0;
        if (!r.GetU32(&count)) {
          return Status::DataLoss("wal '" + name_ + "' has a bad batch frame");
        }
        for (uint32_t k = 0; k < count; ++k) {
          uint8_t kind = 0;
          if (!r.GetU8(&kind)) {
            return Status::DataLoss("wal '" + name_ +
                                    "' has a bad batch frame");
          }
          if (kind == static_cast<uint8_t>(WalRecordKind::kAdmit)) {
            uint64_t id = 0;
            int64_t ts = 0;
            std::vector<float> values;
            if (!r.GetU64(&id) || !r.GetI64(&ts) ||
                !r.GetFloats(&values, series_length_)) {
              return Status::DataLoss("wal '" + name_ +
                                      "' has a bad batch frame");
            }
            ++scanned_admits_;
          } else if (kind == static_cast<uint8_t>(WalRecordKind::kMap)) {
            uint64_t global = 0;
            if (!r.GetU64(&global)) {
              return Status::DataLoss("wal '" + name_ +
                                      "' has a bad batch frame");
            }
          } else if (kind != static_cast<uint8_t>(WalRecordKind::kHole)) {
            return Status::DataLoss("wal '" + name_ +
                                    "' has an unknown record kind");
          }
        }
        scanned_batches_.push_back(std::move(frame.payload));
        break;
      }
      case WalFrameType::kCheckpoint: {
        Reader r(frame.payload);
        Checkpoint ckpt;
        uint32_t manifest_len = 0;
        if (!r.GetU64(&ckpt.durable_entries) || !r.GetU32(&manifest_len) ||
            !r.GetBytes(&ckpt.manifest, manifest_len)) {
          return Status::DataLoss("wal '" + name_ +
                                  "' has a bad checkpoint frame");
        }
        scanned_checkpoints_.push_back(std::move(ckpt));
        break;
      }
    }
  }
  return Status::OK();
}

// --------------------------------------------------------------- append

void Wal::AppendAdmit(uint64_t id, int64_t timestamp,
                      std::span<const float> values) {
  if (replaying()) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(static_cast<uint8_t>(WalRecordKind::kAdmit));
  PutU64(&pending_, id);
  PutI64(&pending_, timestamp);
  const size_t at = pending_.size();
  pending_.resize(at + values.size() * sizeof(float));
  std::memcpy(pending_.data() + at, values.data(),
              values.size() * sizeof(float));
  ++pending_count_;
}

void Wal::AppendHole() {
  if (replaying()) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(static_cast<uint8_t>(WalRecordKind::kHole));
  ++pending_count_;
}

void Wal::AppendMap(uint64_t global_id) {
  if (replaying()) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back(static_cast<uint8_t>(WalRecordKind::kMap));
  PutU64(&pending_, global_id);
  ++pending_count_;
}

Status Wal::WriteFrameLocked(std::span<const uint8_t> frame,
                             const char* mid_point, const char* post_point) {
  if (options_.test_hook) {
    // Two pwrites so the armed mid-frame point leaves a genuinely torn
    // frame on disk (a single pwrite would be all-or-nothing here —
    // SIGKILL does not shred the page cache).
    const size_t half = frame.size() / 2;
    COCONUT_RETURN_NOT_OK(file_->Append(frame.data(), half));
    Hook(mid_point);
    COCONUT_RETURN_NOT_OK(
        file_->Append(frame.data() + half, frame.size() - half));
  } else {
    COCONUT_RETURN_NOT_OK(file_->Append(frame.data(), frame.size()));
  }
  COCONUT_RETURN_NOT_OK(file_->DataSync());
  Hook(post_point);
  return Status::OK();
}

Status Wal::CommitLocked() {
  if (pending_count_ == 0) return Status::OK();
  std::vector<uint8_t> payload;
  payload.reserve(4 + pending_.size());
  PutU32(&payload, pending_count_);
  payload.insert(payload.end(), pending_.begin(), pending_.end());
  const std::vector<uint8_t> frame =
      EncodeFrame(WalFrameType::kBatch, payload);
  if (options_.test_hook) {
    const size_t half = frame.size() / 2;
    COCONUT_RETURN_NOT_OK(file_->Append(frame.data(), half));
    Hook("commit.mid_frame");
    COCONUT_RETURN_NOT_OK(
        file_->Append(frame.data() + half, frame.size() - half));
  } else {
    COCONUT_RETURN_NOT_OK(file_->Append(frame.data(), frame.size()));
  }
  Hook("commit.pre_sync");
  COCONUT_RETURN_NOT_OK(file_->DataSync());
  Hook("commit.post_sync");
  pending_.clear();
  pending_count_ = 0;
  return Status::OK();
}

Status Wal::Commit() {
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked();
}

Status Wal::AppendCheckpoint(uint64_t durable_entries,
                             std::span<const uint8_t> manifest) {
  std::lock_guard<std::mutex> lock(mu_);
  Hook("checkpoint.pre_write");
  std::vector<uint8_t> payload;
  PutU64(&payload, durable_entries);
  PutU32(&payload, static_cast<uint32_t>(manifest.size()));
  payload.insert(payload.end(), manifest.begin(), manifest.end());
  const std::vector<uint8_t> frame =
      EncodeFrame(WalFrameType::kCheckpoint, payload);
  return WriteFrameLocked(frame, "checkpoint.mid_frame",
                          "checkpoint.post_sync");
}

uint64_t Wal::size_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_->size_bytes();
}

// ------------------------------------------------------------- truncate

Status Wal::TruncateBefore(core::RawSeriesStore* raw) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pending records must reach the log before the scan (they are not yet
  // framed) — and the raw file must be durable before any frame whose
  // payload it now carries is dropped: the log is the only other copy.
  COCONUT_RETURN_NOT_OK(CommitLocked());
  COCONUT_RETURN_NOT_OK(raw->Sync());

  std::vector<uint8_t> bytes(file_->size_bytes());
  if (!bytes.empty()) {
    COCONUT_RETURN_NOT_OK(file_->ReadAt(0, bytes.data(), bytes.size()));
  }
  std::vector<WalFrame> frames;
  DecodeFrames(bytes, &frames);
  if (frames.empty() || frames[0].type != WalFrameType::kStreamHeader) {
    return Status::DataLoss("wal '" + name_ + "' unreadable at truncation");
  }

  // Base state carried forward (the in-memory copy mirrors any kBase
  // frame at position 1; this rewrite replaces it).
  uint64_t new_ordinals = base_ordinals_;
  uint64_t new_admitted = base_admitted_;
  int64_t new_watermark = base_watermark_;
  std::vector<uint64_t> new_map = base_map_;

  // Newest count-valid checkpoint decides how much is reclaimable.
  uint64_t total_admits = base_admitted_;
  for (size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].type != WalFrameType::kBatch) continue;
    Reader r(frames[i].payload);
    uint32_t count = 0;
    r.GetU32(&count);
    for (uint32_t k = 0; k < count; ++k) {
      uint8_t kind = 0;
      if (!r.GetU8(&kind)) break;
      if (kind == static_cast<uint8_t>(WalRecordKind::kAdmit)) {
        uint64_t id = 0;
        int64_t ts = 0;
        std::vector<float> values;
        r.GetU64(&id);
        r.GetI64(&ts);
        r.GetFloats(&values, series_length_);
        ++total_admits;
      } else if (kind == static_cast<uint8_t>(WalRecordKind::kMap)) {
        uint64_t global = 0;
        r.GetU64(&global);
      }
    }
  }
  Checkpoint chosen;  // durable_entries 0, empty manifest = none
  if (base_checkpoint_.has_value()) chosen = *base_checkpoint_;
  for (size_t i = 1; i < frames.size(); ++i) {
    if (frames[i].type != WalFrameType::kCheckpoint) continue;
    Reader r(frames[i].payload);
    Checkpoint ckpt;
    uint32_t manifest_len = 0;
    if (r.GetU64(&ckpt.durable_entries) && r.GetU32(&manifest_len) &&
        r.GetBytes(&ckpt.manifest, manifest_len) &&
        ckpt.durable_entries <= total_admits &&
        ckpt.durable_entries >= chosen.durable_entries) {
      chosen = std::move(ckpt);
    }
  }

  // Drop the maximal frame prefix fully covered by the chosen
  // checkpoint: checkpoint frames always drop (the chosen one rides in
  // the new base), batch frames drop while every admit inside has an
  // admission index below durable_entries. Admission indexes are
  // monotone in log order, so this is a clean prefix cut.
  size_t keep_from = 1;  // frame index of the first kept frame
  uint64_t admit_index = base_admitted_;
  for (size_t i = 1; i < frames.size(); ++i) {
    const WalFrame& frame = frames[i];
    if (frame.type == WalFrameType::kCheckpoint ||
        frame.type == WalFrameType::kBase) {
      keep_from = i + 1;
      continue;
    }
    if (frame.type != WalFrameType::kBatch) break;
    Reader r(frame.payload);
    uint32_t count = 0;
    r.GetU32(&count);
    uint64_t frame_ordinals = 0;
    uint64_t frame_admits = 0;
    int64_t frame_watermark = std::numeric_limits<int64_t>::min();
    std::vector<uint64_t> frame_maps;
    bool droppable = true;
    for (uint32_t k = 0; k < count; ++k) {
      uint8_t kind = 0;
      if (!r.GetU8(&kind)) break;
      if (kind == static_cast<uint8_t>(WalRecordKind::kAdmit)) {
        uint64_t id = 0;
        int64_t ts = 0;
        std::vector<float> values;
        r.GetU64(&id);
        r.GetI64(&ts);
        r.GetFloats(&values, series_length_);
        if (admit_index + frame_admits >= chosen.durable_entries) {
          droppable = false;
          break;
        }
        ++frame_admits;
        ++frame_ordinals;
        frame_watermark = std::max(frame_watermark, ts);
      } else if (kind == static_cast<uint8_t>(WalRecordKind::kHole)) {
        ++frame_ordinals;
      } else {
        uint64_t global = 0;
        r.GetU64(&global);
        frame_maps.push_back(global);
      }
    }
    if (!droppable) break;
    admit_index += frame_admits;
    new_ordinals += frame_ordinals;
    new_admitted += frame_admits;
    new_watermark = std::max(new_watermark, frame_watermark);
    new_map.insert(new_map.end(), frame_maps.begin(), frame_maps.end());
    keep_from = i + 1;
  }

  // Rewrite: header, base, kept frames — into a temp file, fsync, atomic
  // rename. A crash at any point leaves either the old complete log or
  // the new complete log; never a mix.
  std::vector<uint8_t> base_payload;
  PutU64(&base_payload, new_ordinals);
  PutU64(&base_payload, new_admitted);
  PutI64(&base_payload, new_watermark);
  PutU64(&base_payload, chosen.durable_entries);
  PutU32(&base_payload, static_cast<uint32_t>(chosen.manifest.size()));
  base_payload.insert(base_payload.end(), chosen.manifest.begin(),
                      chosen.manifest.end());
  PutU64(&base_payload, new_map.size());
  for (const uint64_t global : new_map) PutU64(&base_payload, global);

  const std::string tmp_name = name_ + ".tmp";
  {
    std::unique_ptr<storage::File> tmp;
    COCONUT_ASSIGN_OR_RETURN(tmp, storage_->CreateFile(tmp_name));
    std::vector<uint8_t> header_payload;
    PutU32(&header_payload, series_length_);
    const std::vector<uint8_t> header_frame =
        EncodeFrame(WalFrameType::kStreamHeader, header_payload);
    COCONUT_RETURN_NOT_OK(tmp->Append(header_frame.data(),
                                      header_frame.size()));
    const std::vector<uint8_t> base_frame =
        EncodeFrame(WalFrameType::kBase, base_payload);
    COCONUT_RETURN_NOT_OK(tmp->Append(base_frame.data(), base_frame.size()));
    for (size_t i = keep_from; i < frames.size(); ++i) {
      const std::vector<uint8_t> kept =
          EncodeFrame(frames[i].type, frames[i].payload);
      COCONUT_RETURN_NOT_OK(tmp->Append(kept.data(), kept.size()));
    }
    COCONUT_RETURN_NOT_OK(tmp->Sync());
  }
  Hook("truncate.pre_rename");
  COCONUT_RETURN_NOT_OK(storage_->RenameFile(tmp_name, name_));
  Hook("truncate.post_rename");
  COCONUT_ASSIGN_OR_RETURN(file_, storage_->OpenFile(name_));

  base_ordinals_ = new_ordinals;
  base_admitted_ = new_admitted;
  base_watermark_ = new_watermark;
  base_map_ = std::move(new_map);
  if (!chosen.manifest.empty() || chosen.durable_entries > 0) {
    base_checkpoint_ = std::move(chosen);
  }
  return Status::OK();
}

// -------------------------------------------------------------- recover

Status Wal::Recover(StreamingIndex* index, core::RawSeriesStore* raw,
                    WalRecoverOutcome* outcome) {
  // Newest count-valid checkpoint wins. A checkpoint written after
  // records that were still pending at the crash can claim entries the
  // log has no admits for — those entries were never acknowledged, so
  // such a checkpoint must not be restored; an older covered one (or a
  // full replay) reproduces exactly the acknowledged state.
  const uint64_t total_admits = base_admitted_ + scanned_admits_;
  const Checkpoint* chosen = nullptr;
  for (auto it = scanned_checkpoints_.rbegin();
       it != scanned_checkpoints_.rend(); ++it) {
    if (it->durable_entries <= total_admits) {
      chosen = &*it;
      break;
    }
  }
  if (chosen == nullptr && base_checkpoint_.has_value() &&
      base_checkpoint_->durable_entries <= total_admits) {
    chosen = &*base_checkpoint_;
  }

  uint64_t skip_admits = 0;  // absolute admission index to replay from
  if (chosen != nullptr) {
    const Status restored = index->RestoreFromManifest(chosen->manifest);
    if (restored.ok()) {
      skip_admits = chosen->durable_entries;
    } else if (base_ordinals_ == 0) {
      // Nothing was truncated away: every admit is still in the log, so
      // a full replay rebuilds the same state without the manifest.
      skip_admits = 0;
    } else {
      return Status::DataLoss("wal '" + name_ +
                              "' checkpoint manifest unrestorable after "
                              "truncation: " +
                              restored.message());
    }
  } else if (base_admitted_ > 0) {
    return Status::DataLoss(
        "wal '" + name_ +
        "' was truncated but no covered checkpoint survives");
  }
  if (skip_admits < base_admitted_) {
    return Status::DataLoss("wal '" + name_ +
                            "' base admits exceed the restored checkpoint");
  }

  replaying_.store(true, std::memory_order_relaxed);
  const Status replayed = ReplayInto(index, raw, skip_admits, outcome);
  replaying_.store(false, std::memory_order_relaxed);
  COCONUT_RETURN_NOT_OK(replayed);

  // Free the scanned payload copies (the log itself stays on disk).
  scanned_batches_.clear();
  scanned_batches_.shrink_to_fit();
  scanned_checkpoints_.clear();
  return Status::OK();
}

Status Wal::ReplayInto(StreamingIndex* index, core::RawSeriesStore* raw,
                       uint64_t skip_admits, WalRecoverOutcome* outcome) {
  uint64_t ordinal = base_ordinals_;
  uint64_t admits_seen = base_admitted_;
  int64_t watermark = base_watermark_;
  bool watermark_restored = false;
  outcome->local_to_global = base_map_;
  const std::vector<float> zeros(series_length_, 0.0f);
  std::vector<float> values;

  auto ensure_watermark = [&]() {
    if (watermark_restored) return;
    if (watermark > std::numeric_limits<int64_t>::min()) {
      index->RestoreWatermark(watermark);
    }
    watermark_restored = true;
  };

  for (const std::vector<uint8_t>& payload : scanned_batches_) {
    Reader r(payload);
    uint32_t count = 0;
    r.GetU32(&count);  // validated by AdoptScan
    for (uint32_t k = 0; k < count; ++k) {
      uint8_t kind = 0;
      r.GetU8(&kind);
      if (kind == static_cast<uint8_t>(WalRecordKind::kAdmit)) {
        uint64_t id = 0;
        int64_t ts = 0;
        r.GetU64(&id);
        r.GetI64(&ts);
        r.GetFloats(&values, series_length_);
        if (id != ordinal) {
          return Status::DataLoss(
              "wal '" + name_ + "' admit id " + std::to_string(id) +
              " does not match raw ordinal " + std::to_string(ordinal));
        }
        COCONUT_RETURN_NOT_OK(raw->Append(values).status());
        ++ordinal;
        if (admits_seen < skip_admits) {
          watermark = std::max(watermark, ts);
        } else {
          ensure_watermark();
          Status st = index->Ingest(id, values, ts);
          if (st.code() == StatusCode::kResourceExhausted) {
            // Reject-mode backpressure can fire mid-replay exactly as it
            // would live; drain once and retry — replay is not a client
            // that can be asked to back off.
            COCONUT_RETURN_NOT_OK(index->FlushAll());
            st = index->Ingest(id, values, ts);
          }
          COCONUT_RETURN_NOT_OK(st);
          watermark = std::max(watermark, ts);
        }
        ++admits_seen;
      } else if (kind == static_cast<uint8_t>(WalRecordKind::kHole)) {
        // The ordinal was burned by a rejected entry; its raw payload is
        // unreachable (nothing in the index refers to it), so zero-fill.
        COCONUT_RETURN_NOT_OK(raw->Append(zeros).status());
        ++ordinal;
      } else {
        uint64_t global = 0;
        r.GetU64(&global);
        outcome->local_to_global.push_back(global);
      }
    }
  }
  ensure_watermark();
  COCONUT_RETURN_NOT_OK(raw->Flush());

  outcome->ordinals = ordinal;
  outcome->admitted = admits_seen;
  outcome->watermark = watermark;
  return Status::OK();
}

}  // namespace stream
}  // namespace coconut
