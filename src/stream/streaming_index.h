#ifndef COCONUT_STREAM_STREAMING_INDEX_H_
#define COCONUT_STREAM_STREAMING_INDEX_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "core/types.h"

namespace coconut {
namespace stream {

/// Facade over the streaming schemes of Section 3 (PP, TP, BTP). Values in
/// each temporal window are treated as time-ordered sequences: series
/// arrive with timestamps, and queries carry a window of interest in
/// SearchOptions.window.
class StreamingIndex {
 public:
  virtual ~StreamingIndex() = default;

  /// Ingests one z-normalized series stamped `timestamp`. Timestamps must
  /// be non-decreasing across calls (stream order).
  virtual Status Ingest(uint64_t series_id,
                        std::span<const float> znorm_values,
                        int64_t timestamp) = 0;

  /// Drains any in-memory buffer to storage.
  virtual Status FlushAll() = 0;

  virtual Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) = 0;

  virtual Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) = 0;

  virtual uint64_t num_entries() const = 0;

  /// Sealed partitions currently held (1 for PP's monolithic index).
  virtual size_t num_partitions() const = 0;

  virtual uint64_t index_bytes() const = 0;

  virtual std::string describe() const = 0;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_STREAMING_INDEX_H_
