#ifndef COCONUT_STREAM_STREAMING_INDEX_H_
#define COCONUT_STREAM_STREAMING_INDEX_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"
#include "core/types.h"

namespace coconut {
namespace stream {

/// What Ingest does when a timestamp arrives below the largest timestamp
/// accepted so far (the documented stream-order contract).
enum class TimestampPolicy {
  /// Accept out-of-order timestamps as-is. Partition [t_min, t_max]
  /// metadata tracks the true range, so answers stay exact; the cost is
  /// temporally overlapping partitions that window pruning cannot skip.
  /// This is how real sensor feeds behave and the default.
  kPermissive,
  /// Reject regressions: Ingest returns InvalidArgument and the series is
  /// not admitted. Equal timestamps are fine (non-decreasing contract).
  kStrict,
  /// Clamp regressions up to the largest timestamp accepted so far; the
  /// series is admitted under the clamped (non-decreasing) timestamp.
  kClamp,
};

/// Consistent view of a streaming index's progress, safe to read while
/// other threads ingest and background tasks seal/merge (taken under the
/// index's state lock, like StorageManager::SnapshotIoStats).
struct StreamingStats {
  /// Entries acknowledged by Ingest (buffered + in-flight + sealed).
  uint64_t entries = 0;
  /// Entries still in the in-memory ingest buffer.
  uint64_t buffered = 0;
  /// Sealed partitions currently queryable.
  uint64_t sealed_partitions = 0;
  /// Background seals/flushes/merge-cascades enqueued but not finished.
  uint64_t pending_tasks = 0;
  /// Buffer seals / memtable flushes completed since creation.
  uint64_t seals_completed = 0;
  /// Partition/run merges completed since creation.
  uint64_t merges_completed = 0;
};

/// Facade over the streaming schemes of Section 3 (PP, TP, BTP). Values in
/// each temporal window are treated as time-ordered sequences: series
/// arrive with timestamps, and queries carry a window of interest in
/// SearchOptions.window.
///
/// Threading: implementations created with a background pool are
/// concurrent — one thread may Ingest while any number of threads query;
/// seals and merges run on the pool and queries execute against immutable
/// snapshots of the sealed partition set. Without a background pool the
/// index is single-caller, exactly as before.
class StreamingIndex {
 public:
  virtual ~StreamingIndex() = default;

  /// Ingests one z-normalized series stamped `timestamp`. Timestamps are
  /// expected to be non-decreasing across calls (stream order); what
  /// happens when they are not is governed by the index's TimestampPolicy
  /// (see above — never silent misordering: permissive tracking, rejection,
  /// or clamping, each documented and pinned by tests).
  virtual Status Ingest(uint64_t series_id,
                        std::span<const float> znorm_values,
                        int64_t timestamp) = 0;

  /// Drain barrier: seals any in-memory buffer and blocks until every
  /// deferred seal, flush and merge cascade has completed. Afterwards the
  /// index answers queries identically to one built synchronously over the
  /// same input, and the first error any background task hit is returned.
  virtual Status FlushAll() = 0;

  virtual Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) = 0;

  virtual Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) = 0;

  virtual uint64_t num_entries() const = 0;

  /// Sealed partitions currently held (1 for PP's monolithic index).
  virtual size_t num_partitions() const = 0;

  virtual uint64_t index_bytes() const = 0;

  virtual std::string describe() const = 0;

  /// Race-free progress snapshot; the base implementation covers
  /// single-threaded wrappers whose accessors are already consistent.
  virtual StreamingStats SnapshotStats() const {
    StreamingStats stats;
    stats.entries = num_entries();
    stats.sealed_partitions = num_partitions();
    return stats;
  }
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_STREAMING_INDEX_H_
