#ifndef COCONUT_STREAM_STREAMING_INDEX_H_
#define COCONUT_STREAM_STREAMING_INDEX_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "core/types.h"

namespace coconut {
namespace stream {

/// What Ingest does when a timestamp arrives below the largest timestamp
/// accepted so far (the documented stream-order contract).
enum class TimestampPolicy {
  /// Accept out-of-order timestamps as-is. Partition [t_min, t_max]
  /// metadata tracks the true range, so answers stay exact; the cost is
  /// temporally overlapping partitions that window pruning cannot skip.
  /// This is how real sensor feeds behave and the default.
  kPermissive,
  /// Reject regressions: Ingest returns InvalidArgument and the series is
  /// not admitted. Equal timestamps are fine (non-decreasing contract).
  kStrict,
  /// Clamp regressions up to the largest timestamp accepted so far; the
  /// series is admitted under the clamped (non-decreasing) timestamp.
  kClamp,
};

/// What Ingest does when the index has hit its bounded-backpressure cap
/// (VariantSpec::max_inflight_seals): every detached-but-unflushed buffer
/// holds up to buffer_entries series in memory, so without a bound a
/// producer outrunning the background flusher grows memory without limit.
enum class BackpressurePolicy {
  /// Ingest blocks until a background seal retires (the default): the
  /// producer is paced to the flusher and no entry is ever refused.
  kBlock,
  /// Ingest returns ResourceExhausted without admitting the entry; the
  /// caller retries (HTTP clients see a structured resource_exhausted
  /// ApiError / 429). Subsequent ingests succeed once a seal retires.
  kReject,
};

/// The stall/reject bookkeeping and blocking wait shared by every
/// backpressured index — TP/BTP gate on their pending-seal list, CLSM on
/// its pending-flush list, with identical semantics. The gate owns no
/// lock: Block waits on the owner's state mutex, and the owner calls
/// Notify() — still under that mutex — whenever a pending item retires or
/// the background flusher records an error, so a blocked producer always
/// wakes. Writers (Block/Reject) are serialized by the owner's mutex, but
/// all *reads* (stalls/rejects/samples/percentiles) are lock-free: the
/// counters are atomic and the sample window is a fixed array of atomic
/// doubles, so stats snapshots never queue behind a backpressure-blocked
/// ingest holding the admission path.
class BackpressureGate {
 public:
  /// Counts and returns the structured refusal (one wire-stable message
  /// shape across index families).
  Status Reject(size_t pending, size_t cap) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "ingest rejected: " + std::to_string(pending) +
        " seals in flight >= max_inflight_seals (" + std::to_string(cap) +
        "); retry after the stream drains");
  }

  /// Counts a stall, waits on the owner's mutex until `done` holds (the
  /// owner's "pending below cap OR background error" predicate), and
  /// records the stall duration into the bounded percentile window.
  template <typename Pred>
  void Block(std::unique_lock<std::mutex>* lock, Pred done) {
    stalls_.fetch_add(1, std::memory_order_relaxed);
    WallTimer stall;
    cv_.wait(*lock, std::move(done));
    const size_t count = sample_count_.load(std::memory_order_relaxed);
    const size_t slot = count < kSampleWindow ? count : next_;
    samples_[slot].store(stall.ElapsedMillis(), std::memory_order_relaxed);
    if (count < kSampleWindow) {
      sample_count_.store(count + 1, std::memory_order_release);
    } else {
      next_ = (next_ + 1) % kSampleWindow;
    }
  }

  /// Wakes blocked producers; owner calls this under its state mutex.
  void Notify() { cv_.notify_all(); }

  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  uint64_t rejects() const { return rejects_.load(std::memory_order_relaxed); }

  /// Copy of the bounded stall-sample window — lock-free, callable while a
  /// producer is blocked in Block(). A sample being overwritten
  /// concurrently reads as either the old or the new stall duration
  /// (atomic per slot), which is fine for a percentile estimate. Feeds
  /// StreamingStats::stall_samples so cross-shard aggregation can merge
  /// sample multisets instead of percentile scalars.
  std::vector<double> SnapshotSamples() const {
    const size_t count = sample_count_.load(std::memory_order_acquire);
    std::vector<double> out(count);
    for (size_t i = 0; i < count; ++i) {
      out[i] = samples_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Percentile over the recorded stall window (0 when nothing stalled).
  double StallPercentileMs(double p) const {
    std::vector<double> sorted = SnapshotSamples();
    if (sorted.empty()) return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx =
        static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  }

 private:
  /// Stall samples kept for the p50/p99 estimate: large enough that one
  /// burst does not wash the window out, small enough to sort in a stats
  /// snapshot without a visible pause.
  static constexpr size_t kSampleWindow = 256;

  std::condition_variable cv_;
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> rejects_{0};
  std::array<std::atomic<double>, kSampleWindow> samples_{};
  /// Grows 0..kSampleWindow then sticks; release-published after the slot
  /// write so a reader never sees count cover an unwritten slot.
  std::atomic<size_t> sample_count_{0};
  /// Overwrite cursor once the window is full; owner's mutex serializes
  /// writers, so plain.
  size_t next_ = 0;
};

/// Consistent view of a streaming index's progress, safe to read while
/// other threads ingest and background tasks seal/merge (taken under the
/// index's state lock, like StorageManager::SnapshotIoStats).
struct StreamingStats {
  /// Entries acknowledged by Ingest (buffered + in-flight + sealed).
  uint64_t entries = 0;
  /// Entries still in the in-memory ingest buffer.
  uint64_t buffered = 0;
  /// Sealed partitions currently queryable.
  uint64_t sealed_partitions = 0;
  /// Background seals/flushes/merge-cascades enqueued but not finished.
  uint64_t pending_tasks = 0;
  /// Buffer seals / memtable flushes completed since creation.
  uint64_t seals_completed = 0;
  /// Partition/run merges completed since creation.
  uint64_t merges_completed = 0;
  /// Buffers detached from the ingest path but not yet flushed — the
  /// quantity max_inflight_seals bounds. Today this equals pending_tasks
  /// for every producer (both read the pending list), but it is named
  /// separately on the wire because it is *defined* as the bounded
  /// quantity: pending_tasks may later grow to count non-seal background
  /// work (e.g. standalone compactions) that the cap does not cover.
  uint64_t seals_inflight = 0;
  /// Times Ingest blocked on the seal cap (BackpressurePolicy::kBlock).
  uint64_t ingest_stalls = 0;
  /// Times Ingest returned ResourceExhausted (BackpressurePolicy::kReject).
  uint64_t ingest_rejects = 0;
  /// Stall-duration percentiles over the most recent stalls, in
  /// milliseconds (0 when nothing ever stalled).
  double stall_ms_p50 = 0.0;
  double stall_ms_p99 = 0.0;
  /// The bounded stall-sample window the percentiles were computed from
  /// (up to BackpressureGate's window per index). Carried so Add() can
  /// merge the underlying multisets: a max of per-shard p50s is not the
  /// p50 of anything, but a percentile over the pooled samples is the
  /// exact percentile of the pooled window.
  std::vector<double> stall_samples;

  /// Percentile over an unsorted sample vector using the same nearest-rank
  /// convention as BackpressureGate::StallPercentileMs (index p*(n-1) of
  /// the sorted samples); 0 when empty.
  static double PercentileMs(std::vector<double> samples, double p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    const size_t idx =
        static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  }

  /// Folds another snapshot in (the cross-shard gather): counts sum;
  /// stall-sample windows concatenate and the percentile fields are
  /// recomputed over the pooled multiset, so the aggregate p50/p99 is the
  /// true percentile of the merged window — per-shard exact percentiles
  /// stay available shard by shard.
  void Add(const StreamingStats& other) {
    entries += other.entries;
    buffered += other.buffered;
    sealed_partitions += other.sealed_partitions;
    pending_tasks += other.pending_tasks;
    seals_completed += other.seals_completed;
    merges_completed += other.merges_completed;
    seals_inflight += other.seals_inflight;
    ingest_stalls += other.ingest_stalls;
    ingest_rejects += other.ingest_rejects;
    stall_samples.insert(stall_samples.end(), other.stall_samples.begin(),
                         other.stall_samples.end());
    stall_ms_p50 = PercentileMs(stall_samples, 0.50);
    stall_ms_p99 = PercentileMs(stall_samples, 0.99);
  }
};

/// Facade over the streaming schemes of Section 3 (PP, TP, BTP). Values in
/// each temporal window are treated as time-ordered sequences: series
/// arrive with timestamps, and queries carry a window of interest in
/// SearchOptions.window.
///
/// Threading: implementations created with a background pool are
/// concurrent — one thread may Ingest while any number of threads query;
/// seals and merges run on the pool and queries execute against immutable
/// snapshots of the sealed partition set. Without a background pool the
/// index is single-caller, exactly as before.
class StreamingIndex {
 public:
  virtual ~StreamingIndex() = default;

  /// Ingests one z-normalized series stamped `timestamp`. Timestamps are
  /// expected to be non-decreasing across calls (stream order); what
  /// happens when they are not is governed by the index's TimestampPolicy
  /// (see above — never silent misordering: permissive tracking, rejection,
  /// or clamping, each documented and pinned by tests).
  virtual Status Ingest(uint64_t series_id,
                        std::span<const float> znorm_values,
                        int64_t timestamp) = 0;

  /// Drain barrier: seals any in-memory buffer and blocks until every
  /// deferred seal, flush and merge cascade has completed. Afterwards the
  /// index answers queries identically to one built synchronously over the
  /// same input, and the first error any background task hit is returned.
  virtual Status FlushAll() = 0;

  virtual Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) = 0;

  virtual Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) = 0;

  virtual uint64_t num_entries() const = 0;

  /// Sealed partitions currently held (1 for PP's monolithic index).
  virtual size_t num_partitions() const = 0;

  virtual uint64_t index_bytes() const = 0;

  virtual std::string describe() const = 0;

  /// Race-free progress snapshot; the base implementation covers
  /// single-threaded wrappers whose accessors are already consistent.
  virtual StreamingStats SnapshotStats() const {
    StreamingStats stats;
    stats.entries = num_entries();
    stats.sealed_partitions = num_partitions();
    return stats;
  }

  // ---- durability hooks (write-ahead logging; see stream/wal.h). The
  // defaults keep non-durable indexes and wrappers untouched.

  /// Rebuilds the sealed-partition state a checkpoint manifest describes
  /// (partition/run files on disk, counters, deterministic name
  /// sequences). Called once, on an empty index, before WAL replay.
  virtual Status RestoreFromManifest(std::span<const uint8_t> manifest) {
    (void)manifest;
    return Status::NotSupported(describe() +
                                " does not support manifest restore");
  }

  /// Seeds the timestamp-policy watermark with the max timestamp among
  /// entries recovery did NOT replay through Ingest (manifest-restored and
  /// truncated-away admits), so strict/clamp semantics survive a restart.
  virtual void RestoreWatermark(int64_t timestamp) { (void)timestamp; }

  /// Makes every record buffered in the index's write-ahead log(s)
  /// durable — the acknowledgement gate for a durable stream. The sharded
  /// wrapper fans this out to its per-shard logs; an index without a WAL
  /// returns OK. Runs on the admission thread, after the batch.
  virtual Status CommitDurable() { return Status::OK(); }

  /// True when any number of threads may call the search/stats accessors
  /// concurrently with each other AND with Ingest/FlushAll, with no
  /// external serialization: the epoch-based read path (readers load a
  /// published immutable snapshot, never take the admission mutex, and
  /// never touch a shared BufferPool whose page pointers a concurrent
  /// reader could invalidate). Async TP/BTP/CLSM and the sharded wrapper
  /// qualify; sync (single-caller) indexes and anything routing reads
  /// through a shared BufferPool do not. The service layer uses this to
  /// bypass its per-index operation mutex on the query path.
  virtual bool ConcurrentReadsSafe() const { return false; }

  /// Monotonic snapshot-version stamp, mirroring
  /// core::DataSeriesIndex::snapshot_version(): bumped on every Ingest
  /// admission and every background publication (seal, flush, merge
  /// cascade) that changes the queryable partition set. Equal reads
  /// bracketing a query prove it ran against one stable snapshot; the
  /// service-layer answer cache keys validity on this. Wrappers that
  /// delegate all mutation to an inner structure override this to forward
  /// (or sum, for sharded fan-outs — sound because components only grow).
  virtual uint64_t snapshot_version() const {
    return snapshot_version_.load(std::memory_order_acquire);
  }

 protected:
  /// Marks a mutation; thread-safe, called at admission/publication sites.
  void BumpSnapshotVersion() {
    snapshot_version_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> snapshot_version_{0};
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_STREAMING_INDEX_H_
