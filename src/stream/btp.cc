#include "stream/btp.h"

#include <algorithm>
#include <map>

#include "seqtable/merge.h"

namespace coconut {
namespace stream {

Result<std::unique_ptr<BoundedTemporalPartitioningIndex>>
BoundedTemporalPartitioningIndex::Create(storage::StorageManager* storage,
                                         const std::string& prefix,
                                         const BtpOptions& options,
                                         storage::BufferPool* pool,
                                         core::RawSeriesStore* raw) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.merge_k < 2) {
    return Status::InvalidArgument("merge_k must be >= 2");
  }
  if (options.buffer_entries == 0) {
    return Status::InvalidArgument("buffer_entries must be > 0");
  }
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized BTP needs a raw store for verification");
  }
  Options topts;
  topts.sax = options.sax;
  topts.materialized = options.materialized;
  topts.backend = PartitionBackend::kSeqTable;
  topts.buffer_entries = options.buffer_entries;
  topts.timestamp_policy = options.timestamp_policy;
  topts.background = options.background;
  topts.max_inflight_seals = options.max_inflight_seals;
  topts.backpressure = options.backpressure;
  topts.seal_test_hook = options.seal_test_hook;
  topts.wal = options.wal;
  return std::unique_ptr<BoundedTemporalPartitioningIndex>(
      new BoundedTemporalPartitioningIndex(storage, prefix, topts, pool, raw,
                                           options.merge_k));
}

int BoundedTemporalPartitioningIndex::max_size_class() const {
  std::shared_ptr<const PartitionSet> parts = CurrentPartitions();
  int max_class = 0;
  for (const auto& p : *parts) max_class = std::max(max_class, p->size_class);
  return max_class;
}

Status BoundedTemporalPartitioningIndex::AfterSeal() {
  // Repeatedly merge the oldest merge_k partitions that share a size class.
  // Partitions of one class are temporally adjacent (they were created in
  // stream order and merges preserve that order), so the merged partition's
  // time range is contiguous. This loop is the only partition-set mutator
  // besides SealTask and is serialized with it, so the read-copy-publish
  // below never loses a concurrent update.
  while (true) {
    std::shared_ptr<const PartitionSet> parts = CurrentPartitions();
    // Count partitions per class.
    std::map<int, std::vector<size_t>> by_class;
    for (size_t i = 0; i < parts->size(); ++i) {
      by_class[(*parts)[i]->size_class].push_back(i);
    }
    int merge_class = -1;
    for (const auto& [cls, indices] : by_class) {
      if (indices.size() >= static_cast<size_t>(merge_k_)) {
        merge_class = cls;
        break;
      }
    }
    if (merge_class < 0) return Status::OK();

    const std::vector<size_t>& indices = by_class[merge_class];
    std::vector<size_t> chosen(indices.begin(), indices.begin() + merge_k_);

    std::vector<const seqtable::SeqTable*> inputs;
    int64_t t_min = INT64_MAX;
    int64_t t_max = INT64_MIN;
    for (size_t idx : chosen) {
      inputs.push_back((*parts)[idx]->table.get());
      t_min = std::min(t_min, (*parts)[idx]->t_min);
      t_max = std::max(t_max, (*parts)[idx]->t_max);
    }

    seqtable::SeqTableOptions topts;
    topts.sax = options_.sax;
    topts.materialized = options_.materialized;
    const std::string out_name =
        prefix_ + ".m" + std::to_string(next_merge_id_++);
    COCONUT_ASSIGN_OR_RETURN(
        std::unique_ptr<seqtable::SeqTable> merged,
        seqtable::MergeTables(storage_, out_name, topts, inputs, ReadPool()));

    auto merged_partition = std::make_shared<SealedPartition>();
    merged_partition->table = std::move(merged);
    merged_partition->t_min = t_min;
    merged_partition->t_max = t_max;
    merged_partition->entries = merged_partition->table->num_entries();
    merged_partition->size_class = merge_class + 1;
    merged_partition->name = out_name;

    // Build the replacement set: drop the inputs, insert the merged
    // partition where the oldest input sat (keeping time order), publish,
    // and only then unlink the input files — queries holding the previous
    // snapshot keep reading through their open descriptors.
    std::vector<std::string> retired_names;
    auto next = std::make_shared<PartitionSet>(*parts);
    const size_t insert_at = chosen.front();
    for (auto it = chosen.rbegin(); it != chosen.rend(); ++it) {
      retired_names.push_back((*next)[*it]->name);
      next->erase(next->begin() + *it);
    }
    next->insert(next->begin() + insert_at, std::move(merged_partition));
    PublishPartitions(std::move(next), /*retired_pending=*/nullptr,
                      /*count_seal=*/false, /*merges_delta=*/1);
    for (const std::string& name : retired_names) {
      // Deferred to the next durable checkpoint when a WAL is attached:
      // the last checkpoint on disk may still reference these inputs.
      COCONUT_RETURN_NOT_OK(RetireFile(name));
    }
  }
}

}  // namespace stream
}  // namespace coconut
