#ifndef COCONUT_STREAM_BUFFER_GEN_H_
#define COCONUT_STREAM_BUFFER_GEN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>

#include "core/entry.h"

namespace coconut {
namespace stream {

/// One generation of the in-memory ingest buffer (TP/BTP's unsealed
/// buffer, CLSM's memtable), laid out for lock-free readers: fixed
/// preallocated entry and payload arrays plus an atomic published count.
///
/// The writer — always serialized by the owner's admission mutex — writes
/// entries[n] (and the payload slab when materialized) and then
/// release-stores published = n+1; a reader acquire-loads published and
/// may touch exactly that prefix. Slots are written once and never
/// mutated, so a reader holding an older snapshot that observes a fresher
/// count of a still-active generation simply sees more admitted entries —
/// monotone append-only, never torn.
///
/// When the buffer detaches for its background seal/flush, the generation
/// moves (by shared_ptr) into the pending descriptor with the count
/// frozen at detach, and the writer starts a fresh generation. Published
/// query snapshots reference generations by shared_ptr, so a generation
/// lives exactly as long as any snapshot (or pending seal) that can still
/// reach it.
struct BufferGen {
  BufferGen(size_t capacity, size_t series_length, bool materialized)
      : entries(new core::IndexEntry[capacity]),
        payloads(materialized ? new float[capacity * series_length] : nullptr),
        capacity(capacity),
        series_length(series_length) {}

  std::span<const core::IndexEntry> EntrySpan(size_t count) const {
    return {entries.get(), count};
  }
  std::span<const float> PayloadSpan(size_t count) const {
    if (payloads == nullptr) return {};
    return {payloads.get(), count * series_length};
  }

  const std::unique_ptr<core::IndexEntry[]> entries;
  const std::unique_ptr<float[]> payloads;
  const size_t capacity;
  const size_t series_length;
  /// Entries admitted into this generation; release-stored by the writer
  /// after the slot write, acquire-loaded by readers. Frozen at detach.
  std::atomic<uint64_t> published{0};
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_BUFFER_GEN_H_
