#ifndef COCONUT_STREAM_WAL_H_
#define COCONUT_STREAM_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/raw_store.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace stream {

class StreamingIndex;

/// On-disk framing (all integers little-endian). Every frame is a 16-byte
/// header followed by `payload_len` payload bytes:
///
///   u32 magic      "CWAL"
///   u8  version_major   (reader rejects a larger major, structured error)
///   u8  version_minor   (larger minor stays readable: unknown frame
///                        types with a valid CRC are skipped)
///   u8  type            (WalFrameType)
///   u8  reserved        (0)
///   u32 payload_len
///   u32 crc32c          over header bytes [4, 12) ++ payload
///
/// A log is: one kStreamHeader frame, then (after a TruncateBefore) at
/// most one kBase frame, then kBatch / kCheckpoint frames in commit
/// order. Scanning stops at the first frame that fails to parse — a torn
/// tail from a mid-write crash — and recovery drops it; a log whose very
/// first frame is invalid is reported as kDataLoss instead (a torn tail
/// cannot reach offset zero: the header frame is synced at creation).
constexpr uint32_t kWalMagic = 0x4C415743u;  // "CWAL" in LE byte order
constexpr uint8_t kWalVersionMajor = 1;
constexpr uint8_t kWalVersionMinor = 0;
constexpr size_t kWalFrameHeaderBytes = 16;

enum class WalFrameType : uint8_t {
  /// Payload: u32 series_length. Always the first frame.
  kStreamHeader = 1,
  /// One group commit. Payload: u32 count, then `count` records, each
  /// u8 kind (WalRecordKind) followed by the kind's fields.
  kBatch = 2,
  /// A sealed-state marker written by the index's background strand.
  /// Payload: u64 durable_entries (admits, counted from stream start,
  /// covered by the manifest), u32 manifest_len, manifest bytes.
  kCheckpoint = 3,
  /// The self-contained base a truncated log starts from. Payload:
  /// u64 base_ordinals, u64 base_admitted, i64 watermark (max admitted
  /// timestamp among dropped records), u64 checkpoint_durable_entries,
  /// u32 manifest_len + manifest (empty when no checkpoint was folded
  /// in), u64 map_count + u64 global ids (sharded local->global entries
  /// for the dropped ordinals).
  kBase = 4,
};

enum class WalRecordKind : uint8_t {
  /// u64 id (raw-store ordinal), i64 timestamp, f32[series_length].
  kAdmit = 0,
  /// No fields: one raw-store ordinal burned by a rejected entry.
  kHole = 1,
  /// u64 global_id: the sharded wrapper's local->global mapping for the
  /// next ordinal-consuming record.
  kMap = 2,
};

/// What Wal::Recover rebuilt, for the owner to restore its own counters.
struct WalRecoverOutcome {
  /// Raw-store ordinals consumed (admits + holes): the next local id.
  uint64_t ordinals = 0;
  /// Entries admitted to the index (restored + replayed).
  uint64_t admitted = 0;
  /// Max admitted timestamp, or INT64_MIN when nothing was admitted.
  int64_t watermark = std::numeric_limits<int64_t>::min();
  /// local id -> global id, rebuilt from kMap records (sharded only).
  std::vector<uint64_t> local_to_global;
};

/// A decoded frame, surfaced for the format/corruption tests.
struct WalFrame {
  WalFrameType type;
  std::vector<uint8_t> payload;
};

// ---- little-endian scalar encoding, shared by the log codec and the
// per-index checkpoint manifests (explicit byte order so the golden
// fixtures hold on any host).

inline void WalPutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline void WalPutU64(std::vector<uint8_t>* out, uint64_t v) {
  WalPutU32(out, static_cast<uint32_t>(v));
  WalPutU32(out, static_cast<uint32_t>(v >> 32));
}

inline void WalPutI64(std::vector<uint8_t>* out, int64_t v) {
  WalPutU64(out, static_cast<uint64_t>(v));
}

inline void WalPutString(std::vector<uint8_t>* out, const std::string& s) {
  WalPutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounded little-endian reader; every Get checks the remaining bytes so
/// a corrupt length field can never read out of bounds (the corruption
/// matrix flips every byte and expects no crash).
class WalReader {
 public:
  explicit WalReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = bytes_[pos_++];
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = static_cast<uint32_t>(bytes_[pos_]) |
         static_cast<uint32_t>(bytes_[pos_ + 1]) << 8 |
         static_cast<uint32_t>(bytes_[pos_ + 2]) << 16 |
         static_cast<uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }
  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool GetFloats(std::vector<float>* out, size_t count);
  bool GetBytes(std::vector<uint8_t>* out, size_t count);
  bool GetString(std::string* out);
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

/// Per-stream (per-shard, when sharded) write-ahead log with group
/// commit. The ingest path buffers records in memory (AppendAdmit /
/// AppendHole / AppendMap, no I/O); Commit() writes them as one CRC32C
/// framed batch and fdatasyncs — the acknowledgement gate: an
/// `ingest_batch` reply is sent only after Commit() returns. The index's
/// background strand appends checkpoint frames after each durable seal so
/// recovery can restore the sealed state from its manifest and replay
/// only the suffix; TruncateBefore folds the reclaimed prefix into a
/// kBase frame via write-temp-then-rename.
///
/// Crucially, AppendCheckpoint never flushes the pending record buffer:
/// pending records are unacknowledged, and making them durable as a side
/// effect of a background seal would resurrect unacked writes after a
/// crash. A checkpoint may therefore claim more entries than the log
/// holds admits for; recovery validates each checkpoint by count
/// (durable_entries <= base_admitted + admits in the log) and falls back
/// to an older one — or a full replay — when the newest is uncovered.
///
/// Thread-safety: append/commit run on the owner's single admission
/// thread; AppendCheckpoint runs on the index's background strand. An
/// internal mutex serializes the file writes.
class Wal {
 public:
  struct Options {
    /// Crash-point seam for the kill-test harness: called with a point
    /// name ("commit.mid_frame", "commit.pre_sync", "commit.post_sync",
    /// "checkpoint.pre_write", "checkpoint.mid_frame",
    /// "checkpoint.post_sync", "truncate.pre_rename",
    /// "truncate.post_rename") at each reachable point. When set, frame
    /// writes are split in two so mid-frame points expose a torn tail.
    std::function<void(const char*)> test_hook;
  };

  /// Opens the log `name` inside `storage`, creating it fresh (header
  /// frame, synced) when absent or empty. An existing log is scanned:
  /// frames are CRC-validated, a torn tail is truncated away, and the
  /// base/batch/checkpoint state is retained in memory for Recover().
  /// Fails with kDataLoss on a corrupt prefix, NotSupported on a larger
  /// major version, InvalidArgument on a series-length mismatch.
  static Result<std::unique_ptr<Wal>> Open(storage::StorageManager* storage,
                                           const std::string& name,
                                           uint32_t series_length,
                                           Options options = {});

  ~Wal() = default;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffers one admitted entry (called by the index inside its admission
  /// critical section, so log order == admission order). No I/O.
  void AppendAdmit(uint64_t id, int64_t timestamp,
                   std::span<const float> values);
  /// Buffers one burned ordinal (entry rejected after its raw append).
  void AppendHole();
  /// Buffers one sharded local->global mapping; must immediately precede
  /// the admit/hole that consumes the ordinal.
  void AppendMap(uint64_t global_id);

  /// Group commit: frames every buffered record into one kBatch frame,
  /// writes it and fdatasyncs. After this returns OK the records survive
  /// any crash. No-op when nothing is buffered.
  Status Commit();

  /// Appends a checkpoint frame (alone — see class comment) + fdatasync.
  /// Called from the index's background strand after a completed seal.
  Status AppendCheckpoint(uint64_t durable_entries,
                          std::span<const uint8_t> manifest);

  /// Reclaims the log prefix covered by the newest count-valid
  /// checkpoint. Commits pending records, syncs `raw` (the log is the
  /// only other copy of the dropped payloads), then rewrites the log as
  /// [header, kBase, uncovered frames] via temp-file + atomic rename.
  Status TruncateBefore(core::RawSeriesStore* raw);

  /// Replays the scanned log into `index` (created empty by the caller,
  /// with this Wal already wired in — appends are suppressed during
  /// replay). Restores the newest valid checkpoint's manifest, skips the
  /// admits it covers, re-appends every payload to `raw` (holes
  /// zero-filled), and ingests the remainder through the normal path.
  /// Call once, right after Open() on an existing log; frees the scanned
  /// state when done.
  Status Recover(StreamingIndex* index, core::RawSeriesStore* raw,
                 WalRecoverOutcome* outcome);

  /// True while Recover drives the index: the index's internal
  /// AppendAdmit calls during replay are dropped (their records are
  /// already in the log).
  bool replaying() const { return replaying_.load(std::memory_order_relaxed); }

  /// Raw-store ordinals folded into the base by truncation: the count to
  /// open the raw store at (RawSeriesStore::OpenTruncated) before
  /// Recover() replays the rest.
  uint64_t base_ordinals() const { return base_ordinals_; }

  /// Bytes of valid log on disk (tests).
  uint64_t size_bytes() const;

  uint32_t series_length() const { return series_length_; }

  // ---- frame-level helpers, shared with the format/corruption tests.

  /// Encodes one frame (header + payload) with the current version.
  static std::vector<uint8_t> EncodeFrame(WalFrameType type,
                                          std::span<const uint8_t> payload);

  /// Decodes the longest valid frame prefix of `bytes`. Returns the byte
  /// length of that prefix; `*major_too_new` is set when decoding stopped
  /// at a frame with a larger major version (the frames before it are
  /// still returned).
  static size_t DecodeFrames(std::span<const uint8_t> bytes,
                             std::vector<WalFrame>* frames,
                             bool* major_too_new = nullptr);

 private:
  struct Checkpoint {
    uint64_t durable_entries = 0;
    std::vector<uint8_t> manifest;
  };

  Wal(storage::StorageManager* storage, std::string name,
      uint32_t series_length, Options options)
      : storage_(storage),
        name_(std::move(name)),
        series_length_(series_length),
        options_(std::move(options)) {}

  /// Parses the scanned frames into base/batch/checkpoint state.
  /// `valid_bytes` is where the torn tail (if any) starts.
  Status AdoptScan(std::vector<WalFrame> frames, uint64_t valid_bytes);

  /// Writes one already-encoded frame, split in two when the hook is set
  /// (`mid_point` names the between-halves crash point), and fdatasyncs.
  Status WriteFrameLocked(std::span<const uint8_t> frame,
                          const char* mid_point, const char* post_point);

  Status CommitLocked();

  /// The replay loop of Recover (replaying_ already set by the caller).
  Status ReplayInto(StreamingIndex* index, core::RawSeriesStore* raw,
                    uint64_t skip_admits, WalRecoverOutcome* outcome);

  void Hook(const char* point) {
    if (options_.test_hook) options_.test_hook(point);
  }

  storage::StorageManager* storage_;
  const std::string name_;
  const uint32_t series_length_;
  const Options options_;

  mutable std::mutex mu_;
  std::unique_ptr<storage::File> file_;  // guarded by mu_
  std::vector<uint8_t> pending_;         // guarded by mu_
  uint32_t pending_count_ = 0;           // guarded by mu_
  std::atomic<bool> replaying_{false};

  // Scanned state from Open() on an existing log; consumed by Recover().
  uint64_t base_ordinals_ = 0;
  uint64_t base_admitted_ = 0;
  int64_t base_watermark_ = std::numeric_limits<int64_t>::min();
  std::vector<uint64_t> base_map_;
  std::optional<Checkpoint> base_checkpoint_;
  std::vector<std::vector<uint8_t>> scanned_batches_;
  std::vector<Checkpoint> scanned_checkpoints_;
  uint64_t scanned_admits_ = 0;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_WAL_H_
