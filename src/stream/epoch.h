#ifndef COCONUT_STREAM_EPOCH_H_
#define COCONUT_STREAM_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace coconut {
namespace stream {
namespace epoch {

/// Process-global epoch-based reclamation for the lock-free read path.
///
/// Readers bracket every snapshot access in an EpochGuard; writers hand
/// superseded snapshots to Retire() instead of deleting them. An object
/// retired at epoch T is freed only once every active reader entered at
/// an epoch strictly greater than T — at which point each of them must
/// have loaded the replacement pointer the writer published *before*
/// retiring, so none can still hold the old one.
///
/// The design is the classic fixed-slot scheme (flock-style): a static
/// array of cache-line-padded reader slots, one claimed per thread on
/// first use and released at thread exit. Entering publishes the current
/// global epoch into the slot with a validate loop (store, re-read the
/// global, repeat until stable) so a slot can never linger below the
/// global epoch at publication time; exiting stores 0 (release) which
/// gives the reclaimer the happens-before edge from every reader access
/// to the eventual free. Guards nest: only the outermost enter/exit
/// touches the slot, inner guards inherit the outer (more conservative)
/// epoch.
///
/// Retire() appends {object, deleter, tag = current epoch} to a small
/// mutex-protected list, advances the global epoch, then opportunistically
/// frees every item whose tag is below the minimum epoch held by any
/// active slot. Deleters run after the list mutex is released (they may
/// close files or take other locks). Retires happen only at structural
/// edges (seal publish, merge install, manifest restore, drop), so the
/// list mutex is nowhere near any hot path.
///
/// Synchronize() is the full barrier: it advances the epoch, waits until
/// every slot is idle or has re-entered at the new epoch, and drains all
/// garbage retired before the call. DropIndex and index destructors use
/// it so teardown never races a straggling reader, and so shutdown leaves
/// nothing for ASan to flag.
class EpochManager {
 public:
  /// The process-wide instance every index shares.
  static EpochManager& Global();

  /// Defers `delete p` to epoch quiescence. Null is a no-op.
  template <typename T>
  void Retire(const T* p) {
    if (p == nullptr) return;
    RetireRaw(const_cast<void*>(static_cast<const void*>(p)),
              [](void* q) { delete static_cast<const T*>(q); });
  }

  /// Type-erased form: `del(p)` runs once p is provably unreachable.
  void RetireRaw(void* p, void (*del)(void*));

  /// Waits for every reader active at the time of the call to exit (or
  /// re-enter at a fresher epoch), then frees everything retired before
  /// the call. Must not be called while holding an EpochGuard.
  void Synchronize();

  /// Test hooks.
  uint64_t current_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  size_t pending_retired() const;

  ~EpochManager();

 private:
  friend class EpochGuard;

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  void Enter();
  void Exit();

  struct Item {
    void* p;
    void (*del)(void*);
    uint64_t tag;
  };

  /// Moves every item freeable at the current slot occupancy into *ready.
  void CollectLocked(std::vector<Item>* ready);

  /// Global epoch. Starts at 1 so slot value 0 can mean "idle".
  std::atomic<uint64_t> epoch_{1};
  mutable std::mutex garbage_mu_;
  std::vector<Item> garbage_;
};

/// RAII reader section against EpochManager::Global(). Cheap enough for
/// every query: two or three atomic ops on enter, one release store on
/// exit, no allocation, no locks.
class EpochGuard {
 public:
  EpochGuard() { EpochManager::Global().Enter(); }
  ~EpochGuard() { EpochManager::Global().Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

}  // namespace epoch
}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_EPOCH_H_
