#include "stream/epoch.h"

#include <algorithm>
#include <thread>

namespace coconut {
namespace stream {
namespace epoch {

namespace {

/// One reader slot per thread, padded so concurrent enters/exits never
/// share a cache line. 0 = idle; otherwise the epoch the thread entered
/// at. `claimed` hands slots out to threads; a thread keeps its slot for
/// its lifetime and the thread_local destructor returns it.
struct alignas(64) Slot {
  std::atomic<uint64_t> epoch{0};
  std::atomic<bool> claimed{false};
};

/// Static storage (no destructor) so late-exiting threads can always
/// release their slot, regardless of static destruction order.
constexpr size_t kMaxReaderSlots = 256;
Slot g_slots[kMaxReaderSlots];

Slot* ClaimSlot() {
  for (size_t i = 0; i < kMaxReaderSlots; ++i) {
    bool expected = false;
    if (g_slots[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      return &g_slots[i];
    }
  }
  // More than kMaxReaderSlots live threads reading concurrently would be
  // a deployment we never run (the container is single-core, and the
  // service caps worker threads far below this). Fail loudly rather
  // than corrupting reclamation.
  std::terminate();
}

struct ThreadState {
  Slot* slot = nullptr;
  int depth = 0;
  ~ThreadState() {
    if (slot != nullptr) {
      slot->epoch.store(0, std::memory_order_release);
      slot->claimed.store(false, std::memory_order_release);
    }
  }
};

thread_local ThreadState t_state;

}  // namespace

EpochManager& EpochManager::Global() {
  static EpochManager manager;
  return manager;
}

EpochManager::~EpochManager() {
  // Process shutdown: no readers can be active once static destructors
  // run, so free whatever Synchronize() was never asked to drain. Keeps
  // ASan's leak checker quiet without requiring every caller to drain.
  for (Item& item : garbage_) item.del(item.p);
  garbage_.clear();
}

void EpochManager::Enter() {
  ThreadState& t = t_state;
  if (t.depth++ > 0) return;  // Nested guard: keep the outer epoch.
  if (t.slot == nullptr) t.slot = ClaimSlot();
  // Publish-and-validate: after the seq_cst store, re-read the global
  // epoch and republish until stable. This guarantees that once a
  // reclaimer's scan observes the slot, its value was current at some
  // point after publication — a slot can pin an old epoch only by
  // having genuinely entered at it, never by a stale store landing
  // late. Either the reclaimer's scan sees our slot (and spares
  // anything we might reach), or our final epoch load came after its
  // advance, in which case the snapshot pointer we subsequently load is
  // the replacement the writer published before retiring.
  uint64_t e = epoch_.load(std::memory_order_seq_cst);
  while (true) {
    t.slot->epoch.store(e, std::memory_order_seq_cst);
    const uint64_t now = epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

void EpochManager::Exit() {
  ThreadState& t = t_state;
  if (--t.depth > 0) return;
  // Release: every read the guard protected happens-before a reclaimer
  // observing the slot idle, which happens-before the free.
  t.slot->epoch.store(0, std::memory_order_release);
}

void EpochManager::CollectLocked(std::vector<Item>* ready) {
  uint64_t min_active = UINT64_MAX;
  for (const Slot& slot : g_slots) {
    const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    if (e != 0) min_active = std::min(min_active, e);
  }
  auto keep = garbage_.begin();
  for (auto it = garbage_.begin(); it != garbage_.end(); ++it) {
    if (it->tag < min_active) {
      ready->push_back(*it);
    } else {
      *keep++ = *it;
    }
  }
  garbage_.erase(keep, garbage_.end());
}

void EpochManager::RetireRaw(void* p, void (*del)(void*)) {
  std::vector<Item> ready;
  {
    std::lock_guard<std::mutex> lock(garbage_mu_);
    garbage_.push_back(Item{p, del, epoch_.load(std::memory_order_relaxed)});
    // Advance so future readers provably entered after this retire; the
    // collect below then frees whatever older garbage has quiesced.
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    CollectLocked(&ready);
  }
  // Deleters outside the mutex: they close files and may take locks.
  for (Item& item : ready) item.del(item.p);
}

void EpochManager::Synchronize() {
  const uint64_t target = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Loop rather than single-pass: a reader mid-publish can transiently
  // expose an old epoch value (its validate loop will correct it), which
  // a one-shot collect could observe, leaving pre-call garbage pending.
  // The guarantee here is strict — return only once everything retired
  // before this call is freed — because DropIndex tears files down right
  // after and the shutdown leak check counts on it.
  while (true) {
    for (const Slot& slot : g_slots) {
      while (true) {
        const uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
        if (e == 0 || e >= target) break;
        std::this_thread::yield();
      }
    }
    std::vector<Item> ready;
    bool stale_remaining = false;
    {
      std::lock_guard<std::mutex> lock(garbage_mu_);
      CollectLocked(&ready);
      for (const Item& item : garbage_) {
        if (item.tag < target) {
          stale_remaining = true;
          break;
        }
      }
    }
    for (Item& item : ready) item.del(item.p);
    if (!stale_remaining) return;
    std::this_thread::yield();
  }
}

size_t EpochManager::pending_retired() const {
  std::lock_guard<std::mutex> lock(garbage_mu_);
  return garbage_.size();
}

}  // namespace epoch
}  // namespace stream
}  // namespace coconut
