#ifndef COCONUT_STREAM_PP_H_
#define COCONUT_STREAM_PP_H_

#include <memory>

#include "core/index.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {

/// Post-Processing (PP): one monolithic index; window queries examine the
/// timestamp of every encountered entry and discard those outside the
/// window (Section 3). Cheap to maintain, but queries over small windows
/// still pay for the whole structure — there is no partition skipping.
class PostProcessingIndex : public StreamingIndex {
 public:
  /// Wraps any static index (ADS+, CTree or CLSM, materialized or not).
  /// The inner index must already be Finalized if it requires it (CTree).
  explicit PostProcessingIndex(std::unique_ptr<core::DataSeriesIndex> inner)
      : inner_(std::move(inner)) {}

  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    return inner_->Insert(series_id, znorm_values, timestamp);
  }

  Status FlushAll() override { return inner_->Finalize(); }

  Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override {
    // The window rides inside options; every index family filters entry
    // timestamps during evaluation — which *is* post-processing.
    return inner_->ApproxSearch(query, options, counters);
  }

  Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override {
    return inner_->ExactSearch(query, options, counters);
  }

  uint64_t num_entries() const override { return inner_->num_entries(); }
  size_t num_partitions() const override { return 1; }
  uint64_t index_bytes() const override { return inner_->index_bytes(); }
  std::string describe() const override { return inner_->describe() + "-PP"; }

  core::DataSeriesIndex* inner() { return inner_.get(); }

 private:
  std::unique_ptr<core::DataSeriesIndex> inner_;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_PP_H_
