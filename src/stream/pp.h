#ifndef COCONUT_STREAM_PP_H_
#define COCONUT_STREAM_PP_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>

#include "core/index.h"
#include "stream/streaming_index.h"
#include "stream/wal.h"

namespace coconut {
namespace stream {

/// Post-Processing (PP): one monolithic index; window queries examine the
/// timestamp of every encountered entry and discard those outside the
/// window (Section 3). Cheap to maintain, but queries over small windows
/// still pay for the whole structure — there is no partition skipping.
class PostProcessingIndex : public StreamingIndex {
 public:
  /// Wraps any static index (ADS+, CTree or CLSM, materialized or not).
  /// The inner index must already be Finalized if it requires it (CTree).
  explicit PostProcessingIndex(
      std::unique_ptr<core::DataSeriesIndex> inner,
      TimestampPolicy policy = TimestampPolicy::kPermissive)
      : inner_(std::move(inner)), policy_(policy) {}

  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (policy_ == TimestampPolicy::kStrict &&
          timestamp < last_timestamp_) {
        return Status::InvalidArgument(
            "timestamp regression rejected by kStrict policy");
      }
      if (policy_ == TimestampPolicy::kClamp) {
        timestamp = std::max(timestamp, last_timestamp_);
      }
    }
    // Commit the watermark only after the entry is actually admitted — a
    // rejected insert (length mismatch, surfaced background error) must
    // not tighten what kStrict accepts next.
    COCONUT_RETURN_NOT_OK(inner_->Insert(series_id, znorm_values, timestamp));
    std::lock_guard<std::mutex> lock(mu_);
    last_timestamp_ = std::max(last_timestamp_, timestamp);
    return Status::OK();
  }

  Status FlushAll() override { return inner_->Finalize(); }

  Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override {
    // The window rides inside options; every index family filters entry
    // timestamps during evaluation — which *is* post-processing.
    return inner_->ApproxSearch(query, options, counters);
  }

  Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override {
    return inner_->ExactSearch(query, options, counters);
  }

  uint64_t num_entries() const override { return inner_->num_entries(); }
  size_t num_partitions() const override { return 1; }
  uint64_t index_bytes() const override { return inner_->index_bytes(); }
  std::string describe() const override { return inner_->describe() + "-PP"; }

  core::DataSeriesIndex* inner() { return inner_.get(); }

  /// The factory marks the facade lock-free-readable when the inner
  /// structure serves queries from epoch-published snapshots (async CLSM).
  /// ADS+/CTree inners stay single-caller: their reads walk live
  /// structures and share BufferPool pages.
  void set_concurrent_reads_safe(bool safe) { concurrent_reads_safe_ = safe; }
  bool ConcurrentReadsSafe() const override { return concurrent_reads_safe_; }

  /// Hook for wrappers whose inner index has richer concurrent stats than
  /// the default entries/partitions pair (the factory wires CLSM's
  /// race-free snapshot through here).
  using StatsProvider = std::function<StreamingStats()>;
  void set_stats_provider(StatsProvider provider) {
    stats_provider_ = std::move(provider);
  }

  StreamingStats SnapshotStats() const override {
    if (stats_provider_) return stats_provider_();
    return StreamingIndex::SnapshotStats();
  }

  /// All mutation flows through the inner index (including CLSM's
  /// background cascades), so its stamp is the authoritative one.
  uint64_t snapshot_version() const override {
    return inner_->snapshot_version();
  }

  /// Hook for durable wrappers: the factory wires the inner structure's
  /// own manifest restore (CLSM's run-set rebuild) through here; the
  /// facade adds nothing of its own to a checkpoint.
  using ManifestRestorer = std::function<Status(std::span<const uint8_t>)>;
  void set_manifest_restorer(ManifestRestorer restorer) {
    manifest_restorer_ = std::move(restorer);
  }

  /// The WAL the inner structure appends to (not owned); the facade only
  /// needs it for the CommitDurable ack gate.
  void set_wal(Wal* wal) { wal_ = wal; }

  Status RestoreFromManifest(std::span<const uint8_t> manifest) override {
    if (manifest_restorer_) return manifest_restorer_(manifest);
    return StreamingIndex::RestoreFromManifest(manifest);
  }

  void RestoreWatermark(int64_t timestamp) override {
    std::lock_guard<std::mutex> lock(mu_);
    last_timestamp_ = std::max(last_timestamp_, timestamp);
  }

  Status CommitDurable() override {
    if (wal_ == nullptr) return Status::OK();
    return wal_->Commit();
  }

 private:
  std::unique_ptr<core::DataSeriesIndex> inner_;
  StatsProvider stats_provider_;
  ManifestRestorer manifest_restorer_;
  Wal* wal_ = nullptr;
  bool concurrent_reads_safe_ = false;
  TimestampPolicy policy_;
  /// Guards the policy state only; concurrency of the inner index itself
  /// is the inner index's business (CLSM is concurrent, ADS+/CTree are
  /// single-caller).
  std::mutex mu_;
  int64_t last_timestamp_ = INT64_MIN;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_PP_H_
