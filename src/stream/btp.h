#ifndef COCONUT_STREAM_BTP_H_
#define COCONUT_STREAM_BTP_H_

#include <memory>
#include <string>

#include "stream/tp.h"

namespace coconut {
namespace stream {

/// Bounded Temporal Partitioning (BTP, Section 3): temporal partitioning
/// whose partition count stays logarithmic. Every buffer flush seals a
/// size-class-0 partition; whenever `merge_k` partitions share a size
/// class they are sort-merged (sequentially — sortable summarizations at
/// work) into one partition of the next class. Newer data therefore lives
/// in small partitions, older data migrates into large contiguous ones:
/// small windows skip the big partitions like TP, large windows prune
/// within few big sorted runs like PP, and approximate queries touch at
/// most O(log n) partitions.
///
/// Only available over sorted partitions (the whole point); the paper's
/// variant matrix accordingly lists BTP for CLSM/Coconut only.
///
/// With a background pool, the seal AND its merge cascade run as one
/// deferred task on the index's strand, so the sealed partition sequence —
/// and therefore every merge decision — is identical to the synchronous
/// build regardless of pool size (the merge-determinism suite pins this).
/// Queries keep reading the pre-merge snapshot until the swap publishes;
/// input files are unlinked only after publication (open fds keep
/// in-flight scans valid).
class BoundedTemporalPartitioningIndex : public TemporalPartitioningIndex {
 public:
  struct BtpOptions {
    series::SaxConfig sax;
    bool materialized = false;
    size_t buffer_entries = 4096;
    /// Partitions of equal size class that trigger a merge (>= 2).
    int merge_k = 2;
    /// See TemporalPartitioningIndex::Options.
    TimestampPolicy timestamp_policy = TimestampPolicy::kPermissive;
    ThreadPool* background = nullptr;
    size_t max_inflight_seals = 0;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    std::function<Status()> seal_test_hook{};
    /// See TemporalPartitioningIndex::Options::wal.
    Wal* wal = nullptr;
  };

  static Result<std::unique_ptr<BoundedTemporalPartitioningIndex>> Create(
      storage::StorageManager* storage, const std::string& prefix,
      const BtpOptions& options, storage::BufferPool* pool,
      core::RawSeriesStore* raw);

  /// Drain here, not just in the base: a background seal calls the
  /// virtual AfterSeal(), which must not race the vptr rewrite during
  /// destruction (Drain is reusable; the base draining again is a no-op).
  ~BoundedTemporalPartitioningIndex() override { DrainBackground(); }

  std::string describe() const override {
    return options_.materialized ? "CLSMFull-BTP" : "CLSM-BTP";
  }

  uint64_t merges_performed() const {
    return SnapshotStats().merges_completed;
  }

  /// Largest size class currently present (0 when no partitions).
  int max_size_class() const;

 protected:
  /// Consolidates equal-sized partitions until no class has merge_k left.
  /// Runs on the strand (async) or inline (sync); serialized with seals.
  Status AfterSeal() override;

  /// The merge-output name sequence rides along in checkpoint manifests so
  /// a recovered index never reuses a name an orphaned file may hold.
  uint64_t ManifestAuxCounter() const override { return next_merge_id_; }
  void RestoreManifestAuxCounter(uint64_t value) override {
    next_merge_id_ = value;
  }

 private:
  BoundedTemporalPartitioningIndex(storage::StorageManager* storage,
                                   std::string prefix, const Options& options,
                                   storage::BufferPool* pool,
                                   core::RawSeriesStore* raw, int merge_k)
      : TemporalPartitioningIndex(storage, std::move(prefix), options, pool,
                                  raw),
        merge_k_(merge_k) {}

  int merge_k_;
  /// Only touched by the (serialized) seal/merge path.
  uint64_t next_merge_id_ = 0;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_BTP_H_
