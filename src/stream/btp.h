#ifndef COCONUT_STREAM_BTP_H_
#define COCONUT_STREAM_BTP_H_

#include <memory>
#include <string>

#include "stream/tp.h"

namespace coconut {
namespace stream {

/// Bounded Temporal Partitioning (BTP, Section 3): temporal partitioning
/// whose partition count stays logarithmic. Every buffer flush seals a
/// size-class-0 partition; whenever `merge_k` partitions share a size
/// class they are sort-merged (sequentially — sortable summarizations at
/// work) into one partition of the next class. Newer data therefore lives
/// in small partitions, older data migrates into large contiguous ones:
/// small windows skip the big partitions like TP, large windows prune
/// within few big sorted runs like PP, and approximate queries touch at
/// most O(log n) partitions.
///
/// Only available over sorted partitions (the whole point); the paper's
/// variant matrix accordingly lists BTP for CLSM/Coconut only.
class BoundedTemporalPartitioningIndex : public TemporalPartitioningIndex {
 public:
  struct BtpOptions {
    series::SaxConfig sax;
    bool materialized = false;
    size_t buffer_entries = 4096;
    /// Partitions of equal size class that trigger a merge (>= 2).
    int merge_k = 2;
  };

  static Result<std::unique_ptr<BoundedTemporalPartitioningIndex>> Create(
      storage::StorageManager* storage, const std::string& prefix,
      const BtpOptions& options, storage::BufferPool* pool,
      core::RawSeriesStore* raw);

  std::string describe() const override {
    return options_.materialized ? "CLSMFull-BTP" : "CLSM-BTP";
  }

  uint64_t merges_performed() const { return merges_; }

  /// Largest size class currently present (0 when no partitions).
  int max_size_class() const;

 protected:
  /// Consolidates equal-sized partitions until no class has merge_k left.
  Status AfterSeal() override;

 private:
  BoundedTemporalPartitioningIndex(storage::StorageManager* storage,
                                   std::string prefix, const Options& options,
                                   storage::BufferPool* pool,
                                   core::RawSeriesStore* raw, int merge_k)
      : TemporalPartitioningIndex(storage, std::move(prefix), options, pool,
                                  raw),
        merge_k_(merge_k) {}

  int merge_k_;
  uint64_t merges_ = 0;
  uint64_t next_merge_id_ = 0;
};

}  // namespace stream
}  // namespace coconut

#endif  // COCONUT_STREAM_BTP_H_
