#include "extsort/external_sorter.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <queue>

#include "storage/page.h"

namespace coconut {
namespace extsort {

namespace {

using storage::kPageSize;

/// Streams a sorted in-memory buffer.
class VectorStream : public SortedStream {
 public:
  VectorStream(std::vector<uint8_t> data, size_t record_size)
      : data_(std::move(data)), record_size_(record_size) {}

  Result<bool> Next(uint8_t* out) override {
    if (pos_ >= data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, record_size_);
    pos_ += record_size_;
    return true;
  }

  size_t record_size() const override { return record_size_; }

 private:
  std::vector<uint8_t> data_;
  size_t record_size_;
  size_t pos_ = 0;
};

/// Buffered sequential reader over a spilled run file, or over a byte
/// slice of one (a key range of the partitioned merge). `buffer_bytes` is
/// the read-ahead granularity: larger buffers amortize the seek paid when a
/// k-way merge switches between run files, which is why merge fan-in is
/// bounded by the memory budget.
class RunFileStream : public SortedStream {
 public:
  RunFileStream(std::unique_ptr<storage::File> file, size_t record_size,
                size_t buffer_bytes)
      : RunFileStream(std::move(file), record_size, buffer_bytes, 0,
                      std::numeric_limits<uint64_t>::max()) {}

  /// Streams records in byte range [begin_offset, end_offset) of the file.
  RunFileStream(std::unique_ptr<storage::File> file, size_t record_size,
                size_t buffer_bytes, uint64_t begin_offset,
                uint64_t end_offset)
      : file_(std::move(file)),
        record_size_(record_size),
        file_offset_(begin_offset),
        end_offset_(std::min(end_offset, file_->size_bytes())) {
    chunk_records_ = std::max<size_t>(
        1, std::max(kPageSize, buffer_bytes) / record_size_);
    chunk_.resize(chunk_records_ * record_size_);
  }

  Result<bool> Next(uint8_t* out) override {
    if (chunk_pos_ >= chunk_filled_) {
      COCONUT_RETURN_NOT_OK(Refill());
      if (chunk_filled_ == 0) return false;
    }
    std::memcpy(out, chunk_.data() + chunk_pos_, record_size_);
    chunk_pos_ += record_size_;
    return true;
  }

  size_t record_size() const override { return record_size_; }

 private:
  Status Refill() {
    chunk_pos_ = 0;
    chunk_filled_ = 0;
    if (end_offset_ <= file_offset_) return Status::OK();
    const uint64_t remaining = end_offset_ - file_offset_;
    if (remaining == 0) return Status::OK();
    const size_t to_read =
        static_cast<size_t>(std::min<uint64_t>(remaining, chunk_.size()));
    COCONUT_RETURN_NOT_OK(file_->ReadAt(file_offset_, chunk_.data(), to_read));
    file_offset_ += to_read;
    chunk_filled_ = to_read;
    return Status::OK();
  }

  std::unique_ptr<storage::File> file_;
  size_t record_size_;
  size_t chunk_records_;
  std::vector<uint8_t> chunk_;
  size_t chunk_pos_ = 0;
  size_t chunk_filled_ = 0;
  uint64_t file_offset_ = 0;
  uint64_t end_offset_;
};

/// Streams child streams back to back. The partitioned merge produces one
/// sorted file per key range; ranges are disjoint and ordered, so their
/// concatenation is globally sorted.
class ConcatStream : public SortedStream {
 public:
  ConcatStream(std::vector<std::unique_ptr<SortedStream>> children,
               size_t record_size)
      : children_(std::move(children)), record_size_(record_size) {}

  Result<bool> Next(uint8_t* out) override {
    while (current_ < children_.size()) {
      COCONUT_ASSIGN_OR_RETURN(bool has, children_[current_]->Next(out));
      if (has) return true;
      ++current_;
    }
    return false;
  }

  size_t record_size() const override { return record_size_; }

 private:
  std::vector<std::unique_ptr<SortedStream>> children_;
  size_t record_size_;
  size_t current_ = 0;
};

/// K-way merge over child streams (binary heap on the lookahead record).
/// Equal records pop from the lowest-indexed child, so when children are
/// ordered by run sequence the merge is stable — the property that makes
/// sorter output byte-identical across thread counts and memory budgets.
class MergeStream : public SortedStream {
 public:
  MergeStream(std::vector<SortedStream*> children, size_t record_size,
              std::function<bool(const uint8_t*, const uint8_t*)> less)
      : children_(std::move(children)),
        record_size_(record_size),
        less_(std::move(less)) {
    lookahead_.resize(children_.size() * record_size_);
  }

  /// Loads the first record of every child. Must be called once before Next.
  Status Init() {
    for (size_t i = 0; i < children_.size(); ++i) {
      COCONUT_ASSIGN_OR_RETURN(bool has,
                               children_[i]->Next(LookaheadFor(i)));
      if (has) heap_.push_back(i);
    }
    auto cmp = [this](size_t a, size_t b) { return HeapAfter(a, b); };
    std::make_heap(heap_.begin(), heap_.end(), cmp);
    return Status::OK();
  }

  Result<bool> Next(uint8_t* out) override {
    if (heap_.empty()) return false;
    auto cmp = [this](size_t a, size_t b) { return HeapAfter(a, b); };
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const size_t idx = heap_.back();
    std::memcpy(out, LookaheadFor(idx), record_size_);
    COCONUT_ASSIGN_OR_RETURN(bool has, children_[idx]->Next(LookaheadFor(idx)));
    if (has) {
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    } else {
      heap_.pop_back();
    }
    return true;
  }

  size_t record_size() const override { return record_size_; }

 private:
  uint8_t* LookaheadFor(size_t i) { return lookahead_.data() + i * record_size_; }

  /// std::push_heap builds a max-heap; "a sorts after b" pops the smallest
  /// record, ties broken toward the lower child index (stability).
  bool HeapAfter(size_t a, size_t b) {
    if (less_(LookaheadFor(b), LookaheadFor(a))) return true;
    if (less_(LookaheadFor(a), LookaheadFor(b))) return false;
    return b < a;
  }

  std::vector<SortedStream*> children_;
  size_t record_size_;
  std::function<bool(const uint8_t*, const uint8_t*)> less_;
  std::vector<uint8_t> lookahead_;
  std::vector<size_t> heap_;
};

/// Owns child streams and the merge over them.
class OwningMergeStream : public SortedStream {
 public:
  OwningMergeStream(std::vector<std::unique_ptr<SortedStream>> owned,
                    size_t record_size,
                    std::function<bool(const uint8_t*, const uint8_t*)> less)
      : owned_(std::move(owned)) {
    std::vector<SortedStream*> raw;
    raw.reserve(owned_.size());
    for (auto& s : owned_) raw.push_back(s.get());
    merge_ = std::make_unique<MergeStream>(std::move(raw), record_size,
                                           std::move(less));
  }

  Status Init() { return merge_->Init(); }

  Result<bool> Next(uint8_t* out) override { return merge_->Next(out); }
  size_t record_size() const override { return merge_->record_size(); }

 private:
  std::vector<std::unique_ptr<SortedStream>> owned_;
  std::unique_ptr<MergeStream> merge_;
};

/// K-way-merges already-opened sorted streams (ordered by run sequence for
/// stability) into a fresh file, page-buffered sequential appends. The one
/// write path shared by group merges and range merges.
Status MergeStreamsToFile(
    storage::StorageManager* storage,
    std::vector<std::unique_ptr<SortedStream>> streams, size_t record_size,
    const std::function<bool(const uint8_t*, const uint8_t*)>& less,
    const std::string& output_name) {
  OwningMergeStream merge(std::move(streams), record_size, less);
  COCONUT_RETURN_NOT_OK(merge.Init());
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> out_file,
                           storage->CreateFile(output_name));
  std::vector<uint8_t> record(record_size);
  std::vector<uint8_t> out;
  out.reserve(kPageSize + record_size);
  while (true) {
    COCONUT_ASSIGN_OR_RETURN(bool has, merge.Next(record.data()));
    if (!has) break;
    out.insert(out.end(), record.begin(), record.end());
    if (out.size() >= kPageSize) {
      COCONUT_RETURN_NOT_OK(out_file->Append(out.data(), out.size()));
      out.clear();
    }
  }
  if (!out.empty()) {
    COCONUT_RETURN_NOT_OK(out_file->Append(out.data(), out.size()));
  }
  return Status::OK();
}

}  // namespace

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)) {
  if (parallel()) {
    // One producer chunk plus up to `threads` in-flight chunks share the
    // budget, so parallelism never exceeds the configured memory.
    max_buffered_records_ = std::max<size_t>(
        1, options_.memory_budget_bytes /
               ((options_.threads + 1) * options_.record_size));
  } else {
    max_buffered_records_ = std::max<size_t>(
        1, options_.memory_budget_bytes / options_.record_size);
  }
  buffer_.reserve(std::min<size_t>(max_buffered_records_, 4096) *
                  options_.record_size);
}

ExternalSorter::~ExternalSorter() {
  StopWorkers();
  // Best-effort cleanup of any leftover run files.
  for (const auto& [seq, name] : runs_by_seq_) {
    (void)seq;
    (void)options_.storage->RemoveFile(name);
  }
  for (const auto& name : run_names_) {
    (void)options_.storage->RemoveFile(name);
  }
}

Result<std::unique_ptr<ExternalSorter>> ExternalSorter::Create(
    Options options) {
  if (options.record_size == 0) {
    return Status::InvalidArgument("record_size must be > 0");
  }
  if (options.storage == nullptr) {
    return Status::InvalidArgument("storage manager is required");
  }
  if (!options.less) {
    return Status::InvalidArgument("comparator is required");
  }
  return std::unique_ptr<ExternalSorter>(
      new ExternalSorter(std::move(options)));
}

Status ExternalSorter::Add(const void* record) {
  if (finished_) return Status::Internal("Add after Finish");
  if (buffered_records_ >= max_buffered_records_) {
    if (parallel()) {
      COCONUT_RETURN_NOT_OK(EnqueueChunk());
    } else {
      COCONUT_RETURN_NOT_OK(SpillRun());
    }
  }
  const auto* bytes = static_cast<const uint8_t*>(record);
  buffer_.insert(buffer_.end(), bytes, bytes + options_.record_size);
  ++buffered_records_;
  ++stats_.records;
  return Status::OK();
}

namespace {

/// Stable-sorts `num_records` records in `data` and writes them to a fresh
/// run file in page-sized batches (sequential I/O).
Status WriteSortedRun(storage::StorageManager* storage,
                      const std::string& name, const uint8_t* data,
                      size_t num_records, size_t record_size,
                      const std::function<bool(const uint8_t*,
                                               const uint8_t*)>& less) {
  std::vector<const uint8_t*> ptrs(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    ptrs[i] = data + i * record_size;
  }
  // Stable: equal records keep input order, for deterministic output.
  std::stable_sort(ptrs.begin(), ptrs.end(), less);

  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                           storage->CreateFile(name));
  std::vector<uint8_t> out;
  out.reserve(kPageSize + record_size);
  for (const uint8_t* p : ptrs) {
    out.insert(out.end(), p, p + record_size);
    if (out.size() >= kPageSize) {
      COCONUT_RETURN_NOT_OK(file->Append(out.data(), out.size()));
      out.clear();
    }
  }
  if (!out.empty()) {
    COCONUT_RETURN_NOT_OK(file->Append(out.data(), out.size()));
  }
  return Status::OK();
}

}  // namespace

Status ExternalSorter::SpillRun() {
  if (buffered_records_ == 0) return Status::OK();
  const std::string name =
      options_.temp_prefix + ".run" + std::to_string(next_run_id_++);
  if (Status st = WriteSortedRun(options_.storage, name, buffer_.data(),
                                 buffered_records_, options_.record_size,
                                 options_.less);
      !st.ok()) {
    (void)options_.storage->RemoveFile(name);  // Drop any partial file.
    return st;
  }
  run_names_.push_back(name);
  {
    // Stats are always mutated under mu_ so totals stay exact when run
    // generation or merging is threaded.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs_spilled;
  }
  buffer_.clear();
  buffered_records_ = 0;
  return Status::OK();
}

Status ExternalSorter::SortAndSpillChunk(uint64_t seq,
                                         const std::vector<uint8_t>& data,
                                         size_t num_records) {
  const std::string name =
      options_.temp_prefix + ".run" + std::to_string(seq);
  if (Status st = WriteSortedRun(options_.storage, name, data.data(),
                                 num_records, options_.record_size,
                                 options_.less);
      !st.ok()) {
    (void)options_.storage->RemoveFile(name);  // Drop any partial file.
    return st;
  }
  std::lock_guard<std::mutex> lock(mu_);
  runs_by_seq_[seq] = name;
  ++stats_.runs_spilled;
  return Status::OK();
}

Status ExternalSorter::EnqueueChunk() {
  if (buffered_records_ == 0) return Status::OK();
  // Lazy spawn: inputs that fit in one chunk never pay for threads, and
  // threads_used stays honest — it counts workers that generated runs.
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
    stats_.threads_used = options_.threads;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] {
      return chunks_in_flight_ < options_.threads || !worker_error_.ok();
    });
    if (!worker_error_.ok()) return worker_error_;
    ++chunks_in_flight_;
  }
  // shared_ptr because std::function requires a copyable closure.
  auto data = std::make_shared<std::vector<uint8_t>>(std::move(buffer_));
  const uint64_t seq = next_chunk_seq_++;
  const size_t num_records = buffered_records_;
  pool_->Submit([this, seq, data, num_records] {
    Status st = SortAndSpillChunk(seq, *data, num_records);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!st.ok() && worker_error_.ok()) worker_error_ = st;
      --chunks_in_flight_;
    }
    space_cv_.notify_all();
  });
  buffer_ = std::vector<uint8_t>();
  buffer_.reserve(std::min<size_t>(max_buffered_records_, 4096) *
                  options_.record_size);
  buffered_records_ = 0;
  return Status::OK();
}

void ExternalSorter::StopWorkers() {
  if (pool_ == nullptr) return;
  pool_->Wait();  // Outstanding chunks finish spilling.
  pool_.reset();  // Joins the workers.
}

Result<std::string> ExternalSorter::MergeRuns(
    const std::vector<std::string>& inputs, const std::string& output_name,
    size_t concurrency) {
  // Concurrent group merges share the budget, so each one gets 1/Nth —
  // parallelism must not multiply resident memory.
  const size_t merge_buffer = std::max<size_t>(
      kPageSize, options_.memory_budget_bytes /
                     (std::max<size_t>(1, concurrency) * (inputs.size() + 1)));
  std::vector<std::unique_ptr<SortedStream>> streams;
  streams.reserve(inputs.size());
  for (const auto& name : inputs) {
    COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                             options_.storage->OpenFile(name));
    streams.push_back(std::make_unique<RunFileStream>(
        std::move(file), options_.record_size, merge_buffer));
  }
  COCONUT_RETURN_NOT_OK(MergeStreamsToFile(options_.storage,
                                           std::move(streams),
                                           options_.record_size,
                                           options_.less, output_name));
  // Inputs merged; delete them.
  for (const auto& name : inputs) {
    COCONUT_RETURN_NOT_OK(options_.storage->RemoveFile(name));
  }
  return output_name;
}

size_t ExternalSorter::MergeThreadCount() const {
  const size_t t = options_.merge_threads != 0 ? options_.merge_threads
                                               : options_.threads;
  return std::max<size_t>(1, t);
}

Result<std::vector<std::string>> ExternalSorter::MergePassGroups(
    const std::vector<std::string>& pending, size_t fan_in,
    ThreadPool* pool) {
  // Groups, their inputs and their output names are all fixed up front, so
  // the pass produces the same files in the same order however (and on
  // however many threads) the group merges execute.
  struct Group {
    std::vector<std::string> inputs;
    std::string output;
  };
  std::vector<Group> groups;
  std::vector<std::string> next;
  for (size_t i = 0; i < pending.size(); i += fan_in) {
    const size_t end = std::min(pending.size(), i + fan_in);
    if (end - i == 1) {
      next.push_back(pending[i]);
      continue;
    }
    Group g;
    g.inputs.assign(pending.begin() + i, pending.begin() + end);
    g.output = options_.temp_prefix + ".merge" + std::to_string(next_run_id_++);
    next.push_back(g.output);
    groups.push_back(std::move(g));
  }

  // The per-stream buffer floor is one page, so N concurrent group merges
  // need N * (fan_in + 1) pages; cap concurrency to what the budget truly
  // covers (under extreme pressure this degrades to the serial pass).
  const size_t budget_slots = std::max<size_t>(
      1, options_.memory_budget_bytes / ((fan_in + 1) * kPageSize));
  const size_t concurrency = std::min(
      {MergeThreadCount(), groups.size(), budget_slots});

  if (pool == nullptr || groups.size() <= 1 || concurrency <= 1) {
    for (const auto& g : groups) {
      if (Result<std::string> r = MergeRuns(g.inputs, g.output); !r.ok()) {
        for (const Group& gg : groups) {
          (void)options_.storage->RemoveFile(gg.output);
        }
        return r.status();
      }
    }
    return next;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.merge_threads_used =
        std::max<uint64_t>(stats_.merge_threads_used, concurrency);
  }
  std::vector<Status> statuses(groups.size());
  // Waves of `concurrency` groups keep resident buffers inside the budget
  // (the pool may have more threads than the budget can feed).
  for (size_t wave = 0; wave < groups.size(); wave += concurrency) {
    const size_t wave_end = std::min(groups.size(), wave + concurrency);
    for (size_t gi = wave; gi < wave_end; ++gi) {
      const Group* group = &groups[gi];
      Status* slot = &statuses[gi];
      pool->Submit([this, group, slot, concurrency] {
        Result<std::string> r = MergeRuns(group->inputs, group->output,
                                          concurrency);
        *slot = r.status();
      });
    }
    pool->Wait();
  }
  for (const Status& st : statuses) {
    if (!st.ok()) {
      // Don't leak .merge outputs (complete or partial): `next` is being
      // discarded, so nothing else tracks them.
      for (const Group& g : groups) {
        (void)options_.storage->RemoveFile(g.output);
      }
      return st;
    }
  }
  return next;
}

namespace {

/// First record index in the sorted run `file` that is not less than
/// `splitter` (lower bound), by binary search over ReadAt.
Result<uint64_t> LowerBoundRecord(
    storage::File* file, size_t record_size,
    const std::function<bool(const uint8_t*, const uint8_t*)>& less,
    const uint8_t* splitter) {
  uint64_t lo = 0;
  uint64_t hi = file->size_bytes() / record_size;
  std::vector<uint8_t> rec(record_size);
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    COCONUT_RETURN_NOT_OK(
        file->ReadAt(mid * record_size, rec.data(), record_size));
    if (less(rec.data(), splitter)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<std::vector<std::vector<uint8_t>>> ExternalSorter::PickSplitters(
    size_t num_ranges) {
  // Deterministic sampling: fixed per-run offsets, so splitters — and with
  // them the range files — depend only on the runs, never on timing.
  constexpr size_t kSamplesPerRun = 32;
  const size_t record_size = options_.record_size;
  std::vector<std::vector<uint8_t>> samples;
  for (const auto& name : run_names_) {
    COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                             options_.storage->OpenFile(name));
    const uint64_t n = file->size_bytes() / record_size;
    const uint64_t s = std::min<uint64_t>(n, kSamplesPerRun);
    for (uint64_t j = 0; j < s; ++j) {
      const uint64_t idx = j * n / s;
      std::vector<uint8_t> rec(record_size);
      COCONUT_RETURN_NOT_OK(
          file->ReadAt(idx * record_size, rec.data(), record_size));
      samples.push_back(std::move(rec));
    }
  }
  std::stable_sort(samples.begin(), samples.end(),
                   [this](const std::vector<uint8_t>& a,
                          const std::vector<uint8_t>& b) {
                     return options_.less(a.data(), b.data());
                   });
  std::vector<std::vector<uint8_t>> splitters;
  for (size_t i = 1; i < num_ranges && !samples.empty(); ++i) {
    const std::vector<uint8_t>& candidate =
        samples[i * samples.size() / num_ranges];
    // Keep splitters strictly ascending and strictly above the smallest
    // sample: an equal splitter would carve an empty range, and a fully
    // duplicated key space should fall back to the serial merge.
    const uint8_t* prev = splitters.empty() ? samples.front().data()
                                            : splitters.back().data();
    if (!options_.less(prev, candidate.data())) continue;
    splitters.push_back(candidate);
  }
  return splitters;
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::PartitionedFinalMerge(
    ThreadPool* pool, size_t num_ranges) {
  // The per-stream buffer floor is one page, so each concurrent range
  // merge pins (runs + 1) pages; budget_slots is how many the budget can
  // feed at once. Fewer than two and partitioning buys nothing over the
  // streaming serial merge — decided before sampling, so declining costs
  // no I/O.
  const size_t budget_slots = std::max<size_t>(
      1, options_.memory_budget_bytes /
             ((run_names_.size() + 1) * kPageSize));
  if (budget_slots < 2) {
    return std::unique_ptr<SortedStream>(nullptr);
  }

  COCONUT_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> splitters,
                           PickSplitters(num_ranges));
  if (splitters.empty()) {
    // One key class dominates the sample; a single streaming merge is both
    // simpler and cheaper. nullptr tells Finish to take the serial path.
    return std::unique_ptr<SortedStream>(nullptr);
  }
  const size_t ranges = splitters.size() + 1;
  const size_t record_size = options_.record_size;

  // Per run: byte offsets of every range boundary. Lower-bound semantics
  // put each tie class entirely into one range, which is what makes the
  // concatenation byte-identical to the serial stable merge.
  std::vector<std::vector<uint64_t>> boundaries(run_names_.size());
  for (size_t r = 0; r < run_names_.size(); ++r) {
    COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                             options_.storage->OpenFile(run_names_[r]));
    boundaries[r].resize(ranges + 1);
    boundaries[r][0] = 0;
    for (size_t i = 0; i < splitters.size(); ++i) {
      COCONUT_ASSIGN_OR_RETURN(
          uint64_t idx, LowerBoundRecord(file.get(), record_size,
                                         options_.less, splitters[i].data()));
      boundaries[r][i + 1] = idx * record_size;
    }
    boundaries[r][ranges] = file->size_bytes();
  }

  // Budget: concurrent range merges each hold one buffer per run slice
  // plus an output buffer; concurrency is capped by budget_slots (the
  // one-page-floor bound computed above) and merges run in waves of that
  // size.
  const size_t concurrent =
      std::min({MergeThreadCount(), ranges, budget_slots});
  const size_t merge_buffer = std::max<size_t>(
      kPageSize, options_.memory_budget_bytes /
                     (concurrent * (run_names_.size() + 1)));

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.merge_threads_used =
        std::max<uint64_t>(stats_.merge_threads_used, concurrent);
  }
  std::vector<std::string> range_names(ranges);
  for (size_t i = 0; i < ranges; ++i) {
    range_names[i] = options_.temp_prefix + ".range" + std::to_string(i);
  }
  std::vector<Status> statuses(ranges);
  auto submit_range = [&](size_t i) {
    const size_t range = i;
    const std::string* out_name = &range_names[i];
    Status* slot = &statuses[i];
    const auto* bounds = &boundaries;
    pool->Submit([this, range, out_name, slot, bounds, merge_buffer,
                  record_size] {
      *slot = [&]() -> Status {
        // Children ordered by run sequence — the tie-break order the
        // stable merge relies on. Empty slices are skipped; that cannot
        // reorder the survivors.
        std::vector<std::unique_ptr<SortedStream>> streams;
        for (size_t r = 0; r < run_names_.size(); ++r) {
          const uint64_t begin = (*bounds)[r][range];
          const uint64_t end = (*bounds)[r][range + 1];
          if (begin >= end) continue;
          COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                                   options_.storage->OpenFile(run_names_[r]));
          streams.push_back(std::make_unique<RunFileStream>(
              std::move(file), record_size, merge_buffer, begin, end));
        }
        return MergeStreamsToFile(options_.storage, std::move(streams),
                                  record_size, options_.less, *out_name);
      }();
    });
  };
  for (size_t wave = 0; wave < ranges; wave += concurrent) {
    const size_t wave_end = std::min(ranges, wave + concurrent);
    for (size_t i = wave; i < wave_end; ++i) submit_range(i);
    pool->Wait();
  }
  for (const Status& st : statuses) {
    if (!st.ok()) {
      // Don't leak .range files (complete or partial); the runs are still
      // tracked by run_names_ for destructor cleanup.
      for (const auto& name : range_names) {
        (void)options_.storage->RemoveFile(name);
      }
      return st;
    }
  }

  // Runs are fully partitioned into range files; drop them and stream the
  // ranges back to back.
  for (const auto& name : run_names_) {
    COCONUT_RETURN_NOT_OK(options_.storage->RemoveFile(name));
  }
  run_names_ = range_names;  // Destructor cleanup now tracks range files.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.merge_passes;
    stats_.merge_ranges = ranges;
  }

  const size_t concat_buffer = std::max<size_t>(
      kPageSize, options_.memory_budget_bytes / (ranges + 1));
  std::vector<std::unique_ptr<SortedStream>> outputs;
  outputs.reserve(ranges);
  for (const auto& name : range_names) {
    COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                             options_.storage->OpenFile(name));
    outputs.push_back(std::make_unique<RunFileStream>(
        std::move(file), record_size, concat_buffer));
  }
  return std::unique_ptr<SortedStream>(
      std::make_unique<ConcatStream>(std::move(outputs), record_size));
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::Finish() {
  if (finished_) return Status::Internal("Finish called twice");
  finished_ = true;

  if (parallel()) {
    // Hand the tail to the workers (unless nothing was ever enqueued and
    // the whole input fits in one chunk — then sort it in memory below),
    // then drain and join.
    if (next_chunk_seq_ > 0 && buffered_records_ > 0) {
      COCONUT_RETURN_NOT_OK(EnqueueChunk());
    }
    StopWorkers();
    {
      std::lock_guard<std::mutex> lock(mu_);
      COCONUT_RETURN_NOT_OK(worker_error_);
    }
    // Merge order must follow chunk (input) order for stable output.
    for (auto& [seq, name] : runs_by_seq_) {
      (void)seq;
      run_names_.push_back(std::move(name));
    }
    runs_by_seq_.clear();
  }

  // Everything fits: a single in-memory sorted stream, zero I/O.
  if (run_names_.empty()) {
    std::vector<const uint8_t*> ptrs(buffered_records_);
    for (size_t i = 0; i < buffered_records_; ++i) {
      ptrs[i] = buffer_.data() + i * options_.record_size;
    }
    std::stable_sort(ptrs.begin(), ptrs.end(), options_.less);
    std::vector<uint8_t> sorted;
    sorted.reserve(buffer_.size());
    for (const uint8_t* p : ptrs) {
      sorted.insert(sorted.end(), p, p + options_.record_size);
    }
    buffer_.clear();
    buffered_records_ = 0;
    stats_.in_memory = true;
    return std::unique_ptr<SortedStream>(
        std::make_unique<VectorStream>(std::move(sorted), options_.record_size));
  }

  // Spill the tail so every record is in some run.
  COCONUT_RETURN_NOT_OK(SpillRun());

  // Bound the merge fan-in by the memory budget: one page per input run
  // plus one output page.
  const size_t fan_in = std::max<size_t>(
      2, options_.memory_budget_bytes / kPageSize > 1
             ? options_.memory_budget_bytes / kPageSize - 1
             : 2);

  // Merge workers: intermediate passes run their fan-in groups
  // concurrently, and the final pass is range-partitioned across the pool.
  // Both leave the output bytes untouched (see class comment).
  // merge_threads_used is recorded where merges actually run in parallel
  // (budget capping can serialize them despite the pool existing).
  const size_t merge_threads = MergeThreadCount();
  std::unique_ptr<ThreadPool> merge_pool;
  if (merge_threads > 1 && run_names_.size() > 1) {
    merge_pool = std::make_unique<ThreadPool>(merge_threads);
  }

  // Multi-pass merging under extreme memory pressure.
  std::vector<std::string> pending = run_names_;
  while (pending.size() > fan_in) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.merge_passes;
    }
    COCONUT_ASSIGN_OR_RETURN(pending,
                             MergePassGroups(pending, fan_in,
                                             merge_pool.get()));
    // run_names_ tracks every live intermediate file for cleanup.
    run_names_ = pending;
  }

  if (merge_pool != nullptr && run_names_.size() > 1) {
    const size_t ranges = options_.merge_partitions != 0
                              ? options_.merge_partitions
                              : merge_threads;
    if (ranges > 1) {
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<SortedStream> stream,
          PartitionedFinalMerge(merge_pool.get(), ranges));
      if (stream != nullptr) return stream;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.merge_passes;
  }

  // Final merge streamed to the caller.
  const size_t merge_buffer =
      std::max<size_t>(kPageSize,
                       options_.memory_budget_bytes / (run_names_.size() + 1));
  std::vector<std::unique_ptr<SortedStream>> streams;
  for (const auto& name : run_names_) {
    COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                             options_.storage->OpenFile(name));
    streams.push_back(std::make_unique<RunFileStream>(
        std::move(file), options_.record_size, merge_buffer));
  }
  auto merge = std::make_unique<OwningMergeStream>(
      std::move(streams), options_.record_size, options_.less);
  COCONUT_RETURN_NOT_OK(merge->Init());
  return std::unique_ptr<SortedStream>(std::move(merge));
}

Result<std::vector<uint8_t>> SortToBytes(ExternalSorter::Options options,
                                         const std::vector<uint8_t>& records) {
  const size_t record_size = options.record_size;
  if (record_size == 0 || records.size() % record_size != 0) {
    return Status::InvalidArgument("records not a multiple of record_size");
  }
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<ExternalSorter> sorter,
                           ExternalSorter::Create(std::move(options)));
  for (size_t off = 0; off < records.size(); off += record_size) {
    COCONUT_RETURN_NOT_OK(sorter->Add(records.data() + off));
  }
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream,
                           sorter->Finish());
  std::vector<uint8_t> out;
  out.reserve(records.size());
  std::vector<uint8_t> record(record_size);
  while (true) {
    COCONUT_ASSIGN_OR_RETURN(bool has, stream->Next(record.data()));
    if (!has) break;
    out.insert(out.end(), record.begin(), record.end());
  }
  return out;
}

}  // namespace extsort
}  // namespace coconut
