#ifndef COCONUT_EXTSORT_EXTERNAL_SORTER_H_
#define COCONUT_EXTSORT_EXTERNAL_SORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace extsort {

/// Pull-based stream of sorted fixed-size records.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  /// Copies the next record into `out` (record_size bytes). Returns false at
  /// end of stream; a non-OK status only on I/O failure.
  virtual Result<bool> Next(uint8_t* out) = 0;

  virtual size_t record_size() const = 0;
};

/// Counters describing how a sort executed — the evidence for the
/// memory-vs-construction experiment (E5): with enough memory the sort is
/// one in-memory pass; with less it spills runs and merges them with
/// sequential I/O; with very little it needs multiple merge passes.
struct SortStats {
  uint64_t records = 0;
  uint64_t runs_spilled = 0;
  uint64_t merge_passes = 0;
  /// Worker threads that generated runs (1 = synchronous sort-and-spill).
  uint64_t threads_used = 1;
  bool in_memory = false;
};

/// Two-pass (or multi-pass under extreme memory pressure) external merge
/// sort over fixed-size binary records, the construction engine of every
/// Coconut index. Records are accumulated up to the memory budget, sorted,
/// and spilled as sequential runs; Finish() k-way-merges the runs into one
/// sorted stream using one input page per run plus one output page.
///
/// With `threads > 1`, run generation is parallel: the producer keeps
/// filling fixed-size chunks while worker threads sort and spill earlier
/// chunks concurrently, all under the same memory budget (one producer
/// chunk plus at most `threads` in-flight chunks). The sort is stable —
/// equal records keep input order — so output bytes are identical whatever
/// the thread count or budget (the determinism the oracle tests pin down).
class ExternalSorter {
 public:
  struct Options {
    /// Size of one record in bytes (> 0).
    size_t record_size = 0;
    /// Cap on buffered bytes before spilling a run. Also bounds merge
    /// fan-in: max_fan_in = budget / kPageSize - 1 (>= 2).
    size_t memory_budget_bytes = 64 << 20;
    /// Worker threads for run generation. 1 = synchronous (sort and spill
    /// inline in Add); N > 1 pipelines sorting/spilling behind ingestion.
    size_t threads = 1;
    /// Where run files live. Not owned.
    storage::StorageManager* storage = nullptr;
    /// Prefix for run file names (unique per concurrent sort).
    std::string temp_prefix = "sort";
    /// Strict-weak-order over serialized records.
    std::function<bool(const uint8_t*, const uint8_t*)> less;
  };

  /// Validates options; fails on zero record size / missing storage / less.
  static Result<std::unique_ptr<ExternalSorter>> Create(Options options);

  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Buffers one record, spilling a sorted run if the budget is exhausted.
  Status Add(const void* record);

  /// Seals input and returns the merged sorted stream. The sorter must stay
  /// alive while the stream is consumed. Call at most once.
  Result<std::unique_ptr<SortedStream>> Finish();

  const SortStats& stats() const { return stats_; }

 private:
  explicit ExternalSorter(Options options);

  Status SpillRun();
  Result<std::string> MergeRuns(const std::vector<std::string>& inputs,
                                const std::string& output_name);

  // --- parallel run generation (threads > 1) ---
  bool parallel() const { return options_.threads > 1; }
  /// Sorts one chunk and writes run file `temp_prefix + ".run" + seq`.
  Status SortAndSpillChunk(uint64_t seq, const std::vector<uint8_t>& data,
                           size_t num_records);
  /// Hands the producer buffer to the worker pool (blocks while `threads`
  /// chunks are already in flight, keeping memory under the budget).
  Status EnqueueChunk();
  /// Drains outstanding chunks and joins the worker pool. Idempotent.
  void StopWorkers();

  Options options_;
  size_t max_buffered_records_;
  std::vector<uint8_t> buffer_;
  size_t buffered_records_ = 0;
  std::vector<std::string> run_names_;
  uint64_t next_run_id_ = 0;
  SortStats stats_;
  bool finished_ = false;
  // Keeps merge inputs alive while the final stream is consumed.
  std::vector<std::unique_ptr<SortedStream>> live_inputs_;

  std::unique_ptr<ThreadPool> pool_;  // Non-null iff parallel().
  std::mutex mu_;
  std::condition_variable space_cv_;  // Producer waits for a free slot.
  size_t chunks_in_flight_ = 0;  // Queued + currently being spilled.
  Status worker_error_;
  uint64_t next_chunk_seq_ = 0;
  // Run names keyed by chunk sequence: merge order must follow input
  // order, not spill-completion order, for stable (deterministic) output.
  std::map<uint64_t, std::string> runs_by_seq_;
};

/// Convenience for tests: sorts `records` (concatenated fixed-size records)
/// and returns the sorted concatenation.
Result<std::vector<uint8_t>> SortToBytes(ExternalSorter::Options options,
                                         const std::vector<uint8_t>& records);

}  // namespace extsort
}  // namespace coconut

#endif  // COCONUT_EXTSORT_EXTERNAL_SORTER_H_
