#ifndef COCONUT_EXTSORT_EXTERNAL_SORTER_H_
#define COCONUT_EXTSORT_EXTERNAL_SORTER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace extsort {

/// Pull-based stream of sorted fixed-size records.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  /// Copies the next record into `out` (record_size bytes). Returns false at
  /// end of stream; a non-OK status only on I/O failure.
  virtual Result<bool> Next(uint8_t* out) = 0;

  virtual size_t record_size() const = 0;
};

/// Counters describing how a sort executed — the evidence for the
/// memory-vs-construction experiment (E5): with enough memory the sort is
/// one in-memory pass; with less it spills runs and merges them with
/// sequential I/O; with very little it needs multiple merge passes.
///
/// All counters are aggregated under the sorter's mutex, so they are exact
/// whatever the thread count: totals like `records` and `runs_spilled` are
/// invariant across `threads`/`merge_threads` (the determinism tests assert
/// this).
struct SortStats {
  uint64_t records = 0;
  uint64_t runs_spilled = 0;
  uint64_t merge_passes = 0;
  /// Worker threads that generated runs (1 = synchronous sort-and-spill).
  uint64_t threads_used = 1;
  /// Worker threads that executed the merge phase (1 = serial merge).
  uint64_t merge_threads_used = 1;
  /// Disjoint key ranges the final merge was partitioned into (1 = one
  /// streaming k-way merge).
  uint64_t merge_ranges = 1;
  bool in_memory = false;
};

/// Two-pass (or multi-pass under extreme memory pressure) external merge
/// sort over fixed-size binary records, the construction engine of every
/// Coconut index. Records are accumulated up to the memory budget, sorted,
/// and spilled as sequential runs; Finish() k-way-merges the runs into one
/// sorted stream using one input page per run plus one output page.
///
/// With `threads > 1`, run generation is parallel: the producer keeps
/// filling fixed-size chunks while worker threads sort and spill earlier
/// chunks concurrently, all under the same memory budget (one producer
/// chunk plus at most `threads` in-flight chunks). The sort is stable —
/// equal records keep input order — so output bytes are identical whatever
/// the thread count or budget (the determinism the oracle tests pin down).
///
/// With `merge_threads > 1` the merge phase is parallel too. Intermediate
/// passes merge their fan-in groups concurrently. The final pass splits the
/// key space into disjoint ranges via sampled splitters, k-way-merges each
/// range on the pool into a range file, and streams the concatenation.
/// Partitioning uses lower-bound semantics — every record equal to a
/// splitter lands in the range at or above it — so no tie class straddles a
/// boundary and the concatenation is byte-identical to the serial stable
/// merge, whatever the thread or partition count. The trade-off is one
/// extra materialization: the serial final merge streams straight out of
/// the run files, the parallel one writes range files first (sequential
/// I/O) and streams those.
class ExternalSorter {
 public:
  struct Options {
    /// Size of one record in bytes (> 0).
    size_t record_size = 0;
    /// Cap on buffered bytes before spilling a run. Also bounds merge
    /// fan-in: max_fan_in = budget / kPageSize - 1 (>= 2).
    size_t memory_budget_bytes = 64 << 20;
    /// Worker threads for run generation. 1 = synchronous (sort and spill
    /// inline in Add); N > 1 pipelines sorting/spilling behind ingestion.
    size_t threads = 1;
    /// Worker threads for the merge phase. 0 = follow `threads`; 1 =
    /// serial streaming merge; N > 1 = range-partitioned parallel merge
    /// (output bytes unchanged — see class comment).
    size_t merge_threads = 0;
    /// Key ranges for the parallel final merge. 0 = one range per merge
    /// worker. Ignored when the effective merge thread count is 1.
    size_t merge_partitions = 0;
    /// Where run files live. Not owned.
    storage::StorageManager* storage = nullptr;
    /// Prefix for run file names (unique per concurrent sort).
    std::string temp_prefix = "sort";
    /// Strict-weak-order over serialized records.
    std::function<bool(const uint8_t*, const uint8_t*)> less;
  };

  /// Validates options; fails on zero record size / missing storage / less.
  static Result<std::unique_ptr<ExternalSorter>> Create(Options options);

  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Buffers one record, spilling a sorted run if the budget is exhausted.
  Status Add(const void* record);

  /// Seals input and returns the merged sorted stream. The sorter must stay
  /// alive while the stream is consumed. Call at most once.
  Result<std::unique_ptr<SortedStream>> Finish();

  const SortStats& stats() const { return stats_; }

 private:
  explicit ExternalSorter(Options options);

  Status SpillRun();
  /// Merges `inputs` into `output_name`. `concurrency` is how many merges
  /// share the memory budget at once (buffers are divided by it).
  Result<std::string> MergeRuns(const std::vector<std::string>& inputs,
                                const std::string& output_name,
                                size_t concurrency = 1);

  // --- parallel merge phase (merge_threads > 1) ---
  /// Effective merge worker count (merge_threads, falling back to threads).
  size_t MergeThreadCount() const;
  /// Runs one multi-pass round: merges each fan-in group of `pending` into
  /// a fresh file, concurrently when a pool is given. Returns the next
  /// round's run names in deterministic (input) order.
  Result<std::vector<std::string>> MergePassGroups(
      const std::vector<std::string>& pending, size_t fan_in,
      ThreadPool* pool);
  /// Samples run files and returns ascending, deduplicated splitter records
  /// carving the key space into at most `num_ranges` disjoint ranges.
  Result<std::vector<std::vector<uint8_t>>> PickSplitters(size_t num_ranges);
  /// Range-partitioned final merge over run_names_: merges every key range
  /// into its own file on `pool` and returns a stream over the ordered
  /// concatenation (byte-identical to the serial merge).
  Result<std::unique_ptr<SortedStream>> PartitionedFinalMerge(
      ThreadPool* pool, size_t num_ranges);

  // --- parallel run generation (threads > 1) ---
  bool parallel() const { return options_.threads > 1; }
  /// Sorts one chunk and writes run file `temp_prefix + ".run" + seq`.
  Status SortAndSpillChunk(uint64_t seq, const std::vector<uint8_t>& data,
                           size_t num_records);
  /// Hands the producer buffer to the worker pool (blocks while `threads`
  /// chunks are already in flight, keeping memory under the budget).
  Status EnqueueChunk();
  /// Drains outstanding chunks and joins the worker pool. Idempotent.
  void StopWorkers();

  Options options_;
  size_t max_buffered_records_;
  std::vector<uint8_t> buffer_;
  size_t buffered_records_ = 0;
  std::vector<std::string> run_names_;
  uint64_t next_run_id_ = 0;
  SortStats stats_;
  bool finished_ = false;
  // Keeps merge inputs alive while the final stream is consumed.
  std::vector<std::unique_ptr<SortedStream>> live_inputs_;

  std::unique_ptr<ThreadPool> pool_;  // Non-null iff parallel().
  std::mutex mu_;
  std::condition_variable space_cv_;  // Producer waits for a free slot.
  size_t chunks_in_flight_ = 0;  // Queued + currently being spilled.
  Status worker_error_;
  uint64_t next_chunk_seq_ = 0;
  // Run names keyed by chunk sequence: merge order must follow input
  // order, not spill-completion order, for stable (deterministic) output.
  std::map<uint64_t, std::string> runs_by_seq_;
};

/// Convenience for tests: sorts `records` (concatenated fixed-size records)
/// and returns the sorted concatenation.
Result<std::vector<uint8_t>> SortToBytes(ExternalSorter::Options options,
                                         const std::vector<uint8_t>& records);

}  // namespace extsort
}  // namespace coconut

#endif  // COCONUT_EXTSORT_EXTERNAL_SORTER_H_
