#ifndef COCONUT_STORAGE_STORAGE_MANAGER_H_
#define COCONUT_STORAGE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/access_tracker.h"
#include "storage/file.h"
#include "storage/io_stats.h"

namespace coconut {
namespace storage {

/// Owns a working directory and hands out instrumented File handles whose
/// I/O all flows into one IoStats / AccessTracker pair. Each index variant
/// gets its own StorageManager so its footprint and I/O behaviour can be
/// measured in isolation — this is the "Storage Layer" box of Figure 1.
class StorageManager {
 public:
  /// Creates (mkdir -p) the working directory. Files created through the
  /// manager live inside it.
  static Result<std::unique_ptr<StorageManager>> Create(
      const std::string& directory);

  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates (truncates) a file named `name` inside the directory.
  Result<std::unique_ptr<File>> CreateFile(const std::string& name);

  /// Opens an existing file named `name`.
  Result<std::unique_ptr<File>> OpenFile(const std::string& name);

  /// Deletes the named file from disk.
  Status RemoveFile(const std::string& name);

  /// Atomically renames `from` to `to` inside the directory (replacing
  /// `to` if present), then fsyncs the directory so the swap is durable.
  /// The write-ahead log's truncation rests on this being all-or-nothing.
  Status RenameFile(const std::string& from, const std::string& to);

  /// Fsyncs the working directory itself — makes recently created or
  /// renamed *names* durable (see storage::FsyncDir).
  Status SyncDir() const { return FsyncDir(directory_); }

  /// Whether `name` exists inside the directory.
  bool Exists(const std::string& name) const;

  /// Sum of the sizes of every file under the directory, recursively
  /// (shard stacks live in subdirectories); the storage-consumption
  /// metric shown by the GUI.
  uint64_t TotalBytesOnDisk() const;

  /// Removes every file in the directory (used between experiments).
  Status Clear();

  /// Shared counters. Concurrent File I/O updates them under an internal
  /// mutex; read them from quiescent sections — before/after a parallel
  /// phase — for consistent values.
  IoStats* io_stats() { return &stats_; }
  AccessTracker* tracker() { return &tracker_; }

  /// Consistent copy of the I/O counters taken under the same mutex the
  /// files update them with — safe to call while other threads do I/O
  /// (the concurrency stress tests read accounting mid-flight this way).
  IoStats SnapshotIoStats() const {
    std::lock_guard<std::mutex> lock(io_mutex_);
    return stats_;
  }

  const std::string& directory() const { return directory_; }

 private:
  explicit StorageManager(std::string directory)
      : directory_(std::move(directory)) {}

  std::string PathFor(const std::string& name) const;

  std::string directory_;
  IoStats stats_;
  AccessTracker tracker_;
  mutable std::mutex io_mutex_;
  std::atomic<uint32_t> next_file_id_{0};
};

/// Creates a unique fresh directory under the system temp root, for tests
/// and benches. The returned manager owns it.
Result<std::unique_ptr<StorageManager>> MakeTempStorage(
    const std::string& prefix);

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_STORAGE_MANAGER_H_
