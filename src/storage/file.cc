#include "storage/file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace coconut {
namespace storage {

namespace {
std::string Errno(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}
}  // namespace

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<File>> File::Create(const std::string& path,
                                           uint32_t file_id, IoStats* stats,
                                           AccessTracker* tracker,
                                           std::mutex* io_mutex) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(Errno("open(create)", path));
  return std::unique_ptr<File>(
      new File(fd, path, file_id, /*size=*/0, stats, tracker, io_mutex));
}

Result<std::unique_ptr<File>> File::Open(const std::string& path,
                                         uint32_t file_id, IoStats* stats,
                                         AccessTracker* tracker,
                                         std::mutex* io_mutex) {
  int fd = ::open(path.c_str(), O_RDWR, 0644);
  if (fd < 0) return Status::IoError(Errno("open", path));
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError(Errno("lseek", path));
  }
  return std::unique_ptr<File>(new File(fd, path, file_id,
                                        static_cast<uint64_t>(size), stats,
                                        tracker, io_mutex));
}

void File::CountRead(uint64_t offset, size_t len) {
  std::unique_lock<std::mutex> lock;
  if (io_mutex_ != nullptr) lock = std::unique_lock<std::mutex>(*io_mutex_);
  if (stats_ != nullptr) {
    const bool sequential =
        stats_->last_read_file == IoStats::kNoFile ||
        (stats_->last_read_file == file_id_ && offset == stats_->last_read_end);
    if (sequential) {
      ++stats_->sequential_reads;
    } else {
      ++stats_->random_reads;
    }
    stats_->bytes_read += len;
    stats_->last_read_file = file_id_;
    stats_->last_read_end = offset + len;
  }
  if (tracker_ != nullptr && tracker_->enabled()) {
    tracker_->Record(file_id_, offset / kPageSize, /*is_write=*/false);
  }
}

void File::CountWrite(uint64_t offset, size_t len) {
  std::unique_lock<std::mutex> lock;
  if (io_mutex_ != nullptr) lock = std::unique_lock<std::mutex>(*io_mutex_);
  if (stats_ != nullptr) {
    const bool sequential = stats_->last_write_file == IoStats::kNoFile ||
                            (stats_->last_write_file == file_id_ &&
                             offset == stats_->last_write_end);
    if (sequential) {
      ++stats_->sequential_writes;
    } else {
      ++stats_->random_writes;
    }
    stats_->bytes_written += len;
    stats_->last_write_file = file_id_;
    stats_->last_write_end = offset + len;
  }
  if (tracker_ != nullptr && tracker_->enabled()) {
    tracker_->Record(file_id_, offset / kPageSize, /*is_write=*/true);
  }
}

Status File::ReadPage(uint64_t page_no, Page* page) {
  const uint64_t offset = page_no * kPageSize;
  if (offset >= size_bytes_) {
    return Status::OutOfRange("ReadPage past EOF in '" + path_ + "' (page " +
                              std::to_string(page_no) + ")");
  }
  ssize_t n = ::pread(fd_, page->data(), kPageSize, static_cast<off_t>(offset));
  if (n < 0) return Status::IoError(Errno("pread", path_));
  // The final page of a file may be short; zero-fill the tail.
  if (static_cast<size_t>(n) < kPageSize) {
    std::memset(page->data() + n, 0, kPageSize - n);
  }
  CountRead(offset, kPageSize);
  return Status::OK();
}

Status File::WritePage(uint64_t page_no, const Page& page) {
  const uint64_t offset = page_no * kPageSize;
  ssize_t n = ::pwrite(fd_, page.data(), kPageSize, static_cast<off_t>(offset));
  if (n < 0) return Status::IoError(Errno("pwrite", path_));
  if (static_cast<size_t>(n) != kPageSize) {
    return Status::IoError("short pwrite to '" + path_ + "'");
  }
  if (offset + kPageSize > size_bytes_) size_bytes_ = offset + kPageSize;
  CountWrite(offset, kPageSize);
  return Status::OK();
}

Status File::Append(const void* data, size_t len) {
  const uint64_t offset = size_bytes_;
  ssize_t n = ::pwrite(fd_, data, len, static_cast<off_t>(offset));
  if (n < 0) return Status::IoError(Errno("pwrite(append)", path_));
  if (static_cast<size_t>(n) != len) {
    return Status::IoError("short append to '" + path_ + "'");
  }
  size_bytes_ += len;
  CountWrite(offset, len);
  return Status::OK();
}

Status File::ReadAt(uint64_t offset, void* data, size_t len) {
  if (offset + len > size_bytes_) {
    return Status::OutOfRange("ReadAt past EOF in '" + path_ + "'");
  }
  ssize_t n = ::pread(fd_, data, len, static_cast<off_t>(offset));
  if (n < 0) return Status::IoError(Errno("pread", path_));
  if (static_cast<size_t>(n) != len) {
    return Status::IoError("short pread from '" + path_ + "'");
  }
  CountRead(offset, len);
  return Status::OK();
}

Status File::Sync() {
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync", path_));
  return Status::OK();
}

Status File::DataSync() {
#if defined(__linux__)
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(Errno("fdatasync", path_));
  }
  return Status::OK();
#else
  return Sync();
#endif
}

Status File::Truncate(uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return Status::IoError(Errno("ftruncate", path_));
  }
  size_bytes_ = new_size;
  return Status::OK();
}

Status FsyncDir(const std::string& dir_path) {
  int fd = ::open(dir_path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::IoError(Errno("open(dir)", dir_path));
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return Status::IoError(Errno("fsync(dir)", dir_path));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace coconut
