#include "storage/buffer_pool.h"

#include <algorithm>

namespace coconut {
namespace storage {

BufferPool::BufferPool(size_t capacity_bytes)
    : capacity_pages_(std::max<size_t>(1, capacity_bytes / kPageSize)) {}

Result<const Page*> BufferPool::GetPage(File* file, uint64_t page_no) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t key = MakeKey(file->file_id(), page_no);
  auto it = map_.find(key);
  if (it != map_.end()) {
    ++hits_;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return &lru_.front().page;
  }
  ++misses_;
  // Evict if full.
  while (lru_.size() >= capacity_pages_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  lru_.push_front(Frame{key, Page{}});
  Status st = file->ReadPage(page_no, &lru_.front().page);
  if (!st.ok()) {
    map_.erase(key);  // No-op if absent; defensive.
    lru_.pop_front();
    return st;
  }
  map_[key] = lru_.begin();
  return &lru_.front().page;
}

void BufferPool::Invalidate(uint32_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((it->key >> 40) == file_id) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

}  // namespace storage
}  // namespace coconut
