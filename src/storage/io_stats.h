#ifndef COCONUT_STORAGE_IO_STATS_H_
#define COCONUT_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace coconut {
namespace storage {

/// Counters distinguishing sequential from random page I/O.
///
/// The Coconut papers attribute their speedups to replacing random I/O with
/// sequential I/O; every experiment in this repo therefore reports both
/// classes separately. An access is *sequential* when it starts exactly where
/// the previous access to the same file (of the same kind) ended, and
/// *random* otherwise.
struct IoStats {
  uint64_t sequential_reads = 0;
  uint64_t random_reads = 0;
  uint64_t sequential_writes = 0;
  uint64_t random_writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  // Device-head tracking (not counters): an access is sequential only when
  // it continues the previous access of the same kind on this device —
  // same file AND contiguous offset. Hopping between files seeks, which is
  // precisely the cost ADS+-style per-node files incur and sorted layouts
  // avoid. kNoFile means "no previous access" (the first access of a kind
  // counts as sequential).
  static constexpr uint32_t kNoFile = 0xFFFFFFFFu;
  uint32_t last_read_file = kNoFile;
  uint64_t last_read_end = 0;
  uint32_t last_write_file = kNoFile;
  uint64_t last_write_end = 0;

  uint64_t total_reads() const { return sequential_reads + random_reads; }
  uint64_t total_writes() const { return sequential_writes + random_writes; }
  uint64_t total_ios() const { return total_reads() + total_writes(); }

  void Reset() { *this = IoStats{}; }

  /// Accumulates another set of counters (device-head tracking fields are
  /// meaningless across devices and stay untouched). One shared helper so
  /// every aggregation site picks up future counters automatically.
  void Add(const IoStats& other) {
    sequential_reads += other.sequential_reads;
    random_reads += other.random_reads;
    sequential_writes += other.sequential_writes;
    random_writes += other.random_writes;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
  }

  /// Difference since an earlier snapshot (counters are monotone).
  IoStats Since(const IoStats& before) const {
    IoStats d;
    d.sequential_reads = sequential_reads - before.sequential_reads;
    d.random_reads = random_reads - before.random_reads;
    d.sequential_writes = sequential_writes - before.sequential_writes;
    d.random_writes = random_writes - before.random_writes;
    d.bytes_read = bytes_read - before.bytes_read;
    d.bytes_written = bytes_written - before.bytes_written;
    return d;
  }

  std::string ToString() const {
    return "reads(seq=" + std::to_string(sequential_reads) +
           ",rand=" + std::to_string(random_reads) +
           ") writes(seq=" + std::to_string(sequential_writes) +
           ",rand=" + std::to_string(random_writes) + ")";
  }
};

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_IO_STATS_H_
