#include "storage/storage_manager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace coconut {
namespace storage {

namespace fs = std::filesystem;

Result<std::unique_ptr<StorageManager>> StorageManager::Create(
    const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("create_directories('" + directory +
                           "'): " + ec.message());
  }
  return std::unique_ptr<StorageManager>(new StorageManager(directory));
}

StorageManager::~StorageManager() = default;

std::string StorageManager::PathFor(const std::string& name) const {
  return directory_ + "/" + name;
}

Result<std::unique_ptr<File>> StorageManager::CreateFile(
    const std::string& name) {
  auto file = File::Create(PathFor(name), next_file_id_.fetch_add(1), &stats_,
                           &tracker_, &io_mutex_);
  if (!file.ok()) return file;
  // The new *name* lives in the directory inode; without this a
  // created-then-crashed file (e.g. a fresh write-ahead log) can vanish
  // even though its own fsync succeeded.
  COCONUT_RETURN_NOT_OK(FsyncDir(directory_));
  return file;
}

Result<std::unique_ptr<File>> StorageManager::OpenFile(
    const std::string& name) {
  return File::Open(PathFor(name), next_file_id_.fetch_add(1), &stats_,
                    &tracker_, &io_mutex_);
}

Status StorageManager::RemoveFile(const std::string& name) {
  if (::unlink(PathFor(name).c_str()) != 0) {
    return Status::IoError("unlink('" + PathFor(name) +
                           "'): " + std::strerror(errno));
  }
  return Status::OK();
}

Status StorageManager::RenameFile(const std::string& from,
                                  const std::string& to) {
  if (::rename(PathFor(from).c_str(), PathFor(to).c_str()) != 0) {
    return Status::IoError("rename('" + PathFor(from) + "' -> '" +
                           PathFor(to) + "'): " + std::strerror(errno));
  }
  return FsyncDir(directory_);
}

bool StorageManager::Exists(const std::string& name) const {
  struct stat st;
  return ::stat(PathFor(name).c_str(), &st) == 0;
}

uint64_t StorageManager::TotalBytesOnDisk() const {
  // Recursive: a sharded index keeps each shard's stack in a subdirectory
  // of its parent manager, and those bytes are part of its footprint.
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       fs::recursive_directory_iterator(directory_, ec)) {
    if (entry.is_regular_file(ec)) {
      total += entry.file_size(ec);
    }
  }
  return total;
}

Status StorageManager::Clear() {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    fs::remove_all(entry.path(), ec);
    if (ec) {
      return Status::IoError("remove_all('" + entry.path().string() +
                             "'): " + ec.message());
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<StorageManager>> MakeTempStorage(
    const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  const uint64_t id = counter.fetch_add(1);
  std::string dir = fs::temp_directory_path().string() + "/coconut_" + prefix +
                    "_" + std::to_string(::getpid()) + "_" +
                    std::to_string(id);
  return StorageManager::Create(dir);
}

}  // namespace storage
}  // namespace coconut
