#ifndef COCONUT_STORAGE_PAGE_H_
#define COCONUT_STORAGE_PAGE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace coconut {
namespace storage {

/// All on-disk structures in this repo are laid out in fixed-size pages.
inline constexpr size_t kPageSize = 4096;

/// A page-sized, zero-initialized byte buffer with typed accessors.
class Page {
 public:
  Page() { data_.fill(0); }

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  static constexpr size_t size() { return kPageSize; }

  void Clear() { data_.fill(0); }

  /// Copies a trivially-copyable value at byte offset `off`.
  template <typename T>
  void Write(size_t off, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(data_.data() + off, &value, sizeof(T));
  }

  /// Reads a trivially-copyable value from byte offset `off`.
  template <typename T>
  T Read(size_t off) const {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, data_.data() + off, sizeof(T));
    return value;
  }

 private:
  std::array<uint8_t, kPageSize> data_;
};

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_PAGE_H_
