#ifndef COCONUT_STORAGE_ACCESS_TRACKER_H_
#define COCONUT_STORAGE_ACCESS_TRACKER_H_

#include <cstdint>
#include <vector>

namespace coconut {
namespace storage {

/// One recorded page access. `sequence` is a global logical clock so the
/// heat map can lay out accesses over time.
struct AccessEvent {
  uint32_t file_id;
  uint64_t page_no;
  bool is_write;
  uint64_t sequence;
};

/// Records every page access while enabled. This is the raw feed behind the
/// Palm GUI's heat map (Figure 2): the renderer bins events by file offset
/// and by time to visualize whether an index touches storage contiguously
/// (CTree/CLSM) or scatters random I/Os (ADS+).
class AccessTracker {
 public:
  AccessTracker() = default;

  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Clear() {
    events_.clear();
    next_sequence_ = 0;
  }

  /// Called by the storage layer on each page touched.
  void Record(uint32_t file_id, uint64_t page_no, bool is_write) {
    if (!enabled_) return;
    events_.push_back(AccessEvent{file_id, page_no, is_write, next_sequence_++});
  }

  const std::vector<AccessEvent>& events() const { return events_; }

 private:
  bool enabled_ = false;
  std::vector<AccessEvent> events_;
  uint64_t next_sequence_ = 0;
};

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_ACCESS_TRACKER_H_
