#ifndef COCONUT_STORAGE_ACCESS_TRACKER_H_
#define COCONUT_STORAGE_ACCESS_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace coconut {
namespace storage {

/// One recorded page access. `sequence` is a global logical clock so the
/// heat map can lay out accesses over time.
struct AccessEvent {
  uint32_t file_id;
  uint64_t page_no;
  bool is_write;
  uint64_t sequence;
};

/// Records every page access while enabled. This is the raw feed behind the
/// Palm GUI's heat map (Figure 2): the renderer bins events by file offset
/// and by time to visualize whether an index touches storage contiguously
/// (CTree/CLSM) or scatters random I/Os (ADS+).
///
/// Thread-safe: the enabled flag is atomic (a query may toggle capture
/// while background seals/merges are doing I/O) and the event log is
/// mutex-protected. Readers wanting a consistent view while I/O continues
/// use SnapshotEvents(); events() is for quiescent, single-threaded use.
class AccessTracker {
 public:
  AccessTracker() = default;

  void Enable() { enabled_.store(true, std::memory_order_release); }
  void Disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    next_sequence_ = 0;
  }

  /// Called by the storage layer on each page touched.
  void Record(uint32_t file_id, uint64_t page_no, bool is_write) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(AccessEvent{file_id, page_no, is_write, next_sequence_++});
  }

  /// Quiescent access (no concurrent Record/Clear).
  const std::vector<AccessEvent>& events() const { return events_; }

  /// Consistent copy, safe while other threads keep recording — the same
  /// snapshot-read discipline as StorageManager::SnapshotIoStats.
  std::vector<AccessEvent> SnapshotEvents() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<AccessEvent> events_;
  uint64_t next_sequence_ = 0;
};

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_ACCESS_TRACKER_H_
