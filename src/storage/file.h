#ifndef COCONUT_STORAGE_FILE_H_
#define COCONUT_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "storage/access_tracker.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace coconut {
namespace storage {

/// Instrumented POSIX file. Every read/write updates the shared IoStats
/// (classifying sequential vs random by comparing against the end of the
/// previous access of the same kind) and, when page-aligned, notifies the
/// AccessTracker for heat-map rendering.
///
/// Files are obtained through StorageManager, which assigns the file_id used
/// by tracker events.
class File {
 public:
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Creates (truncates) a file at `path`. `io_mutex` (optional, not owned)
  /// serializes stats/tracker updates when files of one manager are used
  /// from several threads (parallel run generation, batched queries).
  static Result<std::unique_ptr<File>> Create(const std::string& path,
                                              uint32_t file_id,
                                              IoStats* stats,
                                              AccessTracker* tracker,
                                              std::mutex* io_mutex = nullptr);

  /// Opens an existing file for read/write.
  static Result<std::unique_ptr<File>> Open(const std::string& path,
                                            uint32_t file_id, IoStats* stats,
                                            AccessTracker* tracker,
                                            std::mutex* io_mutex = nullptr);

  /// Reads the `page_no`-th kPageSize page into `page`.
  Status ReadPage(uint64_t page_no, Page* page);

  /// Writes `page` at page index `page_no`, extending the file if needed.
  Status WritePage(uint64_t page_no, const Page& page);

  /// Appends `len` raw bytes at the end of the file (sequential write).
  Status Append(const void* data, size_t len);

  /// Reads `len` raw bytes starting at byte `offset`.
  Status ReadAt(uint64_t offset, void* data, size_t len);

  /// Flushes file contents to stable storage.
  Status Sync();

  /// Like Sync but skips flushing metadata (mtime) when the platform
  /// offers fdatasync; the write-ahead log's commit path calls this once
  /// per acknowledged batch, so the cheaper barrier matters.
  Status DataSync();

  /// Truncates (or extends with zeros) the file to exactly `new_size`
  /// bytes. Recovery uses this to drop a torn frame tail from a log.
  Status Truncate(uint64_t new_size);

  /// Current file length in bytes.
  uint64_t size_bytes() const { return size_bytes_; }

  /// Number of whole pages in the file.
  uint64_t num_pages() const { return (size_bytes_ + kPageSize - 1) / kPageSize; }

  uint32_t file_id() const { return file_id_; }
  const std::string& path() const { return path_; }

 private:
  File(int fd, std::string path, uint32_t file_id, uint64_t size,
       IoStats* stats, AccessTracker* tracker, std::mutex* io_mutex)
      : fd_(fd),
        path_(std::move(path)),
        file_id_(file_id),
        size_bytes_(size),
        stats_(stats),
        tracker_(tracker),
        io_mutex_(io_mutex) {}

  void CountRead(uint64_t offset, size_t len);
  void CountWrite(uint64_t offset, size_t len);

  int fd_;
  std::string path_;
  uint32_t file_id_;
  uint64_t size_bytes_;
  IoStats* stats_;       // Not owned; shared across files of one manager.
  AccessTracker* tracker_;  // Not owned; may be nullptr.
  std::mutex* io_mutex_;    // Not owned; may be nullptr (single-threaded).
};

/// Fsyncs the directory at `dir_path` so entries created (or renamed)
/// inside it survive a crash. POSIX only promises a created file's *data*
/// is durable after fsync(fd); the *name* lives in the parent directory
/// and needs its own fsync — without it a created-then-crashed log file
/// can vanish on real filesystems.
Status FsyncDir(const std::string& dir_path);

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_FILE_H_
