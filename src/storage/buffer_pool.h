#ifndef COCONUT_STORAGE_BUFFER_POOL_H_
#define COCONUT_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "storage/file.h"
#include "storage/page.h"

namespace coconut {
namespace storage {

/// LRU page cache with a byte budget. Index query paths read leaf and
/// internal pages through the pool, so the "available main memory budget"
/// knob of the Palm GUI caps both construction (external-sort budget) and
/// query-time caching.
///
/// The pool is read-only from the caller's perspective: pages are fetched,
/// never mutated in cache. Writers go directly to File and must Invalidate.
///
/// Structure and hit/miss accounting are mutex-protected, so concurrent
/// callers cannot corrupt the LRU. The pointer returned by GetPage is only
/// guaranteed until the same caller's next GetPage, so query execution over
/// one pool must still be serialized (the Palm server runs batched queries
/// with per-index isolation for exactly this reason).
class BufferPool {
 public:
  /// `capacity_bytes` is rounded down to whole pages (at least one page).
  explicit BufferPool(size_t capacity_bytes);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pointer to the cached page contents, reading through `file`
  /// on a miss. The pointer is valid until the next GetPage call (the frame
  /// may be evicted then).
  Result<const Page*> GetPage(File* file, uint64_t page_no);

  /// Drops every cached page belonging to `file_id` (after writes).
  void Invalidate(uint32_t file_id);

  /// Drops everything.
  void Clear();

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  size_t capacity_pages() const { return capacity_pages_; }
  size_t cached_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Frame {
    uint64_t key;
    Page page;
  };
  using LruList = std::list<Frame>;

  static uint64_t MakeKey(uint32_t file_id, uint64_t page_no) {
    // 24 bits of file id, 40 bits of page number: 4 TiB per file at 4 KiB
    // pages, far beyond anything this repo creates.
    return (static_cast<uint64_t>(file_id) << 40) | (page_no & ((1ULL << 40) - 1));
  }

  size_t capacity_pages_;
  mutable std::mutex mu_;
  LruList lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, LruList::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace storage
}  // namespace coconut

#endif  // COCONUT_STORAGE_BUFFER_POOL_H_
