#ifndef COCONUT_ADS_ADS_INDEX_H_
#define COCONUT_ADS_ADS_INDEX_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/entry.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "seqtable/table_search.h"
#include "series/distance.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace ads {

/// One node of the ADS+ iSAX tree. Internal nodes are binary (children
/// refine one segment's symbol by one bit); leaves hold an in-memory buffer
/// plus an on-disk file of already-flushed entries.
struct AdsNode {
  /// Per-segment symbol prefix, right-aligned: prefix[s] in
  /// [0, 2^prefix_bits[s]).
  series::SaxWord prefix{};
  std::array<uint8_t, series::kMaxSegments> prefix_bits{};

  bool is_leaf = true;
  int split_segment = -1;
  std::unique_ptr<AdsNode> child0;  // Next bit 0.
  std::unique_ptr<AdsNode> child1;  // Next bit 1.

  // Leaf state.
  std::vector<core::IndexEntry> buffer;
  std::vector<float> buffer_payloads;
  std::unique_ptr<storage::File> file;  // Created on first flush.
  std::string file_name;
  uint64_t entries_on_disk = 0;

  uint64_t total_entries() const { return buffer.size() + entries_on_disk; }
};

/// Reimplementation of ADS+ (Zoumpatianos et al.), the state-of-the-art
/// adaptive data series index the demo uses as its baseline. Construction
/// is top-down: each series descends to its leaf's in-memory buffer;
/// buffers spill to per-leaf files (random I/O scattered across many
/// files); overflowing leaves split by promoting one segment's cardinality
/// (iSAX 2.0 policy) and rewriting their entries. These are precisely the
/// structural properties — sparse nodes, non-contiguous layout, random
/// construction I/O — that Coconut's sortable summarizations remove.
class AdsIndex {
 public:
  struct Options {
    series::SaxConfig sax;
    /// ADSFull: leaf files embed the series values.
    bool materialized = false;
    /// Max entries a leaf may reach before it splits.
    size_t leaf_capacity = 1024;
    /// Total in-memory buffered entries across all leaves (the memory
    /// budget). When exceeded, the fullest leaf buffer is flushed.
    size_t global_buffer_entries = 8192;
  };

  static Result<std::unique_ptr<AdsIndex>> Create(
      storage::StorageManager* storage, const std::string& prefix,
      const Options& options, core::RawSeriesStore* raw);

  /// Top-down insertion of one z-normalized series.
  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp);

  /// Spills every leaf buffer to disk.
  Status FlushAll();

  /// Descends to the query's leaf and verifies its best candidates.
  Result<core::SearchResult> ApproxSearch(std::span<const float> query,
                                          const core::SearchOptions& options,
                                          core::QueryCounters* counters);

  /// Best-first tree search with MINDIST pruning (exact).
  Result<core::SearchResult> ExactSearch(std::span<const float> query,
                                         const core::SearchOptions& options,
                                         core::QueryCounters* counters);

  /// Exact k-nearest-neighbors via best-first traversal pruned by the
  /// running k-th-best distance.
  Result<std::vector<core::SearchResult>> KnnSearch(
      std::span<const float> query, size_t k,
      const core::SearchOptions& options, core::QueryCounters* counters);

  uint64_t num_entries() const { return num_entries_; }
  size_t num_leaves() const;
  size_t num_nodes() const;
  uint64_t total_file_bytes() const;
  size_t buffered_entries() const { return total_buffered_; }

  const Options& options() const { return options_; }

 private:
  AdsIndex(storage::StorageManager* storage, std::string prefix,
           const Options& options, core::RawSeriesStore* raw)
      : storage_(storage),
        prefix_(std::move(prefix)),
        options_(options),
        raw_(raw) {}

  /// Root fan-out key: bit s = most significant bit of segment s's symbol.
  uint32_t RootMask(const series::SaxWord& word) const;

  /// Finds (or creates) the leaf for `word`, descending internal nodes.
  AdsNode* DescendToLeaf(const series::SaxWord& word, bool create_root);

  Status FlushLeaf(AdsNode* leaf);
  Status SplitLeaf(AdsNode* leaf);
  Status LoadLeafEntries(const AdsNode& leaf,
                         std::vector<core::IndexEntry>* entries,
                         std::vector<float>* payloads) const;
  Status EvaluateLeaf(const AdsNode& leaf, const seqtable::SearchContext& ctx,
                      const core::SearchOptions& options,
                      int max_verifications, core::SearchResult* best);
  series::SaxRegion NodeRegion(const AdsNode& node) const;

  storage::StorageManager* storage_;
  std::string prefix_;
  Options options_;
  core::RawSeriesStore* raw_;

  std::unordered_map<uint32_t, std::unique_ptr<AdsNode>> root_children_;
  uint64_t num_entries_ = 0;
  size_t total_buffered_ = 0;
  uint64_t next_leaf_id_ = 0;
  size_t record_size_ = 0;
};

}  // namespace ads
}  // namespace coconut

#endif  // COCONUT_ADS_ADS_INDEX_H_
