#include "ads/ads_index.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "series/paa.h"

namespace coconut {
namespace ads {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;
using series::SaxWord;

// Branch bit taken below a node that splits `seg` whose children fix
// `parent_bits + 1` bits: the (parent_bits)-th bit of the symbol, MSB first.
inline uint8_t BranchBit(uint8_t symbol, int parent_bits, int full_bits) {
  return static_cast<uint8_t>((symbol >> (full_bits - 1 - parent_bits)) & 1);
}

}  // namespace

Result<std::unique_ptr<AdsIndex>> AdsIndex::Create(
    storage::StorageManager* storage, const std::string& prefix,
    const Options& options, core::RawSeriesStore* raw) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  if (options.leaf_capacity == 0) {
    return Status::InvalidArgument("leaf_capacity must be > 0");
  }
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized ADS+ needs a raw store for verification");
  }
  auto index = std::unique_ptr<AdsIndex>(
      new AdsIndex(storage, prefix, options, raw));
  index->record_size_ =
      sizeof(IndexEntry) +
      (options.materialized ? options.sax.series_length * sizeof(float) : 0);
  return index;
}

uint32_t AdsIndex::RootMask(const SaxWord& word) const {
  const int full = options_.sax.bits_per_segment;
  uint32_t mask = 0;
  for (int s = 0; s < options_.sax.num_segments; ++s) {
    mask |= static_cast<uint32_t>((word[s] >> (full - 1)) & 1) << s;
  }
  return mask;
}

AdsNode* AdsIndex::DescendToLeaf(const SaxWord& word, bool create_root) {
  const uint32_t mask = RootMask(word);
  auto it = root_children_.find(mask);
  if (it == root_children_.end()) {
    if (!create_root) return nullptr;
    auto node = std::make_unique<AdsNode>();
    const int full = options_.sax.bits_per_segment;
    for (int s = 0; s < options_.sax.num_segments; ++s) {
      node->prefix_bits[s] = 1;
      node->prefix[s] = static_cast<uint8_t>((word[s] >> (full - 1)) & 1);
    }
    it = root_children_.emplace(mask, std::move(node)).first;
  }
  AdsNode* node = it->second.get();
  const int full = options_.sax.bits_per_segment;
  while (!node->is_leaf) {
    const int seg = node->split_segment;
    const uint8_t bit = BranchBit(word[seg], node->prefix_bits[seg], full);
    node = bit == 0 ? node->child0.get() : node->child1.get();
  }
  return node;
}

Status AdsIndex::Insert(uint64_t series_id,
                        std::span<const float> znorm_values,
                        int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }
  const SaxWord word = series::ComputeSax(znorm_values, options_.sax);
  IndexEntry entry;
  entry.key = series::InterleaveSax(word, options_.sax);
  entry.series_id = series_id;
  entry.timestamp = timestamp;

  AdsNode* leaf = DescendToLeaf(word, /*create_root=*/true);
  leaf->buffer.push_back(entry);
  if (options_.materialized) {
    leaf->buffer_payloads.insert(leaf->buffer_payloads.end(),
                                 znorm_values.begin(), znorm_values.end());
  }
  ++num_entries_;
  ++total_buffered_;

  if (leaf->total_entries() > options_.leaf_capacity) {
    COCONUT_RETURN_NOT_OK(SplitLeaf(leaf));
  }

  // Global memory pressure: flush the fullest leaf buffer. This is the
  // "waiting for similar series to gather" buffering the paper describes —
  // and the random I/O it degenerates to when memory is scarce.
  if (total_buffered_ > options_.global_buffer_entries) {
    AdsNode* fullest = nullptr;
    // Walk the whole tree for the largest buffer (ADS+ keeps a heap; a walk
    // keeps the code simple and the behaviour identical).
    std::vector<AdsNode*> stack;
    for (auto& [mask, child] : root_children_) stack.push_back(child.get());
    while (!stack.empty()) {
      AdsNode* n = stack.back();
      stack.pop_back();
      if (n->is_leaf) {
        if (fullest == nullptr || n->buffer.size() > fullest->buffer.size()) {
          fullest = n;
        }
      } else {
        stack.push_back(n->child0.get());
        stack.push_back(n->child1.get());
      }
    }
    if (fullest != nullptr && !fullest->buffer.empty()) {
      COCONUT_RETURN_NOT_OK(FlushLeaf(fullest));
    }
  }
  return Status::OK();
}

Status AdsIndex::FlushLeaf(AdsNode* leaf) {
  if (leaf->buffer.empty()) return Status::OK();
  if (leaf->file == nullptr) {
    leaf->file_name = prefix_ + ".leaf" + std::to_string(next_leaf_id_++);
    COCONUT_ASSIGN_OR_RETURN(leaf->file, storage_->CreateFile(leaf->file_name));
  }
  const size_t len = options_.sax.series_length;
  std::vector<uint8_t> bytes(leaf->buffer.size() * record_size_);
  for (size_t i = 0; i < leaf->buffer.size(); ++i) {
    uint8_t* out = bytes.data() + i * record_size_;
    std::memcpy(out, &leaf->buffer[i], sizeof(IndexEntry));
    if (options_.materialized) {
      std::memcpy(out + sizeof(IndexEntry),
                  leaf->buffer_payloads.data() + i * len, len * sizeof(float));
    }
  }
  COCONUT_RETURN_NOT_OK(leaf->file->Append(bytes.data(), bytes.size()));
  leaf->entries_on_disk += leaf->buffer.size();
  total_buffered_ -= leaf->buffer.size();
  leaf->buffer.clear();
  leaf->buffer_payloads.clear();
  return Status::OK();
}

Status AdsIndex::LoadLeafEntries(const AdsNode& leaf,
                                 std::vector<IndexEntry>* entries,
                                 std::vector<float>* payloads) const {
  const size_t len = options_.sax.series_length;
  entries->clear();
  payloads->clear();
  entries->reserve(leaf.total_entries());
  if (leaf.entries_on_disk > 0) {
    std::vector<uint8_t> bytes(leaf.entries_on_disk * record_size_);
    COCONUT_RETURN_NOT_OK(leaf.file->ReadAt(0, bytes.data(), bytes.size()));
    for (uint64_t i = 0; i < leaf.entries_on_disk; ++i) {
      const uint8_t* in = bytes.data() + i * record_size_;
      IndexEntry e;
      std::memcpy(&e, in, sizeof(e));
      entries->push_back(e);
      if (options_.materialized) {
        const float* p =
            reinterpret_cast<const float*>(in + sizeof(IndexEntry));
        payloads->insert(payloads->end(), p, p + len);
      }
    }
  }
  entries->insert(entries->end(), leaf.buffer.begin(), leaf.buffer.end());
  if (options_.materialized) {
    payloads->insert(payloads->end(), leaf.buffer_payloads.begin(),
                     leaf.buffer_payloads.end());
  }
  return Status::OK();
}

Status AdsIndex::SplitLeaf(AdsNode* leaf) {
  // iSAX 2.0 split policy: refine the coarsest segment (round-robin via
  // "fewest prefix bits", ties to the lowest index).
  const int full = options_.sax.bits_per_segment;
  int seg = -1;
  for (int s = 0; s < options_.sax.num_segments; ++s) {
    if (leaf->prefix_bits[s] >= full) continue;
    if (seg == -1 || leaf->prefix_bits[s] < leaf->prefix_bits[seg]) seg = s;
  }
  if (seg == -1) return Status::OK();  // Fully refined; leaf may grow.

  std::vector<IndexEntry> entries;
  std::vector<float> payloads;
  COCONUT_RETURN_NOT_OK(LoadLeafEntries(*leaf, &entries, &payloads));

  auto make_child = [&](uint8_t bit) {
    auto child = std::make_unique<AdsNode>();
    child->prefix = leaf->prefix;
    child->prefix_bits = leaf->prefix_bits;
    child->prefix[seg] = static_cast<uint8_t>((leaf->prefix[seg] << 1) | bit);
    child->prefix_bits[seg] = static_cast<uint8_t>(leaf->prefix_bits[seg] + 1);
    return child;
  };
  auto child0 = make_child(0);
  auto child1 = make_child(1);

  const size_t len = options_.sax.series_length;
  const int parent_bits = leaf->prefix_bits[seg];
  for (size_t i = 0; i < entries.size(); ++i) {
    const SaxWord word = series::DeinterleaveKey(entries[i].key, options_.sax);
    AdsNode* target = BranchBit(word[seg], parent_bits, full) == 0
                          ? child0.get()
                          : child1.get();
    target->buffer.push_back(entries[i]);
    if (options_.materialized) {
      target->buffer_payloads.insert(target->buffer_payloads.end(),
                                     payloads.begin() + i * len,
                                     payloads.begin() + (i + 1) * len);
    }
  }

  // The split rewrites both halves to fresh files (ADS+ pays this I/O on
  // every overflow). Buffered parent entries are no longer buffered.
  total_buffered_ -= leaf->buffer.size();
  total_buffered_ += child0->buffer.size() + child1->buffer.size();

  if (leaf->file != nullptr) {
    leaf->file.reset();
    COCONUT_RETURN_NOT_OK(storage_->RemoveFile(leaf->file_name));
    leaf->file_name.clear();
  }
  leaf->buffer.clear();
  leaf->buffer_payloads.clear();
  leaf->entries_on_disk = 0;
  leaf->is_leaf = false;
  leaf->split_segment = seg;
  leaf->child0 = std::move(child0);
  leaf->child1 = std::move(child1);

  COCONUT_RETURN_NOT_OK(FlushLeaf(leaf->child0.get()));
  COCONUT_RETURN_NOT_OK(FlushLeaf(leaf->child1.get()));

  // Skewed data can leave a child still overflowing; keep splitting.
  if (leaf->child0->total_entries() > options_.leaf_capacity) {
    COCONUT_RETURN_NOT_OK(SplitLeaf(leaf->child0.get()));
  }
  if (leaf->child1->total_entries() > options_.leaf_capacity) {
    COCONUT_RETURN_NOT_OK(SplitLeaf(leaf->child1.get()));
  }
  return Status::OK();
}

Status AdsIndex::FlushAll() {
  std::vector<AdsNode*> stack;
  for (auto& [mask, child] : root_children_) stack.push_back(child.get());
  while (!stack.empty()) {
    AdsNode* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      COCONUT_RETURN_NOT_OK(FlushLeaf(n));
    } else {
      stack.push_back(n->child0.get());
      stack.push_back(n->child1.get());
    }
  }
  return Status::OK();
}

series::SaxRegion AdsIndex::NodeRegion(const AdsNode& node) const {
  return series::RegionFromPrefix(
      node.prefix,
      std::span<const uint8_t>(node.prefix_bits.data(),
                               options_.sax.num_segments),
      options_.sax);
}

Status AdsIndex::EvaluateLeaf(const AdsNode& leaf,
                              const seqtable::SearchContext& ctx,
                              const SearchOptions& options,
                              int max_verifications, SearchResult* best) {
  std::vector<IndexEntry> entries;
  std::vector<float> payloads;
  COCONUT_RETURN_NOT_OK(LoadLeafEntries(leaf, &entries, &payloads));
  if (ctx.counters != nullptr) ++ctx.counters->leaves_visited;
  return seqtable::EvaluateCandidates(ctx, options, entries, payloads,
                                      options_.materialized,
                                      max_verifications, best);
}

Result<SearchResult> AdsIndex::ApproxSearch(std::span<const float> query,
                                            const SearchOptions& options,
                                            core::QueryCounters* counters) {
  SearchResult best;
  if (root_children_.empty()) return best;

  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);
  const SaxWord word = series::ComputeSaxFromPaa(ctx.query_paa, options_.sax);

  AdsNode* leaf = DescendToLeaf(word, /*create_root=*/false);
  if (leaf == nullptr) {
    // No root child covers the query's first-bit pattern; fall back to the
    // subtree with the smallest lower bound (ADS+'s approximate fallback).
    double best_lb = std::numeric_limits<double>::infinity();
    AdsNode* fallback = nullptr;
    for (auto& [mask, child] : root_children_) {
      const double lb =
          series::MinDistSquared(ctx.query_paa, NodeRegion(*child),
                                 options_.sax);
      if (lb < best_lb) {
        best_lb = lb;
        fallback = child.get();
      }
    }
    while (fallback != nullptr && !fallback->is_leaf) {
      // Descend toward the closer child.
      const double lb0 = series::MinDistSquared(
          ctx.query_paa, NodeRegion(*fallback->child0), options_.sax);
      const double lb1 = series::MinDistSquared(
          ctx.query_paa, NodeRegion(*fallback->child1), options_.sax);
      fallback = lb0 <= lb1 ? fallback->child0.get() : fallback->child1.get();
    }
    leaf = fallback;
  }
  if (leaf == nullptr) return best;
  COCONUT_RETURN_NOT_OK(EvaluateLeaf(*leaf, ctx, options,
                                     options.approx_candidates, &best));
  return best;
}

Result<SearchResult> AdsIndex::ExactSearch(std::span<const float> query,
                                           const SearchOptions& options,
                                           core::QueryCounters* counters) {
  COCONUT_ASSIGN_OR_RETURN(SearchResult best,
                           ApproxSearch(query, options, counters));
  if (root_children_.empty()) return best;

  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);

  using Item = std::pair<double, AdsNode*>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (auto& [mask, child] : root_children_) {
    heap.emplace(series::MinDistSquared(ctx.query_paa, NodeRegion(*child),
                                        options_.sax),
                 child.get());
  }
  while (!heap.empty()) {
    auto [lb, node] = heap.top();
    heap.pop();
    if (lb >= best.distance_sq) break;  // Everything else is farther.
    if (node->is_leaf) {
      COCONUT_RETURN_NOT_OK(
          EvaluateLeaf(*node, ctx, options, /*max_verifications=*/-1, &best));
    } else {
      heap.emplace(series::MinDistSquared(ctx.query_paa,
                                          NodeRegion(*node->child0),
                                          options_.sax),
                   node->child0.get());
      heap.emplace(series::MinDistSquared(ctx.query_paa,
                                          NodeRegion(*node->child1),
                                          options_.sax),
                   node->child1.get());
    }
  }
  return best;
}

Result<std::vector<SearchResult>> AdsIndex::KnnSearch(
    std::span<const float> query, size_t k, const SearchOptions& options,
    core::QueryCounters* counters) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  seqtable::KnnCollector collector(k);
  if (root_children_.empty()) return collector.Take();

  std::vector<float> paa_storage;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa_storage, raw_, counters);

  using Item = std::pair<double, AdsNode*>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (auto& [mask, child] : root_children_) {
    heap.emplace(series::MinDistSquared(ctx.query_paa, NodeRegion(*child),
                                        options_.sax),
                 child.get());
  }
  const size_t len = options_.sax.series_length;
  while (!heap.empty()) {
    auto [lb, node] = heap.top();
    heap.pop();
    if (lb >= collector.bound()) break;
    if (!node->is_leaf) {
      heap.emplace(series::MinDistSquared(ctx.query_paa,
                                          NodeRegion(*node->child0),
                                          options_.sax),
                   node->child0.get());
      heap.emplace(series::MinDistSquared(ctx.query_paa,
                                          NodeRegion(*node->child1),
                                          options_.sax),
                   node->child1.get());
      continue;
    }
    std::vector<IndexEntry> entries;
    std::vector<float> payloads;
    COCONUT_RETURN_NOT_OK(LoadLeafEntries(*node, &entries, &payloads));
    if (counters != nullptr) ++counters->leaves_visited;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!options.window.Contains(entries[i].timestamp)) continue;
      const SaxWord word =
          series::DeinterleaveKey(entries[i].key, options_.sax);
      if (series::MinDistSquaredToSax(ctx.query_paa, word, options_.sax) >=
          collector.bound()) {
        continue;
      }
      SearchResult candidate;
      candidate.found = true;
      candidate.series_id = entries[i].series_id;
      candidate.timestamp = entries[i].timestamp;
      if (options_.materialized) {
        candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
            query, std::span<const float>(payloads.data() + i * len, len),
            collector.bound());
      } else {
        std::vector<float> fetched(len);
        COCONUT_RETURN_NOT_OK(raw_->Get(entries[i].series_id, fetched));
        if (counters != nullptr) ++counters->raw_fetches;
        candidate.distance_sq = series::EuclideanSquaredEarlyAbandon(
            query, fetched, collector.bound());
      }
      collector.Offer(candidate);
    }
  }
  return collector.Take();
}

size_t AdsIndex::num_leaves() const {
  size_t count = 0;
  std::vector<const AdsNode*> stack;
  for (const auto& [mask, child] : root_children_) stack.push_back(child.get());
  while (!stack.empty()) {
    const AdsNode* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      ++count;
    } else {
      stack.push_back(n->child0.get());
      stack.push_back(n->child1.get());
    }
  }
  return count;
}

size_t AdsIndex::num_nodes() const {
  size_t count = 0;
  std::vector<const AdsNode*> stack;
  for (const auto& [mask, child] : root_children_) stack.push_back(child.get());
  while (!stack.empty()) {
    const AdsNode* n = stack.back();
    stack.pop_back();
    ++count;
    if (!n->is_leaf) {
      stack.push_back(n->child0.get());
      stack.push_back(n->child1.get());
    }
  }
  return count;
}

uint64_t AdsIndex::total_file_bytes() const {
  uint64_t total = 0;
  std::vector<const AdsNode*> stack;
  for (const auto& [mask, child] : root_children_) stack.push_back(child.get());
  while (!stack.empty()) {
    const AdsNode* n = stack.back();
    stack.pop_back();
    if (n->is_leaf) {
      if (n->file != nullptr) total += n->file->size_bytes();
    } else {
      stack.push_back(n->child0.get());
      stack.push_back(n->child1.get());
    }
  }
  return total;
}

}  // namespace ads
}  // namespace coconut
