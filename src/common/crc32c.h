#ifndef COCONUT_COMMON_CRC32C_H_
#define COCONUT_COMMON_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace coconut {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) over
/// a byte range. Table-driven software implementation — the WAL frames it
/// protects are small relative to the fdatasync that follows, so a
/// hardware (SSE4.2) variant would not move the commit latency needle.
/// The parameterization matches RFC 3720 / iSCSI, so fixtures can be
/// cross-checked against any standard CRC-32C implementation.
namespace crc32c_detail {

inline const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32c_detail

/// Extends a running CRC-32C with `size` bytes. Start a fresh computation
/// with `crc = 0`; chained calls over split buffers equal one call over
/// the concatenation.
inline uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto& table = crc32c_detail::Table();
  const auto* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace coconut

#endif  // COCONUT_COMMON_CRC32C_H_
