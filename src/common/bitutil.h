#ifndef COCONUT_COMMON_BITUTIL_H_
#define COCONUT_COMMON_BITUTIL_H_

#include <cstdint>

namespace coconut {
namespace bitutil {

/// Extracts bit `pos` (0 = most significant of an 8-bit symbol window of
/// width `width`) from `value`.
inline uint8_t GetBitMsbFirst(uint64_t value, int width, int pos) {
  return static_cast<uint8_t>((value >> (width - 1 - pos)) & 1ULL);
}

/// Sets the bit at MSB-first position `pos` within a `width`-bit window.
inline uint64_t SetBitMsbFirst(uint64_t value, int width, int pos) {
  return value | (1ULL << (width - 1 - pos));
}

/// Number of 64-bit words needed to hold `bits` bits.
inline int WordsForBits(int bits) { return (bits + 63) / 64; }

}  // namespace bitutil
}  // namespace coconut

#endif  // COCONUT_COMMON_BITUTIL_H_
