#include "common/status.h"

namespace coconut {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnauthenticated:
      return "Unauthenticated";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace coconut
