#ifndef COCONUT_COMMON_RNG_H_
#define COCONUT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>

namespace coconut {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256**, Blackman & Vigna). Used by every workload generator so
/// experiments are reproducible run to run.
class Rng {
 public:
  /// Seeds the generator; any seed (including 0) yields a valid stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return NextUint64() % bound; }

  /// Standard normal deviate (Box-Muller; one value per call, cached pair).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_RNG_H_
