#ifndef COCONUT_COMMON_STATUS_H_
#define COCONUT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace coconut {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kResourceExhausted,
  kNotSupported,
  kInternal,
  kUnauthenticated,
  /// Durable state exists but cannot be recovered faithfully (corrupt
  /// write-ahead log body, unrestorable checkpoint manifest). Distinct
  /// from kIoError: the device answered, the bytes are wrong.
  kDataLoss,
  /// A required remote peer cannot be reached (connect/request timeout,
  /// connection refused, shard process dead). Retrying later may
  /// succeed; the local state is intact. Maps to HTTP 503.
  kUnavailable,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. Library code reports failures
/// through Status/Result rather than exceptions (Google style).
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message describing the failure site.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is undefined; callers must check ok() first (the
/// COCONUT_ASSIGN_OR_RETURN macro does this).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  T& value() { return std::get<T>(payload_); }
  const T& value() const { return std::get<T>(payload_); }

  /// Moves the value out of the result.
  T TakeValue() { return std::move(std::get<T>(payload_)); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace coconut

/// Propagates a non-OK Status to the caller.
#define COCONUT_RETURN_NOT_OK(expr)               \
  do {                                            \
    ::coconut::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (false)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure propagates the Status.
#define COCONUT_ASSIGN_OR_RETURN(lhs, expr)       \
  auto COCONUT_CONCAT_(_res_, __LINE__) = (expr); \
  if (!COCONUT_CONCAT_(_res_, __LINE__).ok())     \
    return COCONUT_CONCAT_(_res_, __LINE__).status(); \
  lhs = COCONUT_CONCAT_(_res_, __LINE__).TakeValue()

#define COCONUT_CONCAT_IMPL_(a, b) a##b
#define COCONUT_CONCAT_(a, b) COCONUT_CONCAT_IMPL_(a, b)

#endif  // COCONUT_COMMON_STATUS_H_
