#ifndef COCONUT_COMMON_THREAD_POOL_H_
#define COCONUT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coconut {

/// Fixed-size worker pool for independent tasks (batched queries, parallel
/// run generation drivers). Tasks must not throw; error propagation happens
/// through whatever state the task closes over.
class ThreadPool {
 public:
  /// `threads` is clamped to at least 1.
  explicit ThreadPool(size_t threads) {
    const size_t n = threads == 0 ? 1 : threads;
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
      queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --outstanding_;
      }
      idle_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_THREAD_POOL_H_
