#ifndef COCONUT_COMMON_THREAD_POOL_H_
#define COCONUT_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coconut {

/// Fixed-size worker pool for independent tasks (batched queries, parallel
/// run generation drivers). Tasks must not throw; error propagation happens
/// through whatever state the task closes over.
class ThreadPool {
 public:
  /// `threads` is clamped to at least 1.
  explicit ThreadPool(size_t threads) {
    const size_t n = threads == 0 ? 1 : threads;
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++outstanding_;
      queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and drained.
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --outstanding_;
      }
      idle_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t outstanding_ = 0;
  bool stop_ = false;
};

/// Counts in-flight deferred tasks so a producer can block until a batch it
/// spawned (possibly across several pools) has fully completed.
class WaitGroup {
 public:
  void Add(size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    // Notify while holding the lock: a waiter may destroy this object the
    // moment Wait() returns, so the notifier must not touch cv_ after the
    // count is observably zero.
    std::lock_guard<std::mutex> lock(mu_);
    --count_;
    if (count_ == 0) cv_.notify_all();
  }

  /// Blocks until the count returns to zero.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t count_ = 0;
};

/// FIFO strand over a shared ThreadPool: tasks submitted to one executor
/// run one at a time, in submission order, on whatever pool worker is free.
/// This is how the streaming indexes defer seals, flushes and merge
/// cascades — ingestion enqueues and returns, the strand preserves the
/// exact sequential ordering the merge-determinism guarantees rely on, and
/// several indexes share one pool without interleaving their own work.
///
/// The executor must outlive every submitted task; the destructor drains.
class SerialExecutor {
 public:
  explicit SerialExecutor(ThreadPool* pool) : pool_(pool) {}

  ~SerialExecutor() { Drain(); }

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  /// Enqueues one task after everything already submitted. Never blocks on
  /// the task's execution.
  void Submit(std::function<void()> task) {
    bool schedule = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
      if (!running_) {
        running_ = true;
        schedule = true;
      }
    }
    if (schedule) {
      pool_->Submit([this] { RunLoop(); });
    }
  }

  /// Blocks until every submitted task has finished (the drain barrier
  /// behind StreamingIndex::FlushAll).
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
  }

  /// Tasks submitted but not yet finished (includes the one running).
  size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size() + (running_ ? 1 : 0);
  }

 private:
  void RunLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty()) {
          running_ = false;
          idle_cv_.notify_all();
          return;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  bool running_ = false;
};

/// Process-wide pool for background streaming work (seals, buffer flushes,
/// merge cascades). Every async index that is not handed an explicit pool
/// shares this one, so a server full of streams contends for a bounded set
/// of workers instead of spawning threads per index.
inline ThreadPool* SharedBackgroundPool() {
  static ThreadPool pool(
      std::max<size_t>(2, std::thread::hardware_concurrency()));
  return &pool;
}

}  // namespace coconut

#endif  // COCONUT_COMMON_THREAD_POOL_H_
