#ifndef COCONUT_COMMON_JSON_H_
#define COCONUT_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace coconut {

/// Streaming JSON writer producing compact, valid JSON. The Palm algorithms
/// server serializes every response through this class, mirroring the
/// GUI<->server JSON protocol of the paper without an HTTP transport.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("ctree");
///   w.Key("seconds"); w.Double(1.25);
///   w.EndObject();
///   std::string payload = w.TakeString();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one value.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call.
  void Field(const std::string& name, const std::string& value) {
    Key(name);
    String(value);
  }
  void Field(const std::string& name, int64_t value) {
    Key(name);
    Int(value);
  }
  void Field(const std::string& name, uint64_t value) {
    Key(name);
    Uint(value);
  }
  void Field(const std::string& name, double value) {
    Key(name);
    Double(value);
  }
  void Field(const std::string& name, bool value) {
    Key(name);
    Bool(value);
  }

  /// Returns the accumulated JSON text and resets the writer.
  std::string TakeString();

  /// Read-only view of the buffer (for tests).
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  static void AppendEscaped(std::string* out, const std::string& s);

  std::string out_;
  // Tracks whether a value was already emitted at each nesting depth, so a
  // comma is written before subsequent siblings.
  std::vector<bool> needs_comma_{false};
  bool pending_key_ = false;
};

}  // namespace coconut

#endif  // COCONUT_COMMON_JSON_H_
