#ifndef COCONUT_COMMON_JSON_H_
#define COCONUT_COMMON_JSON_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace coconut {

/// Streaming JSON writer producing compact, valid JSON. The Palm algorithms
/// server serializes every response through this class, mirroring the
/// GUI<->server JSON protocol of the paper without an HTTP transport.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("name"); w.String("ctree");
///   w.Key("seconds"); w.Double(1.25);
///   w.EndObject();
///   std::string payload = w.TakeString();
class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be followed by exactly one value.
  void Key(const std::string& name);

  void String(const std::string& value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call.
  void Field(const std::string& name, const std::string& value) {
    Key(name);
    String(value);
  }
  void Field(const std::string& name, int64_t value) {
    Key(name);
    Int(value);
  }
  void Field(const std::string& name, uint64_t value) {
    Key(name);
    Uint(value);
  }
  void Field(const std::string& name, double value) {
    Key(name);
    Double(value);
  }
  void Field(const std::string& name, bool value) {
    Key(name);
    Bool(value);
  }

  /// Returns the accumulated JSON text and resets the writer.
  std::string TakeString();

  /// Read-only view of the buffer (for tests).
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  static void AppendEscaped(std::string* out, const std::string& s);

  std::string out_;
  // Tracks whether a value was already emitted at each nesting depth, so a
  // comma is written before subsequent siblings.
  std::vector<bool> needs_comma_{false};
  bool pending_key_ = false;
};

/// A parsed JSON document — the read-side counterpart of JsonWriter. The
/// Palm service layer parses every wire request into a JsonValue before
/// converting it to a typed request struct, so malformed input is rejected
/// in one place with one error shape.
///
/// Numbers remember how they were spelled: integer literals that fit are
/// held as int64/uint64 (ids and byte counts round-trip exactly), anything
/// else as double. AsDouble()/AsInt64()/AsUint64() convert across the three
/// representations when the value is exactly representable.
///
/// All-numeric arrays — the dominant shape on this wire (series matrices,
/// query vectors, timestamp columns, heat-map rows) — are held in a packed
/// representation (kNumArray): one double plus a one-byte spelling tag per
/// element instead of a full JsonValue node (~160 bytes each), cutting the
/// DOM for a parsed series matrix by more than an order of magnitude. An
/// integer element participates only when its value survives the double
/// round-trip (|v| <= 2^53); otherwise the whole array falls back to nodes
/// so AsInt64/AsUint64 and Dump stay exact. The spelling tags make
/// Dump() byte-identical to the node form. Packed arrays answer
/// is_array(), array_size() and the element accessors like node arrays,
/// but array() itself — a reference into node storage — returns an empty
/// vector for them: iterate with array_size()/element accessors (or the
/// packed_numbers() fast path) instead.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject, kNumArray };

  /// How a packed numeric element was spelled (drives exact re-emission).
  enum class NumTag : uint8_t { kInt = 0, kUint = 1, kDouble = 2 };

  using Array = std::vector<JsonValue>;
  /// Object members in document order (duplicate keys rejected at parse).
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  JsonValue() = default;
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeInt(int64_t v);
  static JsonValue MakeUint(uint64_t v);
  static JsonValue MakeDouble(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(Array v);
  static JsonValue MakeObject(Object v);
  /// Packed numeric array; data/tags are parallel and every tagged integer
  /// must be exactly representable as double (the parser guarantees this).
  static JsonValue MakeNumArray(std::vector<double> data,
                                std::vector<uint8_t> tags);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const {
    return kind_ == Kind::kArray || kind_ == Kind::kNumArray;
  }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_packed_array() const { return kind_ == Kind::kNumArray; }

  /// Typed accessors; calling one on the wrong kind is a programming error
  /// (callers check kind()/is_*() first — the typed API layer does).
  bool bool_value() const { return bool_; }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  const Object& object() const { return object_; }
  Array& mutable_array() { return array_; }
  Object& mutable_object() { return object_; }

  /// Numeric conversions. AsDouble works for every numeric kind (with the
  /// usual precision loss for 64-bit extremes); the integer accessors fail
  /// with InvalidArgument when the value is not exactly representable
  /// (fractional, out of range, or negative for AsUint64).
  double AsDouble() const;
  Result<int64_t> AsInt64() const;
  Result<uint64_t> AsUint64() const;

  /// Uniform array element access, valid for both representations (node
  /// and packed). The element conversions follow the same rules as the
  /// scalar As* accessors.
  size_t array_size() const;
  bool element_is_number(size_t i) const;
  double NumberAt(size_t i) const;
  Result<int64_t> ElementAsInt64(size_t i) const;
  Result<uint64_t> ElementAsUint64(size_t i) const;
  /// Packed payload; empty for node arrays — fast path for consumers that
  /// only need the values as doubles (series matrices, query vectors).
  std::span<const double> packed_numbers() const {
    return kind_ == Kind::kNumArray ? std::span<const double>(num_data_)
                                    : std::span<const double>();
  }

  /// Approximate heap bytes retained by this DOM (recursive vector/string
  /// capacities; allocator headers and the root node itself excluded — a
  /// lower bound). Pins the packed-array memory win in tests.
  size_t DeepMemoryBytes() const;

  /// Object member lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Serializes this value through `writer` (compact form, same escaping
  /// as the rest of the server's output).
  void WriteTo(JsonWriter* writer) const;

  /// Compact serialization of this value.
  std::string Dump() const;

 private:
  /// Element i of a packed array materialized as a scalar node.
  JsonValue PackedElement(size_t i) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
  /// kNumArray payload: parallel value/spelling-tag columns.
  std::vector<double> num_data_;
  std::vector<uint8_t> num_tags_;
};

/// Parses one complete JSON document (trailing non-whitespace is an
/// error). Accepts the full JSON grammar: nested arrays/objects, string
/// escapes including \uXXXX (UTF-16 surrogate pairs are combined and
/// re-encoded as UTF-8), and int/uint/double numeric literals. Duplicate
/// object keys and documents nested deeper than 128 levels are rejected —
/// a wire-facing parser fails loudly instead of guessing.
Result<JsonValue> JsonParse(std::string_view text);

}  // namespace coconut

#endif  // COCONUT_COMMON_JSON_H_
