#include "common/json.h"

#include <cerrno>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <locale.h>  // NOLINT: newlocale/strtod_l need the POSIX header.
#include <unordered_set>

namespace coconut {

namespace {

/// Parses a double from a pre-validated JSON number token, independent of
/// the process locale. strtod honors LC_NUMERIC, so a host locale with a
/// ',' decimal separator would silently mis-parse every wire double (stop
/// at the '.'); std::from_chars is locale-free by definition. The
/// locale-pinned strtod_l fallback covers toolchains without
/// floating-point from_chars and the out-of-range edge (where it
/// reproduces classic strtod results: ±HUGE_VAL on overflow, ±0 on
/// underflow — the caller's isfinite check rejects the former).
bool ParseDoubleToken(const char* begin, const char* end, double* out) {
#if defined(__cpp_lib_to_chars)
  {
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec == std::errc() && ptr == end) {
      *out = value;
      return true;
    }
  }
#endif
  static const locale_t c_locale =
      newlocale(LC_ALL_MASK, "C", static_cast<locale_t>(nullptr));
  char* stop = nullptr;
  errno = 0;
  const double value =
      c_locale != static_cast<locale_t>(nullptr)
          ? strtod_l(begin, &stop, c_locale)
          : std::strtod(begin, &stop);
  if (stop != end) return false;
  *out = value;
  return true;
}

}  // namespace

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
  if (!needs_comma_.empty()) needs_comma_.back() = true;
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(&out_, name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(&out_, value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf literal.
    return;
  }
  char buf[64];
#if defined(__cpp_lib_to_chars)
  // Shortest round-trip form: parsing the emitted bytes recovers the
  // exact double. The distributed coordinator folds query distances and
  // stats read back off this wire, so lossy formatting here would break
  // the bit-for-bit equivalence with a single-process deployment (and it
  // is locale-proof, unlike snprintf).
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc()) {
    out_.append(buf, ptr);
    return;
  }
#endif
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Locale-pinned fallback: undo a ',' decimal separator if LC_NUMERIC
  // slipped one in.
  for (char* p = buf; *p != '\0'; ++p) {
    if (*p == ',') *p = '.';
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::TakeString() {
  std::string result = std::move(out_);
  out_.clear();
  needs_comma_.assign(1, false);
  pending_key_ = false;
  return result;
}

// ----------------------------------------------------------- JsonValue

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::MakeInt(int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::MakeUint(uint64_t v) {
  JsonValue j;
  j.kind_ = Kind::kUint;
  j.uint_ = v;
  return j;
}

JsonValue JsonValue::MakeDouble(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::MakeArray(Array v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(v);
  return j;
}

JsonValue JsonValue::MakeObject(Object v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(v);
  return j;
}

JsonValue JsonValue::MakeNumArray(std::vector<double> data,
                                  std::vector<uint8_t> tags) {
  JsonValue j;
  j.kind_ = Kind::kNumArray;
  j.num_data_ = std::move(data);
  j.num_tags_ = std::move(tags);
  return j;
}

JsonValue JsonValue::PackedElement(size_t i) const {
  const double d = num_data_[i];
  switch (static_cast<NumTag>(num_tags_[i])) {
    case NumTag::kInt:
      return MakeInt(static_cast<int64_t>(d));
    case NumTag::kUint:
      return MakeUint(static_cast<uint64_t>(d));
    case NumTag::kDouble:
      break;
  }
  return MakeDouble(d);
}

size_t JsonValue::array_size() const {
  return kind_ == Kind::kNumArray ? num_data_.size() : array_.size();
}

bool JsonValue::element_is_number(size_t i) const {
  return kind_ == Kind::kNumArray ? true : array_[i].is_number();
}

double JsonValue::NumberAt(size_t i) const {
  return kind_ == Kind::kNumArray ? num_data_[i] : array_[i].AsDouble();
}

Result<int64_t> JsonValue::ElementAsInt64(size_t i) const {
  return kind_ == Kind::kNumArray ? PackedElement(i).AsInt64()
                                  : array_[i].AsInt64();
}

Result<uint64_t> JsonValue::ElementAsUint64(size_t i) const {
  return kind_ == Kind::kNumArray ? PackedElement(i).AsUint64()
                                  : array_[i].AsUint64();
}

size_t JsonValue::DeepMemoryBytes() const {
  // libstdc++ keeps strings up to 15 chars inline; longer ones own a heap
  // block of capacity+1 bytes. Close enough for the bound this provides.
  auto string_heap = [](const std::string& s) -> size_t {
    return s.capacity() > 15 ? s.capacity() + 1 : 0;
  };
  size_t bytes = string_heap(string_);
  bytes += num_data_.capacity() * sizeof(double);
  bytes += num_tags_.capacity();
  bytes += array_.capacity() * sizeof(JsonValue);
  for (const JsonValue& v : array_) bytes += v.DeepMemoryBytes();
  bytes += object_.capacity() * sizeof(Member);
  for (const Member& m : object_) {
    bytes += string_heap(m.first);
    bytes += m.second.DeepMemoryBytes();
  }
  return bytes;
}

double JsonValue::AsDouble() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kDouble:
      return double_;
    default:
      return 0.0;
  }
}

Result<int64_t> JsonValue::AsInt64() const {
  switch (kind_) {
    case Kind::kInt:
      return int_;
    case Kind::kUint:
      if (uint_ > static_cast<uint64_t>(INT64_MAX)) {
        return Status::InvalidArgument("number exceeds int64 range");
      }
      return static_cast<int64_t>(uint_);
    case Kind::kDouble: {
      const double d = double_;
      const int64_t as_int = static_cast<int64_t>(d);
      if (d < -9.2233720368547758e18 || d >= 9.2233720368547758e18 ||
          static_cast<double>(as_int) != d) {
        return Status::InvalidArgument("number is not an exact int64");
      }
      return as_int;
    }
    default:
      return Status::InvalidArgument("value is not a number");
  }
}

Result<uint64_t> JsonValue::AsUint64() const {
  switch (kind_) {
    case Kind::kInt:
      if (int_ < 0) {
        return Status::InvalidArgument("negative number where uint expected");
      }
      return static_cast<uint64_t>(int_);
    case Kind::kUint:
      return uint_;
    case Kind::kDouble: {
      const double d = double_;
      if (d < 0.0 || d >= 1.8446744073709552e19) {
        return Status::InvalidArgument("number exceeds uint64 range");
      }
      const uint64_t as_uint = static_cast<uint64_t>(d);
      if (static_cast<double>(as_uint) != d) {
        return Status::InvalidArgument("number is not an exact uint64");
      }
      return as_uint;
    }
    default:
      return Status::InvalidArgument("value is not a number");
  }
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : object_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::WriteTo(JsonWriter* writer) const {
  switch (kind_) {
    case Kind::kNull:
      writer->Null();
      break;
    case Kind::kBool:
      writer->Bool(bool_);
      break;
    case Kind::kInt:
      writer->Int(int_);
      break;
    case Kind::kUint:
      writer->Uint(uint_);
      break;
    case Kind::kDouble:
      writer->Double(double_);
      break;
    case Kind::kString:
      writer->String(string_);
      break;
    case Kind::kArray:
      writer->BeginArray();
      for (const JsonValue& v : array_) v.WriteTo(writer);
      writer->EndArray();
      break;
    case Kind::kNumArray:
      // The spelling tags re-emit each element exactly as the node form
      // would have, so packing never changes serialized output.
      writer->BeginArray();
      for (size_t i = 0; i < num_data_.size(); ++i) {
        switch (static_cast<NumTag>(num_tags_[i])) {
          case NumTag::kInt:
            writer->Int(static_cast<int64_t>(num_data_[i]));
            break;
          case NumTag::kUint:
            writer->Uint(static_cast<uint64_t>(num_data_[i]));
            break;
          case NumTag::kDouble:
            writer->Double(num_data_[i]);
            break;
        }
      }
      writer->EndArray();
      break;
    case Kind::kObject:
      writer->BeginObject();
      for (const Member& m : object_) {
        writer->Key(m.first);
        m.second.WriteTo(writer);
      }
      writer->EndObject();
      break;
  }
}

std::string JsonValue::Dump() const {
  JsonWriter w;
  WriteTo(&w);
  return w.TakeString();
}

// -------------------------------------------------------------- parser

namespace {

constexpr int kMaxParseDepth = 128;

/// Recursive-descent parser over the input span. Errors carry the byte
/// offset of the failure so a malformed wire request is diagnosable.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    COCONUT_RETURN_NOT_OK(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxParseDepth) return Fail("document nested too deeply");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        COCONUT_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        COCONUT_RETURN_NOT_OK(Literal("true"));
        *out = JsonValue::MakeBool(true);
        return Status::OK();
      case 'f':
        COCONUT_RETURN_NOT_OK(Literal("false"));
        *out = JsonValue::MakeBool(false);
        return Status::OK();
      case 'n':
        COCONUT_RETURN_NOT_OK(Literal("null"));
        *out = JsonValue::MakeNull();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    JsonValue::Object members;
    // Duplicate detection must stay O(1) per key: a linear scan over the
    // members would let one size-capped request with millions of keys pin
    // a parser thread for minutes (quadratic CPU DoS). The set holds
    // copies because vector growth moves the member strings.
    std::unordered_set<std::string> seen;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      COCONUT_RETURN_NOT_OK(ParseString(&key));
      if (!seen.insert(key).second) {
        return Fail("duplicate object key '" + key + "'");
      }
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      COCONUT_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  /// True when `v` can join a packed numeric array without changing any
  /// observable behavior: doubles always; int/uint only when the value
  /// survives the double round-trip (|v| <= 2^53), so the exact integer
  /// accessors and Dump() spelling are preserved.
  static bool PackableNumber(const JsonValue& v, double* data, uint8_t* tag) {
    switch (v.kind()) {
      case JsonValue::Kind::kDouble:
        *data = v.AsDouble();
        *tag = static_cast<uint8_t>(JsonValue::NumTag::kDouble);
        return true;
      case JsonValue::Kind::kInt: {
        const int64_t x = v.AsInt64().value();
        if (x < -(int64_t{1} << 53) || x > (int64_t{1} << 53)) return false;
        *data = static_cast<double>(x);
        *tag = static_cast<uint8_t>(JsonValue::NumTag::kInt);
        return true;
      }
      case JsonValue::Kind::kUint: {
        const uint64_t x = v.AsUint64().value();
        if (x > (uint64_t{1} << 53)) return false;
        *data = static_cast<double>(x);
        *tag = static_cast<uint8_t>(JsonValue::NumTag::kUint);
        return true;
      }
      default:
        return false;
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    // Optimistically pack into the flat numeric representation — the
    // dominant wire shape (series matrices, query vectors) would
    // otherwise cost a full JsonValue node per number. The first element
    // that doesn't fit demotes everything parsed so far to nodes.
    std::vector<double> data;
    std::vector<uint8_t> tags;
    bool packed = true;
    JsonValue::Array elements;
    SkipWhitespace();
    if (Consume(']')) {
      // Empty arrays stay node-backed (nothing to pack).
      *out = JsonValue::MakeArray(std::move(elements));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      COCONUT_RETURN_NOT_OK(ParseValue(depth + 1, &value));
      double d = 0.0;
      uint8_t tag = 0;
      if (packed && PackableNumber(value, &d, &tag)) {
        data.push_back(d);
        tags.push_back(tag);
      } else {
        if (packed) {
          packed = false;
          elements.reserve(data.size() + 1);
          for (size_t i = 0; i < data.size(); ++i) {
            switch (static_cast<JsonValue::NumTag>(tags[i])) {
              case JsonValue::NumTag::kInt:
                elements.push_back(
                    JsonValue::MakeInt(static_cast<int64_t>(data[i])));
                break;
              case JsonValue::NumTag::kUint:
                elements.push_back(
                    JsonValue::MakeUint(static_cast<uint64_t>(data[i])));
                break;
              case JsonValue::NumTag::kDouble:
                elements.push_back(JsonValue::MakeDouble(data[i]));
                break;
            }
          }
          data.clear();
          tags.clear();
        }
        elements.push_back(std::move(value));
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = packed ? JsonValue::MakeNumArray(std::move(data), std::move(tags))
                  : JsonValue::MakeArray(std::move(elements));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c < 0x20) return Fail("raw control character in string");
      if (c != '\\') {
        *out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          uint32_t code = 0;
          COCONUT_RETURN_NOT_OK(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired UTF-16 high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            COCONUT_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid UTF-16 low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired UTF-16 low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign consumed; digits must follow.
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("invalid number");
    }
    // Leading zero must not be followed by another digit (JSON grammar).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      return Fail("leading zero in number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          *out = JsonValue::MakeInt(static_cast<int64_t>(v));
          return Status::OK();
        }
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && end == token.c_str() + token.size()) {
          *out = JsonValue::MakeUint(static_cast<uint64_t>(v));
          return Status::OK();
        }
      }
      // Fall through: integer literal wider than 64 bits -> double.
    }
    double d = 0.0;
    if (!ParseDoubleToken(token.c_str(), token.c_str() + token.size(), &d)) {
      return Fail("invalid number");
    }
    if (!std::isfinite(d)) return Fail("number out of double range");
    *out = JsonValue::MakeDouble(d);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return JsonParser(text).Parse();
}

void JsonWriter::AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace coconut
