#include "common/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace coconut {

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
  if (!needs_comma_.empty()) needs_comma_.back() = true;
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
}

void JsonWriter::Key(const std::string& name) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(&out_, name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_ += '"';
  AppendEscaped(&out_, value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_ += buf;
}

void JsonWriter::Double(double value) {
  MaybeComma();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no NaN/Inf literal.
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string JsonWriter::TakeString() {
  std::string result = std::move(out_);
  out_.clear();
  needs_comma_.assign(1, false);
  pending_key_ = false;
  return result;
}

void JsonWriter::AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace coconut
