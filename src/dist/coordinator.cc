#include "dist/coordinator.h"

#include <algorithm>
#include <thread>

#include "common/json.h"
#include "common/timer.h"
#include "dist/binary_codec.h"
#include "palm/shard_route.h"

namespace coconut {
namespace palm {
namespace dist {

namespace {

/// Mirrors the api.cc cap so a coordinator rejects oversized heat-map
/// requests with the same message a single-process service would.
constexpr uint64_t kMaxHeatMapBinsPerAxis = 4096;

/// Methods the coordinator front door understands, sorted. ingest_batch_bin
/// is listed even though it is selected by Content-Type, so curl users can
/// discover it from the unknown-method error.
const char* const kCoordinatorMethods[] = {
    "build_index",  "create_stream", "drain_stream",     "drop_dataset",
    "drop_index",   "ingest_batch",  "ingest_batch_bin", "list_indexes",
    "query",        "query_batch",   "recommend",        "register_dataset",
    "server_stats",
};

template <typename T>
Result<T> ParseShardBody(const ShardEndpoint& endpoint,
                         const Result<std::string>& raw) {
  if (!raw.ok()) return raw.status();
  Result<JsonValue> parsed = JsonParse(raw.value());
  if (!parsed.ok()) {
    return Status::Internal("shard " + endpoint.ToString() +
                            " returned malformed JSON: " +
                            parsed.status().message());
  }
  Result<T> typed = T::FromJson(parsed.value());
  if (!typed.ok()) {
    return Status::Internal("shard " + endpoint.ToString() +
                            " response did not parse: " +
                            typed.status().message());
  }
  return typed;
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  shards_.reserve(options_.shards.size());
  for (const ShardEndpoint& endpoint : options_.shards) {
    shards_.push_back(
        std::make_unique<ShardClient>(endpoint, options_.client));
  }
}

Coordinator::~Coordinator() = default;

Result<std::unique_ptr<Coordinator>> Coordinator::Create(
    CoordinatorOptions options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument(
        "coordinator requires at least one shard endpoint");
  }
  // Connections are lazy (first call), so a coordinator can come up
  // before its shards do.
  return std::unique_ptr<Coordinator>(new Coordinator(std::move(options)));
}

void Coordinator::EnableQueryCache(const api::QueryCacheOptions& options) {
  query_cache_ = std::make_unique<api::QueryCache>(options);
}

void Coordinator::ConfigureQuotas(const api::QuotaOptions& options) {
  quota_ = std::make_unique<api::QuotaEnforcer>(options);
}

api::ServerStatsResponse Coordinator::ServerStats() const {
  api::ServerStatsResponse response;
  if (query_cache_ != nullptr) {
    const api::QueryCacheStats cache = query_cache_->Snapshot();
    response.cache_enabled = true;
    response.cache_entries = cache.entries;
    response.cache_bytes = cache.bytes;
    response.cache_hits = cache.hits;
    response.cache_misses = cache.misses;
    response.cache_inserts = cache.inserts;
    response.cache_evictions = cache.evictions;
    response.cache_stale_drops = cache.stale_drops;
    response.cache_invalidations = cache.invalidations;
    response.cache_negative_enabled = query_cache_->negative_caching_enabled();
    response.cache_negative_hits = cache.negative_hits;
    response.cache_negative_inserts = cache.negative_inserts;
  }
  if (quota_ != nullptr) {
    const api::QuotaStats quota = quota_->Snapshot();
    response.quota_enabled = true;
    response.quota_admitted = quota.admitted;
    response.quota_throttled = quota.throttled;
    response.quota_unauthenticated = quota.unauthenticated;
  }
  response.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardClient::Health health = shard->health();
    api::ServerStatsResponse::ShardHealth entry;
    entry.endpoint = shard->endpoint().ToString();
    entry.healthy = health.healthy;
    entry.requests = health.requests;
    entry.failures = health.failures;
    entry.consecutive_failures = health.consecutive_failures;
    response.shards.push_back(std::move(entry));
  }
  return response;
}

std::shared_ptr<Coordinator::DistHandle> Coordinator::PinHandle(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = handles_.find(name);
  if (it == handles_.end() || it->second->building) return nullptr;
  return it->second;
}

Status Coordinator::CheckTopologySpec(const VariantSpec& spec) const {
  if (spec.num_shards != 1 && spec.num_shards != shards_.size()) {
    return Status::InvalidArgument(
        "spec num_shards " + std::to_string(spec.num_shards) +
        " conflicts with the coordinator topology of " +
        std::to_string(shards_.size()) +
        " shard servers (the topology defines the key-range split; use 1 "
        "or match it)");
  }
  return Status::OK();
}

std::vector<Result<std::string>> Coordinator::Scatter(
    const std::string& method,
    const std::vector<std::optional<std::string>>& params, bool idempotent,
    bool binary) {
  const size_t num_shards = shards_.size();
  std::vector<Result<std::string>> results;
  results.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    results.emplace_back(Status::Internal("shard not contacted"));
  }
  auto call_one = [&](size_t s) {
    if (!params[s].has_value()) return;
    results[s] = binary ? shards_[s]->CallBinaryIngest(*params[s])
                        : shards_[s]->Call(method, *params[s], idempotent);
  };
  if (num_shards == 1) {
    call_one(0);
    return results;
  }
  std::vector<std::thread> threads;
  threads.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) threads.emplace_back(call_one, s);
  for (std::thread& thread : threads) thread.join();
  return results;
}

std::vector<Result<std::string>> Coordinator::ScatterSame(
    const std::string& method, const std::string& params, bool idempotent) {
  std::vector<std::optional<std::string>> per_shard(shards_.size(), params);
  return Scatter(method, per_shard, idempotent);
}

void Coordinator::ScatterCleanup(
    const std::string& method,
    const std::vector<std::optional<std::string>>& params) {
  // Unwind path: the primary error is already decided; a shard that also
  // fails to clean up will surface on its next use instead.
  (void)Scatter(method, params, /*idempotent=*/false);
}

// ------------------------------------------------------------- datasets

Result<api::RegisterDatasetResponse> Coordinator::RegisterDataset(
    const api::RegisterDatasetRequest& request) {
  COCONUT_RETURN_NOT_OK(api::ValidateName(request.name, "dataset"));
  if (request.data.length() == 0) {
    return Status::InvalidArgument("dataset series length must be positive");
  }
  if (request.timestamps.has_value() &&
      request.timestamps->size() != request.data.size()) {
    return Status::InvalidArgument("one timestamp per series required");
  }
  // Staged RAW (un-normalized): shards z-normalize their slices on their
  // own register_dataset with the same function, so the stored bits match
  // the single-process path. The coordinator z-normalizes a private copy
  // per series only to route, at build time.
  Dataset dataset;
  dataset.data = request.data;
  if (request.timestamps.has_value()) {
    dataset.timestamps = *request.timestamps;
  } else {
    dataset.timestamps.resize(request.data.size());
    for (size_t i = 0; i < request.data.size(); ++i) {
      dataset.timestamps[i] = static_cast<int64_t>(i);
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (datasets_.count(request.name) != 0) {
    return Status::AlreadyExists("dataset '" + request.name +
                                 "' already registered");
  }
  datasets_[request.name] =
      std::make_shared<const Dataset>(std::move(dataset));
  api::RegisterDatasetResponse response;
  response.dataset = request.name;
  response.series = request.data.size();
  response.series_length = request.data.length();
  return response;
}

Result<api::DropDatasetResponse> Coordinator::DropDataset(
    const api::DropDatasetRequest& request) {
  // Datasets are staged at the coordinator only (shard-side copies are
  // dropped right after each build), so this is a local unregister.
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = datasets_.find(request.dataset);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + request.dataset +
                            "' not registered");
  }
  api::DropDatasetResponse response;
  response.dataset = request.dataset;
  response.dropped = true;
  response.series = it->second->data.size();
  datasets_.erase(it);
  return response;
}

// ---------------------------------------------------------- build_index

Result<api::BuildIndexReport> Coordinator::BuildIndex(
    const api::BuildIndexRequest& request) {
  COCONUT_RETURN_NOT_OK(api::ValidateName(request.index, "index"));
  COCONUT_RETURN_NOT_OK(CheckTopologySpec(request.spec));
  const size_t num_shards = shards_.size();
  std::shared_ptr<const Dataset> dataset;
  std::shared_ptr<DistHandle> handle;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = datasets_.find(request.dataset);
    if (it == datasets_.end()) {
      return Status::NotFound("dataset '" + request.dataset +
                              "' not registered");
    }
    if (static_cast<int>(it->second->data.length()) !=
        request.spec.sax.series_length) {
      return Status::InvalidArgument("spec series_length != dataset length");
    }
    dataset = it->second;
    if (handles_.count(request.index) != 0) {
      return Status::AlreadyExists("index '" + request.index +
                                   "' already exists");
    }
    handle = std::make_shared<DistHandle>();
    handle->spec = request.spec;
    handle->streaming = false;
    handles_[request.index] = handle;  // reserved: building=true
  }
  auto unregister = [&] {
    std::unique_lock<std::shared_mutex> lock(mu_);
    handles_.erase(request.index);
  };

  WallTimer timer;
  // Route every series by the invSAX key range of its z-normalized form —
  // the same split ShardedIndex uses, so shard s receives exactly the
  // rows the single-process wrapper's inner shard s would, in the same
  // order. Timestamps are sliced explicitly: the shard-side default would
  // number them by LOCAL ordinal, but the global dataset ordinal (or the
  // user's explicit stamps) is the contract.
  std::vector<api::RegisterDatasetRequest> slices;
  slices.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    api::RegisterDatasetRequest slice;
    slice.name = request.dataset;
    slice.data = series::SeriesCollection(dataset->data.length());
    slice.timestamps.emplace();
    slices.push_back(std::move(slice));
  }
  handle->local_to_global.assign(num_shards, {});
  std::vector<float> buf;
  for (size_t i = 0; i < dataset->data.size(); ++i) {
    buf.assign(dataset->data[i].begin(), dataset->data[i].end());
    series::ZNormalize(buf);
    const size_t s = ShardOfSeries(buf, request.spec.sax, num_shards);
    slices[s].data.Append(dataset->data[i]);
    slices[s].timestamps->push_back(dataset->timestamps[i]);
    handle->local_to_global[s].push_back(i);
  }
  handle->has_index.assign(num_shards, false);

  std::vector<std::optional<std::string>> register_params(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    // An empty slice cannot be registered remotely (and an empty inner
    // shard answers every query with not-found anyway): skip the shard.
    if (slices[s].data.size() == 0) continue;
    register_params[s] = slices[s].ToJsonString();
    handle->has_index[s] = true;
  }
  std::vector<Result<std::string>> registered =
      Scatter("register_dataset", register_params, /*idempotent=*/false);
  std::vector<std::optional<std::string>> cleanup_dataset(num_shards);
  const std::string drop_dataset_params =
      [&] {
        api::DropDatasetRequest drop;
        drop.dataset = request.dataset;
        return drop.ToJsonString();
      }();
  for (size_t s = 0; s < num_shards; ++s) {
    if (register_params[s].has_value() && registered[s].ok()) {
      cleanup_dataset[s] = drop_dataset_params;
    }
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (register_params[s].has_value() && !registered[s].ok()) {
      ScatterCleanup("drop_dataset", cleanup_dataset);
      unregister();
      return registered[s].status();
    }
  }

  VariantSpec shard_spec = request.spec;
  shard_spec.num_shards = 1;
  api::BuildIndexRequest shard_build;
  shard_build.index = request.index;
  shard_build.dataset = request.dataset;
  shard_build.spec = shard_spec;
  std::vector<std::optional<std::string>> build_params(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    if (handle->has_index[s]) build_params[s] = shard_build.ToJsonString();
  }
  std::vector<Result<std::string>> built =
      Scatter("build_index", build_params, /*idempotent=*/false);

  api::BuildIndexReport report;
  report.index = request.index;
  report.variant = VariantName(request.spec);
  report.dataset = request.dataset;
  report.shards = num_shards;
  Status failure = Status::OK();
  std::vector<std::optional<std::string>> cleanup_index(num_shards);
  const std::string drop_index_params = [&] {
    api::DropIndexRequest drop;
    drop.index = request.index;
    return drop.ToJsonString();
  }();
  for (size_t s = 0; s < num_shards; ++s) {
    if (!build_params[s].has_value()) continue;
    Result<api::BuildIndexReport> parsed =
        ParseShardBody<api::BuildIndexReport>(shards_[s]->endpoint(),
                                              built[s]);
    if (!parsed.ok()) {
      if (failure.ok()) failure = parsed.status();
      continue;
    }
    cleanup_index[s] = drop_index_params;
    const api::BuildIndexReport& shard_report = parsed.value();
    report.entries += shard_report.entries;
    report.index_bytes += shard_report.index_bytes;
    report.total_bytes += shard_report.total_bytes;
    report.io.Add(shard_report.io);
  }
  // The staged copies served their purpose either way: each shard's index
  // owns its data now (or the build is being unwound).
  ScatterCleanup("drop_dataset", cleanup_dataset);
  if (!failure.ok()) {
    ScatterCleanup("drop_index", cleanup_index);
    unregister();
    return failure;
  }
  report.build_seconds = timer.ElapsedSeconds();

  if (query_cache_ != nullptr) query_cache_->InvalidateIndex(request.index);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    handle->building = false;
  }
  return report;
}

// -------------------------------------------------------------- streams

Result<api::CreateStreamResponse> Coordinator::CreateStream(
    const api::CreateStreamRequest& request) {
  COCONUT_RETURN_NOT_OK(api::ValidateName(request.stream, "stream"));
  COCONUT_RETURN_NOT_OK(CheckTopologySpec(request.spec));
  const size_t num_shards = shards_.size();
  std::shared_ptr<DistHandle> handle;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (handles_.count(request.stream) != 0) {
      return Status::AlreadyExists("index '" + request.stream +
                                   "' already exists");
    }
    handle = std::make_shared<DistHandle>();
    handle->spec = request.spec;
    handle->streaming = true;
    handles_[request.stream] = handle;
  }

  // Each shard runs a complete unsharded streaming stack of the wrapped
  // variant (its own WAL when durable) — the process-boundary twin of
  // ShardedStreamingIndex's per-shard inner indexes. The timestamp policy
  // is forwarded as-is: the coordinator enforces it against the GLOBAL
  // watermark first, and a per-shard subsequence of a globally
  // nondecreasing sequence is nondecreasing, so the shard-local check
  // never fires spuriously (same layering as the single-process wrapper).
  VariantSpec shard_spec = request.spec;
  shard_spec.num_shards = 1;
  api::CreateStreamRequest shard_create;
  shard_create.stream = request.stream;
  shard_create.spec = shard_spec;
  std::vector<Result<std::string>> created =
      ScatterSame("create_stream", shard_create.ToJsonString(),
                  /*idempotent=*/false);

  api::CreateStreamResponse response;
  response.stream = request.stream;
  Status failure = Status::OK();
  std::vector<std::optional<std::string>> cleanup(num_shards);
  const std::string drop_params = [&] {
    api::DropIndexRequest drop;
    drop.index = request.stream;
    return drop.ToJsonString();
  }();
  for (size_t s = 0; s < num_shards; ++s) {
    Result<api::CreateStreamResponse> parsed =
        ParseShardBody<api::CreateStreamResponse>(shards_[s]->endpoint(),
                                                  created[s]);
    if (!parsed.ok()) {
      if (failure.ok()) failure = parsed.status();
      continue;
    }
    cleanup[s] = drop_params;
    response.variant = parsed.value().variant;
  }
  if (!failure.ok()) {
    ScatterCleanup("drop_index", cleanup);
    std::unique_lock<std::shared_mutex> lock(mu_);
    handles_.erase(request.stream);
    return failure;
  }

  handle->local_to_global.assign(num_shards, {});
  handle->has_index.assign(num_shards, true);
  if (query_cache_ != nullptr) query_cache_->InvalidateIndex(request.stream);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    handle->building = false;
  }
  return response;
}

Result<api::IngestBatchReport> Coordinator::IngestBatch(
    const api::IngestBatchRequest& request) {
  std::shared_ptr<DistHandle> handle = PinHandle(request.stream);
  if (handle == nullptr || !handle->streaming) {
    return Status::NotFound("stream '" + request.stream + "' not found");
  }
  if (request.timestamps.size() != request.batch.size()) {
    return Status::InvalidArgument("one timestamp per series required");
  }
  if (request.batch.size() > 0 &&
      static_cast<int>(request.batch.length()) !=
          handle->spec.sax.series_length) {
    return Status::InvalidArgument(
        "batch series length " + std::to_string(request.batch.length()) +
        " != stream series length " +
        std::to_string(handle->spec.sax.series_length));
  }
  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  WallTimer timer;
  const size_t num_shards = shards_.size();

  // Pass 1 — route, in batch order, against the provisional global
  // watermark and id counter. This replicates the single-process sharded
  // semantics exactly: a kStrict regression burns its global id and
  // rejects with the wrapper's message (the already-routed prefix is
  // still shipped, as the single-process path keeps its admitted prefix);
  // kClamp forwards the clamped timestamp.
  std::vector<api::IngestBatchRequest> sub;
  sub.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    api::IngestBatchRequest one;
    one.stream = request.stream;
    one.batch = series::SeriesCollection(handle->spec.sax.series_length);
    sub.push_back(std::move(one));
  }
  std::vector<std::vector<uint64_t>> pending(num_shards);
  uint64_t next_id = handle->next_series_id;
  int64_t watermark = handle->last_timestamp;
  const stream::TimestampPolicy policy = handle->spec.timestamp_policy;
  Status strict_reject = Status::OK();
  std::vector<float> buf;
  for (size_t i = 0; i < request.batch.size(); ++i) {
    int64_t timestamp = request.timestamps[i];
    if (policy == stream::TimestampPolicy::kStrict &&
        timestamp < watermark) {
      ++next_id;  // the rejected series burns its id, like the wrapper
      strict_reject = Status::InvalidArgument(
          "timestamp regression rejected by kStrict policy");
      break;
    }
    if (policy == stream::TimestampPolicy::kClamp) {
      timestamp = std::max(timestamp, watermark);
    }
    buf.assign(request.batch[i].begin(), request.batch[i].end());
    series::ZNormalize(buf);
    const size_t s = ShardOfSeries(buf, handle->spec.sax, num_shards);
    sub[s].batch.Append(request.batch[i]);  // RAW — the shard normalizes
    sub[s].timestamps.push_back(timestamp);
    pending[s].push_back(next_id++);
    if (policy != stream::TimestampPolicy::kPermissive) {
      watermark = std::max(watermark, timestamp);
    }
  }

  // Pass 2 — scatter. Every shard is contacted, even with an empty
  // sub-batch: the folded report's occupancy fields (total_entries,
  // partitions, ...) are sums of CURRENT per-shard stats, not deltas.
  std::vector<std::optional<std::string>> params(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    params[s] = options_.binary_ingest ? EncodeIngestFrame(sub[s])
                                       : sub[s].ToJsonString();
  }
  std::vector<Result<std::string>> raw =
      Scatter("ingest_batch", params, /*idempotent=*/false,
              options_.binary_ingest);

  // Pass 3 — gather. Mappings commit per shard for whatever prefix that
  // shard admitted, so queries keep translating every series that IS
  // ingested; global ids and the watermark commit regardless (burned ids
  // and a conservative watermark are the sharded contract).
  api::IngestBatchReport report;
  report.stream = request.stream;
  Status failure = Status::OK();
  Status partial = Status::OK();
  uint64_t admitted_total = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    Result<api::IngestBatchReport> parsed =
        ParseShardBody<api::IngestBatchReport>(shards_[s]->endpoint(),
                                               raw[s]);
    if (!parsed.ok()) {
      if (failure.ok()) failure = parsed.status();
      continue;
    }
    const api::IngestBatchReport& shard_report = parsed.value();
    const uint64_t sent = pending[s].size();
    const uint64_t admitted = std::min<uint64_t>(shard_report.ingested, sent);
    for (uint64_t j = 0; j < admitted; ++j) {
      handle->local_to_global[s].push_back(pending[s][j]);
    }
    admitted_total += admitted;
    if (admitted < sent && partial.ok()) {
      // The shard hit reject-mode backpressure mid-sub-batch and reported
      // its admitted prefix truthfully. The coordinator cannot splice a
      // cross-shard "prefix", so it surfaces a structured 429 naming the
      // shard; the rest of the batch IS applied (never un-ingested).
      partial = Status::ResourceExhausted(
          "shard " + shards_[s]->endpoint().ToString() + " admitted " +
          std::to_string(admitted) + " of " + std::to_string(sent) +
          " routed series (backpressure); other shards are fully "
          "applied — drain the stream and re-send the unadmitted series");
    }
    report.total_entries += shard_report.total_entries;
    report.partitions += shard_report.partitions;
    report.buffered += shard_report.buffered;
    report.pending_tasks += shard_report.pending_tasks;
    report.seals_completed += shard_report.seals_completed;
    report.merges_completed += shard_report.merges_completed;
    report.seals_inflight += shard_report.seals_inflight;
    report.ingest_stalls += shard_report.ingest_stalls;
    report.ingest_rejects += shard_report.ingest_rejects;
    report.stall_ms_p50 =
        std::max(report.stall_ms_p50, shard_report.stall_ms_p50);
    report.stall_ms_p99 =
        std::max(report.stall_ms_p99, shard_report.stall_ms_p99);
    report.io.Add(shard_report.io);
  }
  handle->next_series_id = next_id;
  handle->last_timestamp = watermark;
  ++handle->version;

  if (!failure.ok()) {
    if (failure.code() == StatusCode::kUnavailable) {
      return Status::Unavailable(
          failure.message() +
          "; the batch may be partially applied on surviving shards");
    }
    return failure;
  }
  if (!partial.ok()) return partial;
  if (!strict_reject.ok()) return strict_reject;
  report.ingested = admitted_total;
  report.seconds = timer.ElapsedSeconds();
  return report;
}

Result<api::DrainStreamReport> Coordinator::DrainStream(
    const api::DrainStreamRequest& request) {
  std::shared_ptr<DistHandle> handle = PinHandle(request.stream);
  if (handle == nullptr || !handle->streaming) {
    return Status::NotFound("stream '" + request.stream + "' not found");
  }
  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  WallTimer timer;
  api::DrainStreamRequest shard_drain;
  shard_drain.stream = request.stream;
  std::vector<Result<std::string>> raw = ScatterSame(
      "drain_stream", shard_drain.ToJsonString(), /*idempotent=*/true);

  api::DrainStreamReport report;
  report.stream = request.stream;
  report.drained = true;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<api::DrainStreamReport> parsed =
        ParseShardBody<api::DrainStreamReport>(shards_[s]->endpoint(),
                                               raw[s]);
    if (!parsed.ok()) {
      ++handle->version;
      if (parsed.status().code() == StatusCode::kUnavailable) {
        return Status::Unavailable(
            parsed.status().message() +
            "; surviving shards may already be drained");
      }
      return parsed.status();
    }
    const api::DrainStreamReport& shard_report = parsed.value();
    report.drained = report.drained && shard_report.drained;
    report.total_entries += shard_report.total_entries;
    report.partitions += shard_report.partitions;
    report.buffered += shard_report.buffered;
    report.pending_tasks += shard_report.pending_tasks;
    report.seals_completed += shard_report.seals_completed;
    report.merges_completed += shard_report.merges_completed;
    report.seals_inflight += shard_report.seals_inflight;
    report.ingest_stalls += shard_report.ingest_stalls;
    report.ingest_rejects += shard_report.ingest_rejects;
    report.stall_ms_p50 =
        std::max(report.stall_ms_p50, shard_report.stall_ms_p50);
    report.stall_ms_p99 =
        std::max(report.stall_ms_p99, shard_report.stall_ms_p99);
    report.index_bytes += shard_report.index_bytes;
    report.total_bytes += shard_report.total_bytes;
  }
  report.drain_seconds = timer.ElapsedSeconds();
  // Draining seals buffers and publishes partitions: the shard-side
  // snapshot versions moved, so cached answers stamped before the drain
  // must not be served after it.
  ++handle->version;
  return report;
}

// -------------------------------------------------------------- queries

Result<api::QueryReport> Coordinator::FoldShardReports(
    const api::QueryRequest& request, DistHandle* handle,
    const std::vector<std::pair<size_t, api::QueryReport>>& answers,
    bool degraded) const {
  api::QueryReport report;
  report.index = request.index;
  report.exact = request.exact;
  report.degraded = degraded;
  bool found = false;
  double best_distance = 0.0;
  uint64_t best_id = 0;
  int64_t best_timestamp = 0;
  for (const auto& [s, shard_report] : answers) {
    report.counters.Add(shard_report.counters);
    report.io.Add(shard_report.io);
    if (!shard_report.found) continue;
    if (shard_report.series_id >= handle->local_to_global[s].size()) {
      // A shard holds series this coordinator never mapped (e.g. a
      // recovered durable stream from a previous coordinator life):
      // refuse rather than answer with a mistranslated id.
      return Status::Internal(
          "shard " + shards_[s]->endpoint().ToString() +
          " returned local series id " +
          std::to_string(shard_report.series_id) +
          " outside the coordinator's id map (" +
          std::to_string(handle->local_to_global[s].size()) +
          " entries) — was the stream ingested through another "
          "coordinator?");
    }
    const uint64_t global_id =
        handle->local_to_global[s][shard_report.series_id];
    // Same tie-break as the single-process scatter-gather: nearest
    // distance, then the smaller global id.
    if (!found || shard_report.distance < best_distance ||
        (shard_report.distance == best_distance && global_id < best_id)) {
      found = true;
      best_distance = shard_report.distance;
      best_id = global_id;
      best_timestamp = shard_report.timestamp;
    }
  }
  report.found = found;
  if (found) {
    report.series_id = best_id;
    report.distance = best_distance;
    report.timestamp = best_timestamp;
  }
  return report;
}

Result<api::QueryReport> Coordinator::Query(const api::QueryRequest& request) {
  std::shared_ptr<DistHandle> handle = PinHandle(request.index);
  if (handle == nullptr) {
    return Status::NotFound("index '" + request.index + "' not found");
  }
  // Same boundary validation (and messages) as api::Service::Query.
  if (request.query.empty()) {
    return Status::InvalidArgument("query vector must not be empty");
  }
  if (static_cast<int>(request.query.size()) !=
      handle->spec.sax.series_length) {
    return Status::InvalidArgument(
        "query length " + std::to_string(request.query.size()) +
        " != index series length " +
        std::to_string(handle->spec.sax.series_length));
  }
  if (request.approx_candidates <= 0) {
    return Status::InvalidArgument("approx_candidates must be positive");
  }
  if (request.window.has_value() &&
      request.window->begin > request.window->end) {
    return Status::InvalidArgument(
        "query window begin must be <= end (got begin=" +
        std::to_string(request.window->begin) +
        ", end=" + std::to_string(request.window->end) + ")");
  }
  if (request.capture_heatmap) {
    if (request.heatmap_time_bins == 0 ||
        request.heatmap_location_bins == 0) {
      return Status::InvalidArgument("heatmap bins must be positive");
    }
    if (request.heatmap_time_bins > kMaxHeatMapBinsPerAxis ||
        request.heatmap_location_bins > kMaxHeatMapBinsPerAxis) {
      return Status::InvalidArgument(
          "heatmap bins exceed the maximum of " +
          std::to_string(kMaxHeatMapBinsPerAxis) + " per axis");
    }
    return Status::NotSupported(
        "heat maps are not captured for sharded indexes yet");
  }

  api::QueryCache* cache = query_cache_.get();
  const bool cacheable =
      cache != nullptr && api::QueryCache::Cacheable(request);
  std::string cache_key;
  if (cacheable) {
    cache_key = api::QueryCache::KeyFor(request);
    if (std::optional<api::QueryReport> hit =
            cache->Lookup(cache_key, handle->version)) {
      return *std::move(hit);
    }
  }

  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  const uint64_t version_before = handle->version;
  WallTimer timer;
  const std::string params = request.ToJsonString();
  std::vector<std::optional<std::string>> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (handle->has_index[s]) per_shard[s] = params;
  }
  std::vector<Result<std::string>> raw =
      Scatter("query", per_shard, /*idempotent=*/true);

  std::vector<std::pair<size_t, api::QueryReport>> answers;
  bool degraded = false;
  Status unavailable = Status::OK();
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!per_shard[s].has_value()) continue;
    Result<api::QueryReport> parsed =
        ParseShardBody<api::QueryReport>(shards_[s]->endpoint(), raw[s]);
    if (!parsed.ok()) {
      if (parsed.status().code() == StatusCode::kUnavailable &&
          options_.degraded_reads) {
        degraded = true;
        if (unavailable.ok()) unavailable = parsed.status();
        continue;
      }
      return parsed.status();
    }
    answers.emplace_back(s, std::move(parsed.value()));
  }
  if (degraded && answers.empty()) {
    // Degraded reads serve the SURVIVING ranges; with none left there is
    // nothing to serve.
    return unavailable;
  }
  COCONUT_ASSIGN_OR_RETURN(
      api::QueryReport report,
      FoldShardReports(request, handle.get(), answers, degraded));
  report.seconds = timer.ElapsedSeconds();
  // Never cache a degraded answer: it covers a subset of the key space,
  // and the version stamp does not move when the dead shard comes back.
  if (cacheable && !report.degraded && handle->version == version_before) {
    cache->Insert(cache_key, request.index, version_before, report);
  }
  return report;
}

api::QueryBatchResponse Coordinator::QueryBatch(
    const api::QueryBatchRequest& request) {
  const size_t num_queries = request.queries.size();
  api::QueryBatchResponse response;
  response.results.resize(num_queries);
  if (num_queries == 0) return response;
  const size_t num_shards = shards_.size();

  // One scatter of the WHOLE batch per shard (not one RPC per query):
  // each shard runs its positions through its own batched scan path and
  // answers positionally. Heatmap captures are stripped before
  // forwarding — an unsharded shard would happily capture one, but the
  // distributed answer is NotSupported, decided below.
  api::QueryBatchRequest forwarded = request;
  for (api::QueryRequest& query : forwarded.queries) {
    query.capture_heatmap = false;
  }
  std::vector<Result<std::string>> raw = ScatterSame(
      "query_batch", forwarded.ToJsonString(), /*idempotent=*/true);

  std::vector<std::optional<api::QueryBatchResponse>> shard_responses(
      num_shards);
  std::vector<Status> shard_status(num_shards, Status::OK());
  for (size_t s = 0; s < num_shards; ++s) {
    Result<api::QueryBatchResponse> parsed =
        ParseShardBody<api::QueryBatchResponse>(shards_[s]->endpoint(),
                                                raw[s]);
    if (!parsed.ok()) {
      shard_status[s] = parsed.status();
      continue;
    }
    if (parsed.value().results.size() != num_queries) {
      shard_status[s] = Status::Internal(
          "shard " + shards_[s]->endpoint().ToString() + " answered " +
          std::to_string(parsed.value().results.size()) + " of " +
          std::to_string(num_queries) + " batched queries");
      continue;
    }
    shard_responses[s] = std::move(parsed.value());
  }

  for (size_t i = 0; i < num_queries; ++i) {
    const api::QueryRequest& query = request.queries[i];
    api::QueryBatchResponse::Entry& entry = response.results[i];
    auto fail = [&entry](const Status& status) {
      entry.ok = false;
      entry.error = api::ApiError::FromStatus(status);
    };
    std::shared_ptr<DistHandle> handle = PinHandle(query.index);
    if (handle == nullptr) {
      fail(Status::NotFound("index '" + query.index + "' not found"));
      continue;
    }
    if (query.capture_heatmap) {
      fail(Status::NotSupported(
          "heat maps are not captured for sharded indexes yet"));
      continue;
    }
    std::vector<std::pair<size_t, api::QueryReport>> answers;
    bool degraded = false;
    Status unavailable = Status::OK();
    Status failure = Status::OK();
    std::lock_guard<std::mutex> op_lock(handle->op_mutex);
    for (size_t s = 0; s < num_shards && failure.ok(); ++s) {
      if (!handle->has_index[s]) continue;
      if (!shard_status[s].ok()) {
        if (shard_status[s].code() == StatusCode::kUnavailable &&
            options_.degraded_reads) {
          degraded = true;
          if (unavailable.ok()) unavailable = shard_status[s];
          continue;
        }
        failure = shard_status[s];
        break;
      }
      const api::QueryBatchResponse::Entry& shard_entry =
          shard_responses[s]->results[i];
      if (!shard_entry.ok) {
        // App-level refusal (validation, not-found): identical requests
        // fail identically on every shard, so the first one stands in
        // for all.
        failure = StatusFromApiError(shard_entry.error);
        break;
      }
      answers.emplace_back(s, shard_entry.report);
    }
    if (!failure.ok()) {
      fail(failure);
      continue;
    }
    if (degraded && answers.empty()) {
      fail(unavailable);
      continue;
    }
    Result<api::QueryReport> folded =
        FoldShardReports(query, handle.get(), answers, degraded);
    if (!folded.ok()) {
      fail(folded.status());
      continue;
    }
    entry.ok = true;
    entry.report = std::move(folded.value());
  }
  return response;
}

// ------------------------------------------------------- misc front door

api::RecommendResponse Coordinator::Recommend(const Scenario& scenario) {
  // Pure function of the scenario — served locally, no shard round trip.
  Recommendation rec = palm::Recommend(scenario);
  api::RecommendResponse response;
  response.variant = rec.variant_name();
  response.materialized = rec.spec.materialized;
  response.fill_factor = rec.spec.fill_factor;
  response.growth_factor = rec.spec.growth_factor;
  response.buffer_entries = rec.spec.buffer_entries;
  response.rationale = rec.rationale;
  return response;
}

Result<api::ListIndexesResponse> Coordinator::ListIndexes() {
  std::vector<std::pair<std::string, std::shared_ptr<DistHandle>>> pinned;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    pinned.reserve(handles_.size());
    for (const auto& [name, handle] : handles_) {
      if (handle->building) continue;
      pinned.emplace_back(name, handle);
    }
  }
  std::vector<Result<std::string>> raw =
      ScatterSame("list_indexes", "{}", /*idempotent=*/true);
  // name -> (entries, total_bytes) summed across shards.
  std::map<std::string, std::pair<uint64_t, uint64_t>> occupancy;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Result<api::ListIndexesResponse> parsed =
        ParseShardBody<api::ListIndexesResponse>(shards_[s]->endpoint(),
                                                 raw[s]);
    if (!parsed.ok()) return parsed.status();
    for (const auto& info : parsed.value().indexes) {
      occupancy[info.name].first += info.entries;
      occupancy[info.name].second += info.total_bytes;
    }
  }
  api::ListIndexesResponse response;
  response.indexes.reserve(pinned.size());
  for (const auto& [name, handle] : pinned) {
    api::ListIndexesResponse::IndexInfo info;
    info.name = name;
    info.variant = VariantName(handle->spec);
    info.streaming = handle->streaming;
    info.shards = shards_.size();
    const auto it = occupancy.find(name);
    if (it != occupancy.end()) {
      info.entries = it->second.first;
      info.total_bytes = it->second.second;
    }
    response.indexes.push_back(std::move(info));
  }
  return response;
}

Result<api::DropIndexResponse> Coordinator::DropIndex(
    const api::DropIndexRequest& request) {
  std::shared_ptr<DistHandle> handle;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = handles_.find(request.index);
    if (it == handles_.end()) {
      return Status::NotFound("index '" + request.index + "' not found");
    }
    if (it->second->building) {
      return Status::InvalidArgument("index '" + request.index +
                                     "' is still being created");
    }
    handle = it->second;
    handles_.erase(it);
  }
  // Wait out in-flight operations on the handle before tearing the
  // shard-side state down under them.
  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  api::DropIndexRequest shard_drop;
  shard_drop.index = request.index;
  std::vector<std::optional<std::string>> params(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (handle->has_index[s]) params[s] = shard_drop.ToJsonString();
  }
  std::vector<Result<std::string>> raw =
      Scatter("drop_index", params, /*idempotent=*/false);

  api::DropIndexResponse response;
  response.index = request.index;
  response.dropped = true;
  response.streaming = handle->streaming;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!params[s].has_value()) continue;
    Result<api::DropIndexResponse> parsed =
        ParseShardBody<api::DropIndexResponse>(shards_[s]->endpoint(),
                                               raw[s]);
    if (!parsed.ok()) {
      // The name is already unregistered here; a shard that missed the
      // drop frees its replica when it next restarts from a clean root
      // or when the operator re-issues the drop directly.
      if (parsed.status().code() == StatusCode::kUnavailable) {
        return Status::Unavailable(parsed.status().message() +
                                   "; the index was dropped on the "
                                   "surviving shards");
      }
      return parsed.status();
    }
    response.entries += parsed.value().entries;
    response.reclaimed_bytes += parsed.value().reclaimed_bytes;
  }
  if (query_cache_ != nullptr) query_cache_->InvalidateIndex(request.index);
  return response;
}

// ------------------------------------------------------------- dispatch

Result<std::string> Coordinator::Dispatch(const HttpRequestInfo& request) {
  // Admission first, exactly like api::Service::Dispatch: a throttled
  // client pays for nothing past the token bucket.
  if (quota_ != nullptr) {
    COCONUT_RETURN_NOT_OK(quota_->Admit(request.client_token));
  }
  const std::string& method = request.method;
  if (method == "ingest_batch_bin") {
    if (request.content_type != kBinaryIngestContentType) {
      return Status::InvalidArgument(
          "ingest_batch_bin requires Content-Type " +
          std::string(kBinaryIngestContentType) + " (got '" +
          request.content_type + "')");
    }
    COCONUT_ASSIGN_OR_RETURN(const api::IngestBatchRequest decoded,
                             DecodeIngestFrame(request.body));
    COCONUT_ASSIGN_OR_RETURN(const api::IngestBatchReport report,
                             IngestBatch(decoded));
    return report.ToJsonString();
  }
  COCONUT_ASSIGN_OR_RETURN(
      const JsonValue params,
      JsonParse(request.body.empty() ? std::string_view("{}")
                                     : std::string_view(request.body)));
  if (method == "register_dataset") {
    COCONUT_ASSIGN_OR_RETURN(const api::RegisterDatasetRequest typed,
                             api::RegisterDatasetRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::RegisterDatasetResponse out,
                             RegisterDataset(typed));
    return out.ToJsonString();
  }
  if (method == "build_index") {
    COCONUT_ASSIGN_OR_RETURN(const api::BuildIndexRequest typed,
                             api::BuildIndexRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::BuildIndexReport out,
                             BuildIndex(typed));
    return out.ToJsonString();
  }
  if (method == "create_stream") {
    COCONUT_ASSIGN_OR_RETURN(const api::CreateStreamRequest typed,
                             api::CreateStreamRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::CreateStreamResponse out,
                             CreateStream(typed));
    return out.ToJsonString();
  }
  if (method == "ingest_batch") {
    COCONUT_ASSIGN_OR_RETURN(const api::IngestBatchRequest typed,
                             api::IngestBatchRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::IngestBatchReport out,
                             IngestBatch(typed));
    return out.ToJsonString();
  }
  if (method == "drain_stream") {
    COCONUT_ASSIGN_OR_RETURN(const api::DrainStreamRequest typed,
                             api::DrainStreamRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::DrainStreamReport out,
                             DrainStream(typed));
    return out.ToJsonString();
  }
  if (method == "query") {
    COCONUT_ASSIGN_OR_RETURN(const api::QueryRequest typed,
                             api::QueryRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::QueryReport out, Query(typed));
    return out.ToJsonString();
  }
  if (method == "query_batch") {
    COCONUT_ASSIGN_OR_RETURN(const api::QueryBatchRequest typed,
                             api::QueryBatchRequest::FromJson(params));
    return QueryBatch(typed).ToJsonString();
  }
  if (method == "recommend") {
    COCONUT_ASSIGN_OR_RETURN(const api::RecommendRequest typed,
                             api::RecommendRequest::FromJson(params));
    return Recommend(typed.scenario).ToJsonString();
  }
  if (method == "list_indexes") {
    if (!params.is_object() || !params.object().empty()) {
      return Status::InvalidArgument("list_indexes takes no parameters");
    }
    COCONUT_ASSIGN_OR_RETURN(const api::ListIndexesResponse out,
                             ListIndexes());
    return out.ToJsonString();
  }
  if (method == "drop_index") {
    COCONUT_ASSIGN_OR_RETURN(const api::DropIndexRequest typed,
                             api::DropIndexRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::DropIndexResponse out,
                             DropIndex(typed));
    return out.ToJsonString();
  }
  if (method == "drop_dataset") {
    COCONUT_ASSIGN_OR_RETURN(const api::DropDatasetRequest typed,
                             api::DropDatasetRequest::FromJson(params));
    COCONUT_ASSIGN_OR_RETURN(const api::DropDatasetResponse out,
                             DropDataset(typed));
    return out.ToJsonString();
  }
  if (method == "server_stats") {
    if (!params.is_object() || !params.object().empty()) {
      return Status::InvalidArgument("server_stats takes no parameters");
    }
    return ServerStats().ToJsonString();
  }
  std::string known;
  for (const char* name : kCoordinatorMethods) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  return Status::NotFound("unknown method '" + method +
                          "' (known methods: " + known + ")");
}

}  // namespace dist
}  // namespace palm
}  // namespace coconut
