#ifndef COCONUT_DIST_COORDINATOR_H_
#define COCONUT_DIST_COORDINATOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "dist/shard_client.h"
#include "dist/topology.h"
#include "palm/api.h"
#include "palm/http_server.h"
#include "palm/query_cache.h"
#include "palm/quota.h"
#include "palm/recommender.h"
#include "series/series.h"

namespace coconut {
namespace palm {
namespace dist {

struct CoordinatorOptions {
  /// Shard servers in key-range order (entry i owns invSAX range i).
  std::vector<ShardEndpoint> shards;
  /// Per-shard connect/request timeouts and retry behavior.
  ShardClientOptions client;
  /// When a shard is unreachable, serve queries from the surviving shards
  /// (the answer covers a subset of the key space and is marked
  /// `degraded` on the wire). Off by default: a dead shard fails reads
  /// with a structured kUnavailable naming it.
  bool degraded_reads = false;
  /// Ship ingest sub-batches with the CRC-checked binary framing
  /// (POST /api/v1/ingest_batch_bin); off = JSON ingest_batch. A bench
  /// comparison knob — binary is strictly better on bytes and CPU.
  bool binary_ingest = true;
};

/// The distributed Palm front door: one process that owns the global
/// series-id space, the global timestamp watermark and the request fan-out
/// across N independent shard-server processes (palm_shardd), each a
/// complete single-process Palm service holding one invSAX key range.
///
/// Placement reuses palm/shard_route.h verbatim, so a coordinator over N
/// shard processes partitions the data exactly like a single-process
/// ShardedStreamingIndex / ShardedIndex with N shards — the dist oracle
/// test pins the two answer-for-answer. The coordinator forwards RAW
/// series (shards z-normalize on ingest with the same function, so the
/// stored bits match the single-process path) and z-normalizes a private
/// copy only to route.
///
/// State model: shard servers persist their data (raw stores, WALs,
/// indexes); the coordinator's own registry — id maps, watermark, dataset
/// staging — is in memory. Recovering coordinator state from the shards
/// after a restart is future work; until then a restarted coordinator
/// serves recovered durable shard streams with structured errors rather
/// than mistranslated ids.
///
/// Thread safety: same discipline as api::Service — a registry
/// shared_mutex guards the name maps, and per-handle op mutexes serialize
/// ingest/drain/query per stream or index.
class Coordinator : public HttpDispatcher {
 public:
  static Result<std::unique_ptr<Coordinator>> Create(
      CoordinatorOptions options);
  ~Coordinator() override;

  /// The JSON front door (HttpServer plugs in here): quota admission,
  /// params parse, method routing — including the binary ingest endpoint,
  /// negotiated by Content-Type.
  Result<std::string> Dispatch(const HttpRequestInfo& request) override;

  /// Front-door policy, mirroring api::Service: call before serving
  /// concurrent traffic.
  void EnableQueryCache(const api::QueryCacheOptions& options);
  void ConfigureQuotas(const api::QuotaOptions& options);

  /// Coordinator cache/quota counters plus per-shard health (the `shards`
  /// array of server_stats).
  api::ServerStatsResponse ServerStats() const;

  size_t num_shards() const { return shards_.size(); }

  // ---- typed operations (same shapes as api::Service).

  Result<api::RegisterDatasetResponse> RegisterDataset(
      const api::RegisterDatasetRequest& request);
  Result<api::BuildIndexReport> BuildIndex(
      const api::BuildIndexRequest& request);
  Result<api::CreateStreamResponse> CreateStream(
      const api::CreateStreamRequest& request);
  Result<api::IngestBatchReport> IngestBatch(
      const api::IngestBatchRequest& request);
  Result<api::DrainStreamReport> DrainStream(
      const api::DrainStreamRequest& request);
  Result<api::QueryReport> Query(const api::QueryRequest& request);
  api::QueryBatchResponse QueryBatch(const api::QueryBatchRequest& request);
  api::RecommendResponse Recommend(const Scenario& scenario);
  Result<api::ListIndexesResponse> ListIndexes();
  Result<api::DropIndexResponse> DropIndex(
      const api::DropIndexRequest& request);
  Result<api::DropDatasetResponse> DropDataset(
      const api::DropDatasetRequest& request);

 private:
  /// Raw (un-normalized) dataset staged at the coordinator until
  /// build_index routes it; shards z-normalize their slices themselves.
  struct Dataset {
    series::SeriesCollection data{0};
    std::vector<int64_t> timestamps;
  };

  /// One distributed index or stream as the coordinator tracks it.
  struct DistHandle {
    VariantSpec spec;
    bool streaming = false;
    /// Next global series id; ids are burned on rejected admissions,
    /// mirroring the single-process sharded semantics.
    uint64_t next_series_id = 0;
    /// Global timestamp watermark for kStrict/kClamp — the distributed
    /// twin of ShardedStreamingIndex::last_timestamp_.
    int64_t last_timestamp = std::numeric_limits<int64_t>::min();
    /// local_to_global[s][local_id] = global series id, mirroring the
    /// per-shard maps the single-process sharded wrappers keep.
    std::vector<std::vector<uint64_t>> local_to_global;
    /// Static builds skip shards whose key range received no series (an
    /// empty dataset cannot be registered remotely); queries skip them
    /// too — an empty inner shard contributes nothing either way.
    std::vector<bool> has_index;
    /// Coordinator-side snapshot stamp for the answer cache: bumped on
    /// every successful mutation (ingest/drain/drop). Valid because all
    /// mutations of shard data flow through this coordinator.
    uint64_t version = 1;
    /// True while the creating thread populates the handle outside the
    /// registry lock; PinHandle skips building handles.
    bool building = true;
    std::mutex op_mutex;
  };

  explicit Coordinator(CoordinatorOptions options);

  std::shared_ptr<DistHandle> PinHandle(const std::string& name) const;

  /// num_shards in a wire spec must be 1 or match the topology (the
  /// topology IS the shard split; a different inner sharding would break
  /// the key-range equivalence with the single-process wrappers).
  Status CheckTopologySpec(const VariantSpec& spec) const;

  /// Fans a call out to every shard whose params entry is set (nullopt =
  /// skip). Returns one Result per shard, positionally. `binary` posts
  /// the params string as a binary ingest frame instead of JSON.
  std::vector<Result<std::string>> Scatter(
      const std::string& method,
      const std::vector<std::optional<std::string>>& params, bool idempotent,
      bool binary = false);
  /// Same params for every shard.
  std::vector<Result<std::string>> ScatterSame(const std::string& method,
                                               const std::string& params,
                                               bool idempotent);
  /// Best-effort cleanup scatter (errors ignored) for unwind paths.
  void ScatterCleanup(const std::string& method,
                      const std::vector<std::optional<std::string>>& params);

  /// Gathers per-shard query reports into one: counters/io summed, the
  /// match folded by (distance, global id) with local ids translated
  /// through the handle's maps. `answers` pairs shard ordinals with their
  /// reports; caller holds the handle's op mutex (the id maps grow under
  /// it).
  Result<api::QueryReport> FoldShardReports(
      const api::QueryRequest& request, DistHandle* handle,
      const std::vector<std::pair<size_t, api::QueryReport>>& answers,
      bool degraded) const;

  const CoordinatorOptions options_;
  std::vector<std::unique_ptr<ShardClient>> shards_;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const Dataset>> datasets_;
  std::map<std::string, std::shared_ptr<DistHandle>> handles_;

  std::unique_ptr<api::QueryCache> query_cache_;
  std::unique_ptr<api::QuotaEnforcer> quota_;
};

}  // namespace dist
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_DIST_COORDINATOR_H_
