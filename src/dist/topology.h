#ifndef COCONUT_DIST_TOPOLOGY_H_
#define COCONUT_DIST_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace coconut {
namespace palm {
namespace dist {

/// One shard server's address.
struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;

  bool operator==(const ShardEndpoint& other) const {
    return host == other.host && port == other.port;
  }
};

/// Parses a shard topology: "host:port" entries separated by commas and/or
/// newlines. '#' starts a comment that runs to end of line; blank entries
/// are ignored. Entry i of the list owns key range i of the invSAX split
/// (shard_route.h), so the order IS the topology — it must stay stable
/// across coordinator restarts for the same shard data. Malformed entries
/// fail with InvalidArgument naming the entry.
Result<std::vector<ShardEndpoint>> ParseTopology(const std::string& text);

/// Reads `path` and parses it with ParseTopology.
Result<std::vector<ShardEndpoint>> LoadTopologyFile(const std::string& path);

}  // namespace dist
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_DIST_TOPOLOGY_H_
