#ifndef COCONUT_DIST_BINARY_CODEC_H_
#define COCONUT_DIST_BINARY_CODEC_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "palm/api.h"

namespace coconut {
namespace palm {
namespace dist {

/// Content-Type that selects the binary framing on
/// POST /api/v1/ingest_batch_bin. Any other Content-Type on that endpoint
/// is refused with a structured InvalidArgument — negotiation is explicit,
/// never guessed from the payload bytes.
inline constexpr const char* kBinaryIngestContentType =
    "application/x-palm-ingest-v1";

/// Frame magic: the ASCII bytes "CPBI" (Coconut Palm Binary Ingest) read
/// as a little-endian u32.
inline constexpr uint32_t kBinaryIngestMagic = 0x49425043u;  // "CPBI"
inline constexpr uint16_t kBinaryIngestVersion = 1;

/// Decode-side sanity caps: a frame declaring more than these is rejected
/// before any allocation is sized from attacker-controlled fields. The
/// name cap matches ValidateName's 128-char limit; the row cap bounds a
/// single frame at ~4 GiB of values.
inline constexpr uint32_t kBinaryIngestMaxNameBytes = 128;
inline constexpr uint32_t kBinaryIngestMaxSeriesLength = 1u << 20;
inline constexpr uint32_t kBinaryIngestMaxCount = 1u << 24;

/// The ingest_batch request as a length-prefixed, CRC-checked packed-float
/// frame — the coordinator ships bulk sub-batches to shards with this
/// instead of JSON (no float-to-text round trip, ~3x fewer bytes on the
/// wire, and bit-exact values by construction).
///
/// Byte layout (all integers little-endian, floats as IEEE-754 bit
/// patterns):
///
///   offset        size  field
///   0             4     magic "CPBI" (0x49425043)
///   4             2     version (currently 1)
///   6             2     reserved (0)
///   8             4     stream name length N
///   12            N     stream name (UTF-8, no terminator)
///   12+N          4     series_length L
///   16+N          4     series count C
///   20+N          8*C   timestamps (int64, one per series)
///   20+N+8C       4*L*C values (float32, row-major: series 0 first)
///   20+N+8C+4LC   4     CRC-32C of every byte before this field
///
/// The trailing CRC-32C is the same Castagnoli polynomial the WAL uses
/// (common/crc32c.h), so a torn or bit-flipped frame is refused with a
/// structured error instead of ingesting garbage.
std::string EncodeIngestFrame(const api::IngestBatchRequest& request);

/// Parses and verifies one frame. Structural violations (bad magic,
/// truncation, declared sizes not matching the body, CRC mismatch) fail
/// with InvalidArgument describing the defect; the returned request is
/// exactly what EncodeIngestFrame consumed, bit for bit.
Result<api::IngestBatchRequest> DecodeIngestFrame(std::string_view frame);

}  // namespace dist
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_DIST_BINARY_CODEC_H_
