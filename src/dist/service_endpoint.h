#ifndef COCONUT_DIST_SERVICE_ENDPOINT_H_
#define COCONUT_DIST_SERVICE_ENDPOINT_H_

#include <string>

#include "common/status.h"
#include "palm/api.h"
#include "palm/http_server.h"

namespace coconut {
namespace palm {
namespace dist {

/// The shard-server dispatcher: every JSON method of api::Service plus
/// the binary bulk-ingest endpoint (POST /api/v1/ingest_batch_bin,
/// negotiated by Content-Type — see binary_codec.h). This is what
/// palm_shardd serves; a shard is a complete single-process Palm service
/// that happens to hold one key range of a distributed deployment.
///
/// The binary path bypasses the service's quota enforcer (it goes through
/// the typed IngestBatch, not Dispatch): shard servers sit behind the
/// coordinator, which enforces quotas at the front door.
class ServiceEndpoint : public HttpDispatcher {
 public:
  explicit ServiceEndpoint(api::Service* service) : service_(service) {}

  Result<std::string> Dispatch(const HttpRequestInfo& request) override;

 private:
  api::Service* service_;
};

}  // namespace dist
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_DIST_SERVICE_ENDPOINT_H_
