#include "dist/service_endpoint.h"

#include "dist/binary_codec.h"

namespace coconut {
namespace palm {
namespace dist {

Result<std::string> ServiceEndpoint::Dispatch(const HttpRequestInfo& request) {
  if (request.method == "ingest_batch_bin") {
    if (request.content_type != kBinaryIngestContentType) {
      return Status::InvalidArgument(
          "ingest_batch_bin requires Content-Type " +
          std::string(kBinaryIngestContentType) + " (got '" +
          request.content_type + "')");
    }
    COCONUT_ASSIGN_OR_RETURN(const api::IngestBatchRequest decoded,
                             DecodeIngestFrame(request.body));
    COCONUT_ASSIGN_OR_RETURN(const api::IngestBatchReport report,
                             service_->IngestBatch(decoded));
    return report.ToJsonString();
  }
  return service_->Dispatch(request.method, request.body,
                            request.client_token);
}

}  // namespace dist
}  // namespace palm
}  // namespace coconut
