#ifndef COCONUT_DIST_SHARD_CLIENT_H_
#define COCONUT_DIST_SHARD_CLIENT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "dist/topology.h"
#include "palm/api.h"
#include "palm/http_client.h"

namespace coconut {
namespace palm {
namespace dist {

/// Reconstructs the Status a remote service serialized as an ApiError, so
/// shard errors cross the coordinator with their original code and
/// message. Unknown codes map to kInternal.
Status StatusFromApiError(const api::ApiError& error);

struct ShardClientOptions {
  /// Bound on establishing the TCP connection to the shard.
  int connect_timeout_ms = 2000;
  /// Bound on one whole request round trip (send + response).
  int request_timeout_ms = 10000;
};

/// One shard server as the coordinator sees it: a keep-alive JSON/binary
/// RPC channel with timeouts, one bounded retry, and health counters.
///
/// Error contract: every transport-level failure (connect refused,
/// connect/request timeout, torn response) surfaces as
/// StatusCode::kUnavailable with the shard's endpoint in the message —
/// the coordinator's degraded-read logic keys on exactly that code.
/// Application-level failures (the shard answered with a non-2xx status
/// and an ApiError body) are decoded back into the original Status code
/// and message, and do NOT count against the shard's health: a NotFound
/// is a healthy shard saying no.
///
/// Retry policy: idempotent calls (query, stats, drain) are re-sent once
/// after a transport failure; non-idempotent calls (ingest) are never
/// retried — a request timeout leaves the shard possibly mid-apply, and a
/// blind resend would duplicate the batch. The retry reconnects from
/// scratch, so it also covers a shard that restarted between calls.
///
/// Thread-safe: calls serialize on an internal mutex (one connection per
/// shard; the coordinator scatters across shards, not within one).
class ShardClient {
 public:
  explicit ShardClient(ShardEndpoint endpoint, ShardClientOptions options = {});

  const ShardEndpoint& endpoint() const { return endpoint_; }

  /// POST /api/v1/<method> with a JSON params body. Returns the response
  /// body on HTTP 2xx; decodes the ApiError body otherwise.
  Result<std::string> Call(const std::string& method,
                           const std::string& params_json, bool idempotent);

  /// POST /api/v1/ingest_batch_bin with the binary framing Content-Type.
  /// Never retried (ingest is not idempotent).
  Result<std::string> CallBinaryIngest(const std::string& frame);

  struct Health {
    /// False once the most recent call failed at the transport level.
    bool healthy = true;
    /// Logical calls issued (retries are not counted separately).
    uint64_t requests = 0;
    /// Calls that failed at the transport level after any retry.
    uint64_t failures = 0;
    /// Transport failures since the last successful round trip.
    uint64_t consecutive_failures = 0;
  };
  Health health() const;

 private:
  Result<std::string> RoundTrip(
      const std::string& target, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers,
      bool may_retry);

  const ShardEndpoint endpoint_;
  mutable std::mutex mu_;
  BlockingHttpClient client_;
  uint64_t requests_ = 0;
  uint64_t failures_ = 0;
  uint64_t consecutive_failures_ = 0;
};

}  // namespace dist
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_DIST_SHARD_CLIENT_H_
