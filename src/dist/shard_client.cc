#include "dist/shard_client.h"

#include "common/json.h"
#include "dist/binary_codec.h"
#include "palm/api.h"

namespace coconut {
namespace palm {
namespace dist {

namespace {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kIoError:
      return Status::IoError(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kUnauthenticated:
      return Status::Unauthenticated(std::move(msg));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(msg));
}

/// Decodes a shard's non-2xx response back into the Status the shard's
/// service produced, so errors propagate through the coordinator with
/// their original code and message. An unparseable body (a torn reply, a
/// non-Palm server on the port) is an Internal error naming the shard.
Status StatusFromErrorBody(const ShardEndpoint& endpoint, int http_status,
                           const std::string& body) {
  Result<JsonValue> parsed = JsonParse(body);
  if (parsed.ok()) {
    Result<api::ApiError> error = api::ApiError::FromJson(parsed.value());
    if (error.ok()) return StatusFromApiError(error.value());
  }
  return Status::Internal("shard " + endpoint.ToString() + " returned HTTP " +
                          std::to_string(http_status) +
                          " with an unparseable error body");
}

BlockingHttpClientOptions ToClientOptions(const ShardClientOptions& options) {
  BlockingHttpClientOptions client_options;
  client_options.connect_timeout_ms = options.connect_timeout_ms;
  client_options.request_timeout_ms = options.request_timeout_ms;
  return client_options;
}

}  // namespace

Status StatusFromApiError(const api::ApiError& error) {
  for (int c = 1; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    const auto code = static_cast<StatusCode>(c);
    if (error.code == api::StatusCodeToApiCode(code)) {
      return MakeStatus(code, error.message);
    }
  }
  return Status::Internal("unknown remote error code '" + error.code +
                          "': " + error.message);
}

ShardClient::ShardClient(ShardEndpoint endpoint, ShardClientOptions options)
    : endpoint_(std::move(endpoint)),
      client_(endpoint_.host, endpoint_.port, ToClientOptions(options)) {}

Result<std::string> ShardClient::Call(const std::string& method,
                                      const std::string& params_json,
                                      bool idempotent) {
  return RoundTrip("/api/v1/" + method, params_json, {}, idempotent);
}

Result<std::string> ShardClient::CallBinaryIngest(const std::string& frame) {
  return RoundTrip("/api/v1/ingest_batch_bin", frame,
                   {{"Content-Type", kBinaryIngestContentType}},
                   /*may_retry=*/false);
}

Result<std::string> ShardClient::RoundTrip(
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers,
    bool may_retry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  Result<HttpClientResponse> response = client_.Post(target, body, headers);
  if (!response.ok() && may_retry) {
    // One bounded retry from a fresh connection: covers a shard that
    // restarted (stale keep-alive socket) or a transient connect refusal.
    // Only idempotent calls reach here, so a request the shard may have
    // already applied is never re-sent.
    client_.Close();
    response = client_.Post(target, body, headers);
  }
  if (!response.ok()) {
    ++failures_;
    ++consecutive_failures_;
    return Status::Unavailable("shard " + endpoint_.ToString() +
                               " unavailable: " +
                               response.status().message());
  }
  consecutive_failures_ = 0;
  if (response.value().status < 200 || response.value().status >= 300) {
    return StatusFromErrorBody(endpoint_, response.value().status,
                               response.value().body);
  }
  return std::move(response.value().body);
}

ShardClient::Health ShardClient::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  Health health;
  health.healthy = consecutive_failures_ == 0;
  health.requests = requests_;
  health.failures = failures_;
  health.consecutive_failures = consecutive_failures_;
  return health;
}

}  // namespace dist
}  // namespace palm
}  // namespace coconut
