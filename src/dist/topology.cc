#include "dist/topology.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace coconut {
namespace palm {
namespace dist {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status EntryError(const std::string& entry, const char* why) {
  return Status::InvalidArgument("topology entry '" + entry + "': " + why);
}

}  // namespace

std::string ShardEndpoint::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<std::vector<ShardEndpoint>> ParseTopology(const std::string& text) {
  std::vector<ShardEndpoint> shards;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t sep = text.find_first_of(",\n", pos);
    if (sep == std::string::npos) sep = text.size();
    std::string entry = text.substr(pos, sep - pos);
    pos = sep + 1;
    if (const size_t hash = entry.find('#'); hash != std::string::npos) {
      entry.resize(hash);
    }
    entry = Trim(entry);
    if (entry.empty()) continue;
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return EntryError(entry, "expected HOST:PORT");
    }
    ShardEndpoint endpoint;
    endpoint.host = Trim(entry.substr(0, colon));
    const std::string port_text = Trim(entry.substr(colon + 1));
    char* end = nullptr;
    errno = 0;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (errno != 0 || end != port_text.c_str() + port_text.size() ||
        port < 1 || port > 65535) {
      return EntryError(entry, "port must be an integer in [1, 65535]");
    }
    endpoint.port = static_cast<uint16_t>(port);
    shards.push_back(std::move(endpoint));
  }
  if (shards.empty()) {
    return Status::InvalidArgument(
        "topology lists no shards (expected HOST:PORT entries separated by "
        "commas or newlines)");
  }
  return shards;
}

Result<std::vector<ShardEndpoint>> LoadTopologyFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("open topology file " + path + ": " +
                           std::strerror(errno));
  }
  std::string text;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read topology file " + path);
  }
  return ParseTopology(text);
}

}  // namespace dist
}  // namespace palm
}  // namespace coconut
