#include "dist/binary_codec.h"

#include <cstdint>
#include <cstring>

#include "common/crc32c.h"

namespace coconut {
namespace palm {
namespace dist {

namespace {

// Explicit little-endian accessors: the frame is a wire format, so its
// byte order cannot depend on the host (memcpy alone would).
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint16_t GetU16(const char* p) {
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint16_t>(b[0] | (b[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  const auto* b = reinterpret_cast<const uint8_t*>(p);
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[i];
  }
  return v;
}

Status FrameError(const std::string& why) {
  return Status::InvalidArgument("binary ingest frame: " + why);
}

// Fixed header bytes before the name, and after it, plus the trailer.
constexpr size_t kPreNameBytes = 12;       // magic + version + reserved + N
constexpr size_t kPostNameBytes = 8;       // series_length + count
constexpr size_t kTrailerBytes = 4;        // CRC-32C

}  // namespace

std::string EncodeIngestFrame(const api::IngestBatchRequest& request) {
  const uint32_t count = static_cast<uint32_t>(request.batch.size());
  const uint32_t length = static_cast<uint32_t>(request.batch.length());
  std::string frame;
  frame.reserve(kPreNameBytes + request.stream.size() + kPostNameBytes +
                size_t{8} * count +
                size_t{4} * length * count + kTrailerBytes);
  PutU32(&frame, kBinaryIngestMagic);
  PutU16(&frame, kBinaryIngestVersion);
  PutU16(&frame, 0);
  PutU32(&frame, static_cast<uint32_t>(request.stream.size()));
  frame += request.stream;
  PutU32(&frame, length);
  PutU32(&frame, count);
  for (const int64_t timestamp : request.timestamps) {
    PutU64(&frame, static_cast<uint64_t>(timestamp));
  }
  for (const float value : request.batch.data()) {
    uint32_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    PutU32(&frame, bits);
  }
  PutU32(&frame, Crc32c(frame.data(), frame.size()));
  return frame;
}

Result<api::IngestBatchRequest> DecodeIngestFrame(std::string_view frame) {
  if (frame.size() < kPreNameBytes + kPostNameBytes + kTrailerBytes) {
    return FrameError("truncated (got " + std::to_string(frame.size()) +
                      " bytes, smaller than the fixed header)");
  }
  const char* p = frame.data();
  if (GetU32(p) != kBinaryIngestMagic) {
    return FrameError("bad magic (expected \"CPBI\")");
  }
  const uint16_t version = GetU16(p + 4);
  if (version != kBinaryIngestVersion) {
    return FrameError("unsupported version " + std::to_string(version));
  }
  const uint32_t name_len = GetU32(p + 8);
  if (name_len > kBinaryIngestMaxNameBytes) {
    return FrameError("stream name length " + std::to_string(name_len) +
                      " exceeds the limit of " +
                      std::to_string(kBinaryIngestMaxNameBytes));
  }
  if (frame.size() <
      kPreNameBytes + name_len + kPostNameBytes + kTrailerBytes) {
    return FrameError("truncated inside the header");
  }
  const char* after_name = p + kPreNameBytes + name_len;
  const uint32_t series_length = GetU32(after_name);
  const uint32_t count = GetU32(after_name + 4);
  if (series_length > kBinaryIngestMaxSeriesLength) {
    return FrameError("series_length " + std::to_string(series_length) +
                      " exceeds the limit of " +
                      std::to_string(kBinaryIngestMaxSeriesLength));
  }
  if (count > kBinaryIngestMaxCount) {
    return FrameError("series count " + std::to_string(count) +
                      " exceeds the limit of " +
                      std::to_string(kBinaryIngestMaxCount));
  }
  // All factors are <= 2^24 / 2^20, so the uint64 arithmetic cannot wrap.
  const uint64_t expected = uint64_t{kPreNameBytes} + name_len +
                            kPostNameBytes + uint64_t{8} * count +
                            uint64_t{4} * series_length * count +
                            kTrailerBytes;
  if (frame.size() != expected) {
    return FrameError("torn or truncated (declared " +
                      std::to_string(expected) + " bytes, got " +
                      std::to_string(frame.size()) + ")");
  }
  const uint32_t stored_crc = GetU32(p + frame.size() - kTrailerBytes);
  const uint32_t computed_crc =
      Crc32c(frame.data(), frame.size() - kTrailerBytes);
  if (stored_crc != computed_crc) {
    return FrameError("torn or corrupt (CRC mismatch)");
  }

  api::IngestBatchRequest request;
  request.stream.assign(p + kPreNameBytes, name_len);
  request.batch = series::SeriesCollection(series_length);
  request.timestamps.reserve(count);
  const char* cursor = after_name + kPostNameBytes;
  for (uint32_t i = 0; i < count; ++i) {
    request.timestamps.push_back(static_cast<int64_t>(GetU64(cursor)));
    cursor += 8;
  }
  std::vector<float>& values = request.batch.mutable_data();
  values.resize(size_t{series_length} * count);
  for (size_t i = 0; i < values.size(); ++i) {
    const uint32_t bits = GetU32(cursor);
    std::memcpy(&values[i], &bits, sizeof(float));
    cursor += 4;
  }
  return request;
}

}  // namespace dist
}  // namespace palm
}  // namespace coconut
