#include "ctree/ctree.h"

#include <algorithm>
#include <cstring>

#include "core/entry.h"
#include "series/paa.h"

namespace coconut {
namespace ctree {

namespace {

using core::IndexEntry;
using core::SearchOptions;
using core::SearchResult;
using seqtable::LeafView;
using seqtable::SeqTable;
using seqtable::SeqTableBuilder;
using seqtable::SeqTableOptions;

SeqTableOptions ToTableOptions(const CTree::Options& options) {
  SeqTableOptions topts;
  topts.sax = options.sax;
  topts.materialized = options.materialized;
  topts.fill_factor = options.fill_factor;
  return topts;
}

size_t SortRecordSize(const CTree::Options& options) {
  return sizeof(IndexEntry) +
         (options.materialized
              ? options.sax.series_length * sizeof(float)
              : 0);
}

}  // namespace

// ---------------------------------------------------------------- Builder

Result<std::unique_ptr<CTree::Builder>> CTree::Builder::Create(
    storage::StorageManager* storage, const std::string& name,
    const Options& options) {
  if (!options.sax.Valid()) {
    return Status::InvalidArgument("invalid SaxConfig");
  }
  auto builder = std::unique_ptr<Builder>(new Builder(storage, name, options));
  extsort::ExternalSorter::Options sopts;
  sopts.record_size = SortRecordSize(options);
  sopts.memory_budget_bytes = options.sort_memory_bytes;
  sopts.threads = options.sort_threads;
  sopts.merge_threads = options.sort_merge_threads;
  sopts.merge_partitions = options.sort_merge_partitions;
  sopts.storage = storage;
  sopts.temp_prefix = name + ".sort";
  sopts.less = core::EntryBytesLess;  // Key prefix leads every record.
  COCONUT_ASSIGN_OR_RETURN(builder->sorter_,
                           extsort::ExternalSorter::Create(sopts));
  builder->record_scratch_.resize(sopts.record_size);
  return builder;
}

Status CTree::Builder::Add(uint64_t series_id,
                           std::span<const float> znorm_values,
                           int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }
  IndexEntry entry;
  entry.key = series::InterleaveSax(
      series::ComputeSax(znorm_values, options_.sax), options_.sax);
  entry.series_id = series_id;
  entry.timestamp = timestamp;
  std::memcpy(record_scratch_.data(), &entry, sizeof(entry));
  if (options_.materialized) {
    std::memcpy(record_scratch_.data() + sizeof(entry), znorm_values.data(),
                znorm_values.size() * sizeof(float));
  }
  return sorter_->Add(record_scratch_.data());
}

Result<std::unique_ptr<CTree>> CTree::Builder::Finish(
    storage::BufferPool* pool, core::RawSeriesStore* raw) {
  if (!options_.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized CTree needs a raw store for verification");
  }
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<extsort::SortedStream> stream,
                           sorter_->Finish());
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<SeqTableBuilder> table_builder,
      SeqTableBuilder::Create(storage_, name_, ToTableOptions(options_)));

  const size_t len = options_.sax.series_length;
  while (true) {
    COCONUT_ASSIGN_OR_RETURN(bool has, stream->Next(record_scratch_.data()));
    if (!has) break;
    IndexEntry entry;
    std::memcpy(&entry, record_scratch_.data(), sizeof(entry));
    std::span<const float> payload;
    if (options_.materialized) {
      payload = std::span<const float>(
          reinterpret_cast<const float*>(record_scratch_.data() +
                                         sizeof(entry)),
          len);
    }
    COCONUT_RETURN_NOT_OK(table_builder->Add(entry, payload));
  }
  COCONUT_RETURN_NOT_OK(table_builder->Finish());

  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<SeqTable> table,
                           SeqTable::Open(storage_, name_, pool));
  return std::unique_ptr<CTree>(new CTree(std::move(table), options_, raw));
}

// ---------------------------------------------------------------- CTree

Result<std::unique_ptr<CTree>> CTree::Open(storage::StorageManager* storage,
                                           const std::string& name,
                                           storage::BufferPool* pool,
                                           core::RawSeriesStore* raw) {
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<SeqTable> table,
                           SeqTable::Open(storage, name, pool));
  Options options;
  options.sax = table->sax();
  options.materialized = table->materialized();
  options.fill_factor = table->options().fill_factor;
  if (!options.materialized && raw == nullptr) {
    return Status::InvalidArgument(
        "non-materialized CTree needs a raw store for verification");
  }
  return std::unique_ptr<CTree>(new CTree(std::move(table), options, raw));
}

Result<SearchResult> CTree::ApproxSearch(std::span<const float> query,
                                         const SearchOptions& options,
                                         core::QueryCounters* counters) {
  std::vector<float> paa;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa, raw_, counters);
  return seqtable::ApproxSearchTable(*table_, ctx, options);
}

Result<SearchResult> CTree::ExactSearch(std::span<const float> query,
                                        const SearchOptions& options,
                                        core::QueryCounters* counters) {
  std::vector<float> paa;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa, raw_, counters);
  COCONUT_ASSIGN_OR_RETURN(SearchResult best,
                           seqtable::ApproxSearchTable(*table_, ctx, options));
  COCONUT_RETURN_NOT_OK(
      seqtable::ExactScanTable(*table_, ctx, options, &best));
  return best;
}

Status CTree::ExactSearchBatch(std::span<const std::span<const float>> queries,
                               const SearchOptions& options,
                               std::span<SearchResult> results,
                               std::span<core::QueryCounters> counters) {
  const size_t nq = queries.size();
  std::vector<std::vector<float>> paa_storage(nq);
  std::vector<seqtable::SearchContext> ctxs(nq);
  for (size_t q = 0; q < nq; ++q) {
    core::QueryCounters* c = counters.empty() ? nullptr : &counters[q];
    ctxs[q] = seqtable::MakeSearchContext(options_.sax, queries[q],
                                          &paa_storage[q], raw_, c);
    COCONUT_ASSIGN_OR_RETURN(
        results[q], seqtable::ApproxSearchTable(*table_, ctxs[q], options));
  }
  return seqtable::ExactScanTableMulti(*table_, ctxs, options, results);
}

Result<std::vector<SearchResult>> CTree::KnnSearch(
    std::span<const float> query, size_t k, const SearchOptions& options,
    core::QueryCounters* counters) {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<float> paa;
  seqtable::SearchContext ctx = seqtable::MakeSearchContext(
      options_.sax, query, &paa, raw_, counters);
  seqtable::KnnCollector collector(k);
  COCONUT_RETURN_NOT_OK(
      seqtable::ExactKnnScanTable(*table_, ctx, options, &collector));
  return collector.Take();
}

Status CTree::Insert(uint64_t series_id, std::span<const float> znorm_values,
                     int64_t timestamp) {
  if (znorm_values.size() != static_cast<size_t>(options_.sax.series_length)) {
    return Status::InvalidArgument("series length mismatch");
  }
  IndexEntry entry;
  entry.key = series::InterleaveSax(
      series::ComputeSax(znorm_values, options_.sax), options_.sax);
  entry.series_id = series_id;
  entry.timestamp = timestamp;
  dirty_ = true;

  if (table_->num_leaves() == 0) {
    LeafView view;
    view.entries.push_back(entry);
    if (options_.materialized) {
      view.payloads.assign(znorm_values.begin(), znorm_values.end());
    }
    return table_->InsertLeaf(0, view).status();
  }

  const size_t leaf_idx = table_->FindLeafForKey(entry.key);
  LeafView view;
  COCONUT_RETURN_NOT_OK(table_->ReadLeaf(leaf_idx, &view));

  // Insert in key order within the leaf.
  auto it = std::upper_bound(view.entries.begin(), view.entries.end(), entry,
                             core::EntryKeyLess());
  const size_t pos = static_cast<size_t>(it - view.entries.begin());
  view.entries.insert(it, entry);
  if (options_.materialized) {
    const size_t len = options_.sax.series_length;
    view.payloads.insert(view.payloads.begin() + pos * len,
                         znorm_values.begin(), znorm_values.end());
  }

  if (view.entries.size() <= table_->leaf_capacity()) {
    return table_->UpdateLeaf(leaf_idx, view);
  }

  // Split: left half stays in place, right half goes to a fresh page at the
  // end of the file.
  const size_t mid = view.entries.size() / 2;
  const size_t len = options_.sax.series_length;
  LeafView left;
  LeafView right;
  left.entries.assign(view.entries.begin(), view.entries.begin() + mid);
  right.entries.assign(view.entries.begin() + mid, view.entries.end());
  if (options_.materialized) {
    left.payloads.assign(view.payloads.begin(),
                         view.payloads.begin() + mid * len);
    right.payloads.assign(view.payloads.begin() + mid * len,
                          view.payloads.end());
  }
  COCONUT_RETURN_NOT_OK(table_->UpdateLeaf(leaf_idx, left));
  return table_->InsertLeaf(leaf_idx + 1, right).status();
}

Status CTree::Flush() {
  if (!dirty_) return Status::OK();
  dirty_ = false;
  return table_->PersistDirectory();
}

}  // namespace ctree
}  // namespace coconut
