#ifndef COCONUT_CTREE_CTREE_H_
#define COCONUT_CTREE_CTREE_H_

#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "core/raw_store.h"
#include "core/types.h"
#include "extsort/external_sorter.h"
#include "seqtable/seq_table.h"
#include "seqtable/table_search.h"

namespace coconut {
namespace ctree {

/// CoconutTree: the read-optimized, compact and contiguous B+-tree of the
/// paper. Bulk construction runs every (summarization, id) record through a
/// two-pass external sort and lays leaves out densely with sequential
/// writes — no top-down insertions, no sparse nodes. The leaf fill factor
/// reserves headroom for later inserts (the read/write trade-off knob of
/// Section 2): a lower fill factor makes post-build inserts cheap (in-place
/// page rewrites) at the cost of a longer leaf level to scan.
class CTree {
 public:
  struct Options {
    series::SaxConfig sax;
    /// Materialized ("CTreeFull"): series values live inside leaf pages.
    bool materialized = false;
    /// Build-time leaf occupancy in (0, 1].
    double fill_factor = 1.0;
    /// Memory budget for the construction sort (the GUI's memory knob).
    size_t sort_memory_bytes = 64ull << 20;
    /// Worker threads for the construction sort's run generation.
    size_t sort_threads = 1;
    /// Worker threads for the construction sort's merge phase (0 = follow
    /// sort_threads; output bytes are identical either way).
    size_t sort_merge_threads = 0;
    /// Key ranges for the parallel final merge (0 = one per merge worker).
    size_t sort_merge_partitions = 0;
  };

  /// Accumulates records and bulk-builds the tree via external sorting.
  class Builder {
   public:
    static Result<std::unique_ptr<Builder>> Create(
        storage::StorageManager* storage, const std::string& name,
        const Options& options);

    /// Adds one (already z-normalized) series. The summarization is
    /// computed here; materialized builds carry the values through the sort.
    Status Add(uint64_t series_id, std::span<const float> znorm_values,
               int64_t timestamp);

    /// Sorts, writes the leaf level sequentially, and opens the tree.
    /// `pool` (optional) caches pages for subsequent queries; `raw` is
    /// required for non-materialized query verification.
    Result<std::unique_ptr<CTree>> Finish(storage::BufferPool* pool,
                                          core::RawSeriesStore* raw);

    const extsort::SortStats& sort_stats() const { return sorter_->stats(); }

   private:
    Builder(storage::StorageManager* storage, std::string name,
            const Options& options)
        : storage_(storage), name_(std::move(name)), options_(options) {}

    storage::StorageManager* storage_;
    std::string name_;
    Options options_;
    std::unique_ptr<extsort::ExternalSorter> sorter_;
    std::vector<uint8_t> record_scratch_;
  };

  /// Reopens a previously built tree.
  static Result<std::unique_ptr<CTree>> Open(storage::StorageManager* storage,
                                             const std::string& name,
                                             storage::BufferPool* pool,
                                             core::RawSeriesStore* raw);

  /// Nearest-neighbor approximation: one root-to-leaf probe.
  Result<core::SearchResult> ApproxSearch(std::span<const float> query,
                                          const core::SearchOptions& options,
                                          core::QueryCounters* counters);

  /// Exact nearest neighbor: approximate answer, then a skip-sequential
  /// scan of the leaf level pruned by per-leaf SAX regions.
  Result<core::SearchResult> ExactSearch(std::span<const float> query,
                                         const core::SearchOptions& options,
                                         core::QueryCounters* counters);

  /// Batched exact search: per-query approximate seeds, then ONE
  /// skip-sequential scan of the leaf level scoring every query via the
  /// batched distance kernels (seqtable::ExactScanTableMulti). Exact for
  /// each query; `results` must have queries.size() slots and `counters`,
  /// when non-empty, one slot per query.
  Status ExactSearchBatch(std::span<const std::span<const float>> queries,
                          const core::SearchOptions& options,
                          std::span<core::SearchResult> results,
                          std::span<core::QueryCounters> counters);

  /// Exact k-nearest-neighbors (k >= 1): skip-sequential scan pruned by
  /// the running k-th-best distance. Results ascend by distance.
  Result<std::vector<core::SearchResult>> KnnSearch(
      std::span<const float> query, size_t k,
      const core::SearchOptions& options, core::QueryCounters* counters);

  /// Post-build insert. With fill_factor < 1 most inserts rewrite one leaf
  /// page in place; full leaves split, appending a page at the file's end.
  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp);

  /// Persists directory updates accumulated by Insert calls.
  Status Flush();

  uint64_t num_entries() const { return table_->num_entries(); }
  size_t num_leaves() const { return table_->num_leaves(); }
  uint64_t file_bytes() const { return table_->file_bytes(); }
  const seqtable::SeqTable& table() const { return *table_; }
  const Options& options() const { return options_; }

 private:
  CTree(std::unique_ptr<seqtable::SeqTable> table, const Options& options,
        core::RawSeriesStore* raw)
      : table_(std::move(table)), options_(options), raw_(raw) {}

  std::unique_ptr<seqtable::SeqTable> table_;
  Options options_;
  core::RawSeriesStore* raw_;  // Not owned; may be null for materialized.
  bool dirty_ = false;
};

}  // namespace ctree
}  // namespace coconut

#endif  // COCONUT_CTREE_CTREE_H_
