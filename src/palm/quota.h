#ifndef COCONUT_PALM_QUOTA_H_
#define COCONUT_PALM_QUOTA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"

namespace coconut {
namespace palm {
namespace api {

/// One client's token-bucket parameters. The bucket starts full (burst
/// requests immediately available) and refills continuously at
/// requests_per_second up to burst.
struct ClientQuota {
  /// Sustained request rate; <= 0 means unlimited (no bucket kept).
  double requests_per_second = 0.0;
  /// Bucket capacity — the largest back-to-back burst admitted.
  double burst = 1.0;
};

/// Front-door admission policy, enforced per Dispatch call.
struct QuotaOptions {
  /// token -> quota. The token is the opaque value the client presents as
  /// `Authorization: Bearer <token>`; an empty map with
  /// allow_anonymous=false locks the service down entirely.
  std::map<std::string, ClientQuota> clients;
  /// Whether requests without a recognized token are admitted at all.
  /// When true they share one anonymous bucket (anonymous_quota; absent =
  /// unlimited); when false they fail with kUnauthenticated (HTTP 401).
  bool allow_anonymous = false;
  std::optional<ClientQuota> anonymous_quota;
  /// Test seam: monotonic seconds. Defaults to steady_clock.
  std::function<double()> clock_seconds;
};

/// Parses a quota config. One client per line:
///
///   TOKEN=RPS[:BURST]     # burst defaults to 2*RPS
///   *=RPS[:BURST]         # '*' = the shared anonymous bucket (and turns
///                         # allow_anonymous on)
///
/// Blank lines and lines starting with '#' are ignored; inline trailing
/// "# ..." comments are stripped. RPS of 0 means unlimited. Malformed
/// lines fail with InvalidArgument naming the line number; the result on
/// failure is unspecified. `where` names the source in error messages
/// (a file path, or "<inline>").
Result<QuotaOptions> ParseQuotaConfig(const std::string& text,
                                      const std::string& where);

/// Reads `path` and parses it with ParseQuotaConfig.
Result<QuotaOptions> LoadQuotaFile(const std::string& path);

/// Counter snapshot (monotonic since enforcer creation).
struct QuotaStats {
  uint64_t admitted = 0;
  /// Requests refused with kResourceExhausted (HTTP 429).
  uint64_t throttled = 0;
  /// Requests refused with kUnauthenticated (HTTP 401).
  uint64_t unauthenticated = 0;
};

/// Token-bucket rate limiter keyed by client token, sitting at the
/// Service::Dispatch boundary. Thread-safe; Admit is O(log clients).
class QuotaEnforcer {
 public:
  explicit QuotaEnforcer(QuotaOptions options);

  /// Admission decision for one request presented under `token` (empty =
  /// anonymous). OK admits and debits one request; kUnauthenticated means
  /// the token is missing/unknown and anonymous access is off;
  /// kResourceExhausted means the client's bucket is empty (the message
  /// names the retry horizon).
  Status Admit(const std::string& token);

  QuotaStats Snapshot() const;

 private:
  struct Bucket {
    ClientQuota quota;
    double tokens = 0.0;
    double last_refill_s = 0.0;
    bool primed = false;
  };

  Status AdmitBucket(Bucket* bucket, double now_s);

  QuotaOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  Bucket anonymous_bucket_;
  QuotaStats stats_;
};

}  // namespace api
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_QUOTA_H_
