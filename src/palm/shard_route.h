#ifndef COCONUT_PALM_SHARD_ROUTE_H_
#define COCONUT_PALM_SHARD_ROUTE_H_

#include <cstdint>
#include <span>

#include "series/isax.h"
#include "series/sortable.h"

namespace coconut {
namespace palm {

/// The one key-range split both sharding layers use. Static ShardedIndex
/// and ShardedStreamingIndex MUST route identically — the cross-layer
/// equivalence and determinism guarantees assume a series lands in the
/// same key range whether it arrives in a bulk build or on a live stream
/// — so the math lives here exactly once.

/// Shard owning sortable-key word `w` under the contiguous monotone
/// uniform split: shard i owns [i * 2^64 / K, (i+1) * 2^64 / K).
inline size_t ShardOfKeyWord(uint64_t w, size_t num_shards) {
  const auto k = static_cast<unsigned __int128>(num_shards);
  return static_cast<size_t>((static_cast<unsigned __int128>(w) * k) >> 64);
}

/// Shard a (z-normalized) series routes to: its interleaved sortable key's
/// leading word under the split above.
inline size_t ShardOfSeries(std::span<const float> znorm_values,
                            const series::SaxConfig& sax,
                            size_t num_shards) {
  const series::SaxWord word = series::ComputeSax(znorm_values, sax);
  const series::SortableKey key = series::InterleaveSax(word, sax);
  return ShardOfKeyWord(key.words[0], num_shards);
}

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_SHARD_ROUTE_H_
