#ifndef COCONUT_PALM_QUERY_CACHE_H_
#define COCONUT_PALM_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "palm/api.h"

namespace coconut {
namespace palm {
namespace api {

/// Capacity knobs for the service-level answer cache. Both limits apply;
/// eviction is strict LRU.
struct QueryCacheOptions {
  size_t max_entries = 4096;
  size_t max_bytes = 64ull << 20;
  /// Cache not-found exact answers too (a miss on the data is still a
  /// deterministic answer at a snapshot version). Off by default: a
  /// negative entry is only as trustworthy as the version stamp, and
  /// workloads probing absent keys can churn the LRU. Counted separately
  /// (negative_hits/negative_inserts) so operators can watch the win.
  bool cache_negative_results = false;
};

/// Counter snapshot (monotonic since cache creation, except entries/bytes
/// which are the current occupancy).
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  /// Lookups that found the key but at a superseded snapshot version; the
  /// entry is dropped and the lookup counts as a miss too.
  uint64_t stale_drops = 0;
  /// Entries removed because their index was dropped or republished.
  uint64_t invalidations = 0;
  /// Subset of hits/inserts whose stored report is found=false (only
  /// nonzero with cache_negative_results on).
  uint64_t negative_hits = 0;
  uint64_t negative_inserts = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

/// Exact LRU answer cache for Query: the key encodes the index name, the
/// exact/approx mode, approx_candidates, the optional time window and the
/// raw float *bit patterns* of the query vector (memcmp semantics — two
/// queries hit the same entry iff they are byte-identical, so -0.0f vs
/// 0.0f and NaN payloads never alias). The stored QueryReport is re-served
/// verbatim, which keeps a hit byte-identical on the wire to the response
/// that filled it.
///
/// Exactness under ingest comes from the snapshot-version stamp
/// (DataSeriesIndex/StreamingIndex::snapshot_version): entries remember
/// the version they were computed at and Lookup only returns them while
/// the index still reports that version. The service fills an entry only
/// when the version read before the scan equals the version read after it
/// (the scan observed one stable snapshot). That bracket is the whole
/// guard on the lock-free read path too: the version counter is monotone
/// and bumped inside the writer's critical section *before* the
/// replacement snapshot is published, so a scan racing a background
/// publish either reads the old version twice (and computed against the
/// old snapshot — a correct entry for it) or sees the bracket differ and
/// stamps nothing. A stale answer can therefore never be inserted under
/// the new version, with no lock shared between filler and writer.
/// Because a dropped-and-recreated index restarts its counter, the
/// service additionally calls InvalidateIndex on every drop/republish of
/// a name (after an epoch Synchronize, so no in-flight lock-free fill
/// can stamp behind the invalidation).
///
/// Thread safety: a single internal mutex; every operation is O(1) except
/// InvalidateIndex (O(entries), drop-rate rare).
class QueryCache {
 public:
  explicit QueryCache(const QueryCacheOptions& options);

  /// Canonical key for a request. Heatmap captures are never cached (the
  /// report embeds a per-run access pattern); callers gate on Cacheable.
  static std::string KeyFor(const QueryRequest& request);
  static bool Cacheable(const QueryRequest& request);

  /// Returns the stored report iff present at exactly `version`.
  std::optional<QueryReport> Lookup(const std::string& key, uint64_t version);

  /// Stores (replacing any entry under the key), then evicts LRU-first
  /// down to both capacity limits.
  void Insert(const std::string& key, const std::string& index,
              uint64_t version, const QueryReport& report);

  /// Removes every entry belonging to `index` (drop/republish edge).
  void InvalidateIndex(const std::string& index);

  QueryCacheStats Snapshot() const;

  /// True when not-found answers are cached (QueryCacheOptions knob).
  bool negative_caching_enabled() const {
    return options_.cache_negative_results;
  }

 private:
  struct Entry {
    std::string key;
    std::string index;
    uint64_t version = 0;
    QueryReport report;
    size_t charge = 0;
  };

  size_t ChargeOf(const Entry& entry) const;
  void EraseLocked(std::list<Entry>::iterator it);

  const QueryCacheOptions options_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  uint64_t bytes_ = 0;
  QueryCacheStats stats_;
};

}  // namespace api
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_QUERY_CACHE_H_
