#ifndef COCONUT_PALM_FACTORY_H_
#define COCONUT_PALM_FACTORY_H_

#include <functional>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "core/index.h"
#include "series/isax.h"
#include "core/raw_store.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace stream {
class Wal;
}  // namespace stream
namespace palm {

/// The three index families of the demo.
enum class IndexFamily { kAds, kCTree, kClsm };

/// Streaming scheme (kStatic = no temporal dimension).
enum class StreamMode { kStatic, kPP, kTP, kBTP };

/// One cell of the Figure-1 variant matrix plus its tuning knobs. The
/// factory validates combinations against the matrix: BTP exists only for
/// CLSM (it requires sort-merged partitions), TP only for ADS+/CTree.
struct VariantSpec {
  IndexFamily family = IndexFamily::kCTree;
  bool materialized = false;
  StreamMode mode = StreamMode::kStatic;
  series::SaxConfig sax;

  /// CTree: build-time leaf occupancy.
  double fill_factor = 1.0;
  /// CLSM: growth factor T.
  int growth_factor = 4;
  /// CLSM buffer / TP-BTP partition buffer, in entries.
  size_t buffer_entries = 4096;
  /// CTree construction-sort budget; also sizes the ADS+ global buffer.
  size_t memory_budget_bytes = 64ull << 20;
  /// Worker threads for the construction sort (CTree bulk load). 1 =
  /// synchronous; N pipelines run generation behind ingestion.
  size_t construction_threads = 1;
  /// ADS+: leaf split threshold.
  size_t ads_leaf_capacity = 1024;
  /// BTP: equal-size partitions per consolidation.
  int btp_merge_k = 2;

  /// Shards: > 1 partitions the dataset by invSAX key range across that
  /// many independent per-shard storage managers / buffer pools, queried
  /// scatter-gather (exact results are unchanged). Static indexes build
  /// shards concurrently (ShardedIndex); streaming variants require
  /// async_ingest and route each live series to its key-range shard,
  /// whose seal/merge cascades run on per-shard strands
  /// (ShardedStreamingIndex). 1 = unsharded.
  size_t num_shards = 1;
  /// Worker threads finalizing shards concurrently (0 = one per shard).
  size_t shard_build_threads = 0;
  /// Worker threads fanning a query out across shards (0 = one per shard,
  /// capped at 8).
  size_t shard_query_threads = 0;

  /// Streaming: what Ingest does with a timestamp below the largest one
  /// accepted so far (see stream::TimestampPolicy).
  stream::TimestampPolicy timestamp_policy =
      stream::TimestampPolicy::kPermissive;
  /// Streaming: defer seals, flushes and merge cascades to a background
  /// pool so Ingest never blocks on index I/O and queries run against
  /// snapshots. Valid for the buffering streaming variants — CTree-TP,
  /// CLSM-BTP and CLSM-PP; after FlushAll() (a drain barrier) the index
  /// answers identically to a synchronous build over the same input.
  bool async_ingest = false;
  /// Pool carrying the deferred work when async_ingest is set (not owned;
  /// must outlive the index). nullptr = the process-wide
  /// SharedBackgroundPool().
  ThreadPool* background_pool = nullptr;

  /// Bounded ingest backpressure (async streaming only): cap on
  /// detached-but-unflushed buffers per index — per *shard* when sharded —
  /// each holding up to buffer_entries series in memory. 0 = unbounded.
  size_t max_inflight_seals = 0;
  /// At the cap, Ingest either blocks until a seal retires or returns
  /// ResourceExhausted (a structured resource_exhausted ApiError / HTTP
  /// 429 on the wire).
  stream::BackpressurePolicy backpressure_policy =
      stream::BackpressurePolicy::kBlock;
  /// Test seam, process-local like background_pool (never on the wire):
  /// runs at the head of every background seal/flush so fault-injection
  /// suites can throttle or fail the flusher.
  std::function<Status()> seal_test_hook{};

  /// Durability ("durability": "on"|"off" on the wire): attach a
  /// write-ahead log — per shard, when sharded — so every acknowledged
  /// ingest survives a crash and create_stream recovers an existing
  /// stream instead of clearing it. Valid for the buffering streaming
  /// variants only (CTree-TP, CLSM-BTP, CLSM-PP): ADS+ partitions have
  /// no checkpointable manifest and a static build has no stream to
  /// re-ack.
  bool durable = false;
  /// Process-local (never on the wire): the open WAL the created index
  /// appends to (not owned; must outlive the index). The api layer opens
  /// it per stream; the sharded wrapper opens its own per-shard logs and
  /// ignores this field.
  stream::Wal* wal = nullptr;
  /// Test seam, process-local like seal_test_hook: forwarded as the
  /// Wal::Options::test_hook of every log this spec opens (the unsharded
  /// stream log, or all per-shard logs), so the kill-test harness can
  /// crash the process at named durability edges.
  std::function<void(const char*)> wal_test_hook{};
};

/// Variant display name, e.g. "CTreeFull-PP", "CLSM-BTP", "ADS+".
std::string VariantName(const VariantSpec& spec);

/// Whether `spec` is a cell of the paper's variant matrix.
bool SpecIsValid(const VariantSpec& spec, std::string* why);

/// Creates a static (mode kStatic) index.
Result<std::unique_ptr<core::DataSeriesIndex>> CreateStaticIndex(
    const VariantSpec& spec, storage::StorageManager* storage,
    const std::string& name, storage::BufferPool* pool,
    core::RawSeriesStore* raw);

/// Creates a streaming (PP/TP/BTP) index.
Result<std::unique_ptr<stream::StreamingIndex>> CreateStreamingIndex(
    const VariantSpec& spec, storage::StorageManager* storage,
    const std::string& name, storage::BufferPool* pool,
    core::RawSeriesStore* raw);

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_FACTORY_H_
