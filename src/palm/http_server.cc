#include "palm/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/timer.h"

namespace coconut {
namespace palm {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;
/// Workers poll the stop flag at this cadence while blocked in recv.
constexpr int kRecvPollMs = 200;
/// Write-side slow-client defense. SO_SNDTIMEO only bounds a
/// zero-progress stretch, so a client draining a few KB per timeout tick
/// could otherwise hold a worker (and Stop() behind it) for hours. After
/// a grace period the sender requires a minimum average throughput —
/// responses are unbounded (a max-bin heat map serializes to ~100MB), so
/// a fixed wall-clock deadline would cut off legitimate slow links.
constexpr double kSendGraceSeconds = 30.0;
constexpr double kMinSendBytesPerSecond = 64.0 * 1024;
/// Per-send() stall timeout (SO_SNDTIMEO). Deliberately independent of
/// keep_alive_timeout_ms: tuning the idle-read deadline down must not
/// shrink the window a legitimate client has to drain a full socket
/// buffer mid-response.
constexpr int kSendStallTimeoutMs = 5000;
/// Read-side counterpart of the send throughput floor: an absolute
/// per-request deadline made the 64 MiB body cap unreachable for
/// slow-but-honest uploaders (64 MiB inside keep_alive_timeout_ms needs
/// >100 Mbit/s at the default 5 s). Instead, a body read may take as
/// long as it keeps progressing: any zero-progress stretch is still
/// bounded by keep_alive_timeout_ms, and after a grace period the
/// average transfer rate must clear a floor — a slow-loris client
/// dripping one byte per tick dies at the floor, a slow link streaming
/// steadily does not.
constexpr double kRecvGraceSeconds = 30.0;
constexpr double kMinRecvBytesPerSecond = 64.0 * 1024;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 411:
      return "Length Required";
    case 413:
      return "Payload Too Large";
    case 417:
      return "Expectation Failed";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
    default:
      return "Internal Server Error";
  }
}

/// One parsed request.
struct ParsedRequest {
  bool ok = false;
  std::string method;
  std::string target;
  bool keep_alive = true;
  std::string body;
  /// Content-Type header value, lowercased, parameters stripped after
  /// ';'. Empty when absent (JSON assumed).
  std::string content_type;
  /// Credential from the Authorization header ("Bearer <x>" -> "<x>";
  /// other schemes pass through whole). Empty = anonymous.
  std::string client_token;
};

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return s;
}

/// recv() with EINTR handling. Returns >0 bytes, 0 on orderly close,
/// -1 on timeout (EAGAIN), -2 on hard error.
ssize_t RecvSome(int fd, char* buf, size_t len) {
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

bool SendAll(int fd, const char* data, size_t len) {
  WallTimer timer;
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN here means the SO_SNDTIMEO send timeout expired: the peer
      // stopped reading and the socket buffer is full. Retrying would
      // block this worker forever (and Stop() behind it) on a client
      // that never drains — give the connection up instead.
      return false;
    }
    sent += static_cast<size_t>(n);
    if (sent < len) {
      const double elapsed = timer.ElapsedSeconds();
      if (elapsed > kSendGraceSeconds &&
          static_cast<double>(sent) < elapsed * kMinSendBytesPerSecond) {
        return false;  // drip-feeding reader: below the throughput floor
      }
    }
  }
  return true;
}

bool WriteResponse(int fd, int status, const std::string& body,
                   bool keep_alive, const char* extra_header = nullptr,
                   bool include_body = true) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     ReasonPhrase(status) + "\r\n";
  head += "Content-Type: application/json\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  if (extra_header != nullptr) {
    head += extra_header;
    head += "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  if (!SendAll(fd, head.data(), head.size())) return false;
  // HEAD responses advertise the entity's Content-Length but carry no
  // body; sending one would desync keep-alive clients.
  if (!include_body) return true;
  return SendAll(fd, body.data(), body.size());
}

std::string JsonError(const Status& status) {
  return api::ApiError::FromStatus(status).ToJsonString();
}

/// The canonical dispatcher: bodies straight into the typed service. The
/// Content-Type is deliberately ignored (curl -d sends form-urlencoded;
/// the body was always treated as JSON) — binary framings are negotiated
/// only by the distributed endpoints, which implement HttpDispatcher
/// themselves.
class ServiceDispatcher : public HttpDispatcher {
 public:
  explicit ServiceDispatcher(api::Service* service) : service_(service) {}

  Result<std::string> Dispatch(const HttpRequestInfo& request) override {
    return service_->Dispatch(request.method, request.body,
                              request.client_token);
  }

 private:
  api::Service* service_;
};

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    api::Service* service, const HttpServerOptions& options) {
  if (service == nullptr) {
    return Status::InvalidArgument("HttpServer needs a service");
  }
  auto adapter = std::make_unique<ServiceDispatcher>(service);
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<HttpServer> server,
                           Start(adapter.get(), options));
  server->owned_dispatcher_ = std::move(adapter);
  return server;
}

Result<std::unique_ptr<HttpServer>> HttpServer::Start(
    HttpDispatcher* dispatcher, const HttpServerOptions& options) {
  if (dispatcher == nullptr) {
    return Status::InvalidArgument("HttpServer needs a dispatcher");
  }
  std::unique_ptr<HttpServer> server(new HttpServer(dispatcher, options));
  COCONUT_RETURN_NOT_OK(server->Listen());
  server->acceptor_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  const size_t threads = options.threads == 0 ? 1 : options.threads;
  server->workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("invalid bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return Status::IoError("getsockname: " +
                           std::string(std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

void HttpServer::Stop() {
  // Serialized so an explicit Stop and the destructor can't join the same
  // threads twice; the second caller waits for the first to finish.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  {
    // The flag must flip under queue_mutex_: a worker that has evaluated
    // the wait predicate but not yet parked would otherwise miss this
    // notify forever (lost wakeup), hanging the join below.
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_.store(true);
  }
  // Wake the acceptor blocked in accept(); the fd itself is closed only
  // after the acceptor joined, so no thread ever reads a stale/reused fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections accepted but never claimed by a worker.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (const int fd : pending_connections_) ::close(fd);
  pending_connections_.clear();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // A client resetting before accept() (ECONNABORTED) or transient
      // resource exhaustion must not kill the acceptor for the life of
      // the process; back off briefly and keep serving.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      // Closed listener (Stop) or a hard error: either way, stop serving.
      break;
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    // Responses go out as two sends (head, then body); without NODELAY
    // Nagle holds the second until the first is ACKed, adding ~40 ms of
    // delayed-ACK latency to every keep-alive request on loopback.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_connections_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !pending_connections_.empty();
      });
      if (pending_connections_.empty()) return;  // stopping
      fd = pending_connections_.front();
      pending_connections_.pop_front();
    }
    HandleConnection(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  timeval poll_interval{};
  poll_interval.tv_sec = kRecvPollMs / 1000;
  poll_interval.tv_usec = (kRecvPollMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &poll_interval,
               sizeof(poll_interval));
  // Bound writes too: without a send timeout a client that stops reading
  // parks a worker in send() permanently once the socket buffer fills.
  timeval send_timeout{};
  send_timeout.tv_sec = kSendStallTimeoutMs / 1000;
  send_timeout.tv_usec = (kSendStallTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));

  std::string buffer;
  bool alive = true;
  while (alive && !stopping_.load()) {
    // ---- read one request (headers, then Content-Length body bytes).
    // The deadline is absolute per request, checked whether or not bytes
    // arrived: a client dripping one byte per poll interval must not be
    // able to hold a worker past the timeout (slow-loris).
    size_t header_end = std::string::npos;
    WallTimer deadline;
    const double timeout_ms =
        static_cast<double>(options_.keep_alive_timeout_ms);
    while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (buffer.size() > kMaxHeaderBytes) {
        WriteResponse(fd, 431,
                      JsonError(Status::InvalidArgument(
                          "request headers exceed 64KiB")),
                      false);
        ::close(fd);
        return;
      }
      if (stopping_.load() || deadline.ElapsedSeconds() * 1000.0 > timeout_ms) {
        ::close(fd);
        return;
      }
      char chunk[8192];
      const ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
      if (n == 0 || n == -2) {
        ::close(fd);  // peer closed (between requests this is normal)
        return;
      }
      if (n == -1) continue;  // poll tick; deadline re-checked above
      buffer.append(chunk, static_cast<size_t>(n));
    }

    ParsedRequest request;
    {
      const std::string head = buffer.substr(0, header_end);
      size_t line_end = head.find("\r\n");
      const std::string request_line =
          line_end == std::string::npos ? head : head.substr(0, line_end);
      const size_t sp1 = request_line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : request_line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        WriteResponse(
            fd, 400,
            JsonError(Status::InvalidArgument("malformed request line")),
            false);
        ::close(fd);
        return;
      }
      request.method = request_line.substr(0, sp1);
      request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      const std::string version = request_line.substr(sp2 + 1);
      if (version.rfind("HTTP/1.", 0) != 0) {
        WriteResponse(fd, 505,
                      JsonError(Status::InvalidArgument(
                          "only HTTP/1.x is supported")),
                      false);
        ::close(fd);
        return;
      }
      request.keep_alive = version != "HTTP/1.0";

      bool have_length = false;
      bool expect_continue = false;
      size_t content_length = 0;
      size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
      while (pos < head.size()) {
        size_t next = head.find("\r\n", pos);
        if (next == std::string::npos) next = head.size();
        const std::string line = head.substr(pos, next - pos);
        pos = next + 2;
        const size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        const std::string name = ToLower(line.substr(0, colon));
        std::string value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' ||
                                  value.front() == '\t')) {
          value.erase(value.begin());
        }
        while (!value.empty() && (value.back() == ' ' ||
                                  value.back() == '\t' ||
                                  value.back() == '\r')) {
          value.pop_back();
        }
        if (name == "content-length") {
          char* end = nullptr;
          const unsigned long long parsed =
              std::strtoull(value.c_str(), &end, 10);
          // Repeated Content-Length headers are the CL.CL
          // request-smuggling setup (RFC 7230 §3.3.3): a proxy honoring
          // the other copy would disagree on where the body ends.
          if (value.empty() || end != value.c_str() + value.size() ||
              have_length) {
            WriteResponse(fd, 400,
                          JsonError(Status::InvalidArgument(
                              have_length ? "duplicate Content-Length"
                                          : "invalid Content-Length")),
                          false);
            ::close(fd);
            return;
          }
          content_length = static_cast<size_t>(parsed);
          have_length = true;
        } else if (name == "transfer-encoding") {
          WriteResponse(fd, 501,
                        JsonError(Status::NotSupported(
                            "chunked transfer encoding is not supported; "
                            "send Content-Length")),
                        false);
          ::close(fd);
          return;
        } else if (name == "content-type") {
          std::string media = ToLower(value);
          if (const size_t semi = media.find(';'); semi != std::string::npos) {
            media.resize(semi);
          }
          while (!media.empty() && (media.back() == ' ' ||
                                    media.back() == '\t')) {
            media.pop_back();
          }
          request.content_type = media;
        } else if (name == "authorization") {
          const std::string lowered = ToLower(value);
          if (lowered.rfind("bearer ", 0) == 0) {
            request.client_token = value.substr(7);
            // RFC 6750 allows whitespace padding after the scheme.
            while (!request.client_token.empty() &&
                   request.client_token.front() == ' ') {
              request.client_token.erase(request.client_token.begin());
            }
          } else {
            request.client_token = value;
          }
        } else if (name == "connection") {
          const std::string lowered = ToLower(value);
          if (lowered == "close") request.keep_alive = false;
          if (lowered == "keep-alive") request.keep_alive = true;
        } else if (name == "expect") {
          // curl adds "Expect: 100-continue" to POSTs over 1KB and waits
          // for the interim response before sending the body; never
          // answering it stalls every sizable request by curl's 1s grace
          // period (and strict clients forever). Expect in an HTTP/1.0
          // request is ignored — 1.0 clients have no concept of interim
          // responses and would parse a 100 as the final one (RFC 7231
          // §5.1.1).
          if (version == "HTTP/1.0") continue;
          if (ToLower(value) != "100-continue") {
            WriteResponse(fd, 417,
                          JsonError(Status::InvalidArgument(
                              "unsupported Expect value")),
                          false);
            ::close(fd);
            return;
          }
          expect_continue = true;
        }
      }
      if (content_length > options_.max_body_bytes) {
        WriteResponse(fd, 413,
                      JsonError(Status::ResourceExhausted(
                          "request body exceeds max_body_bytes")),
                      false);
        ::close(fd);
        return;
      }
      buffer.erase(0, header_end + 4);
      if (expect_continue && buffer.size() < content_length) {
        // Unblock clients waiting for the go-ahead before sending the
        // body; any body bytes already buffered mean the client did not
        // wait, and the interim response is harmless either way.
        const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
        if (!SendAll(fd, kContinue, sizeof(kContinue) - 1)) {
          ::close(fd);
          return;
        }
      }
      // Size-aware transfer timeout (mirrors SendAll): the idle deadline
      // restarts on every received chunk, and total elapsed time is
      // bounded only through the throughput floor — so a large body on a
      // slow-but-honest link survives while both stall and drip attacks
      // still die.
      WallTimer body_timer;
      WallTimer progress_timer;
      const size_t body_preread = buffer.size();
      while (buffer.size() < content_length) {
        if (stopping_.load() || progress_timer.ElapsedMillis() > timeout_ms) {
          ::close(fd);
          return;
        }
        const double elapsed = body_timer.ElapsedSeconds();
        if (elapsed > kRecvGraceSeconds &&
            static_cast<double>(buffer.size() - body_preread) <
                elapsed * kMinRecvBytesPerSecond) {
          ::close(fd);  // drip-feeding uploader: below the throughput floor
          return;
        }
        char chunk[8192];
        const ssize_t n = RecvSome(fd, chunk, sizeof(chunk));
        if (n == 0 || n == -2) {
          ::close(fd);
          return;
        }
        if (n == -1) continue;  // poll tick; deadlines re-checked above
        buffer.append(chunk, static_cast<size_t>(n));
        progress_timer.Reset();
      }
      request.body = buffer.substr(0, content_length);
      buffer.erase(0, content_length);
      (void)have_length;  // absent Content-Length means an empty body
      request.ok = true;
    }

    // A stopping server finishes this request but opts out of keep-alive.
    if (stopping_.load()) request.keep_alive = false;

    // ---- route.
    std::string target = request.target;
    if (const size_t q = target.find('?'); q != std::string::npos) {
      target.resize(q);  // the API carries parameters in the body
    }
    // Every HEAD response advertises the entity's Content-Length but
    // carries no body, whatever route it hit — a body after the headers
    // would desync keep-alive clients.
    const bool include_body = request.method != "HEAD";
    if (target == "/healthz") {
      if (request.method == "GET" || request.method == "HEAD") {
        alive = WriteResponse(fd, 200, "{\"ok\":true}", request.keep_alive,
                              nullptr, include_body);
      } else {
        alive = WriteResponse(
            fd, 405, JsonError(Status::InvalidArgument("use GET /healthz")),
            request.keep_alive, "Allow: GET, HEAD", include_body);
      }
    } else if (target.rfind("/api/v1/", 0) == 0) {
      const std::string method_name = target.substr(8);
      if (request.method != "POST") {
        alive = WriteResponse(fd, 405,
                              JsonError(Status::InvalidArgument(
                                  "API methods are invoked with POST")),
                              request.keep_alive, "Allow: POST",
                              include_body);
      } else {
        // The service reports failures through Status, but a hostile
        // request can still provoke an exception below it (e.g. an
        // allocation a validation cap missed); letting it escape this
        // thread would std::terminate the whole server.
        Result<std::string> dispatched =
            Status::Internal("dispatch did not run");
        try {
          HttpRequestInfo info;
          info.method = method_name;
          info.body = std::move(request.body);
          info.content_type = request.content_type;
          info.client_token = request.client_token;
          dispatched = dispatcher_->Dispatch(info);
        } catch (const std::exception& e) {
          dispatched = Status::Internal(std::string("unhandled exception: ") +
                                        e.what());
        } catch (...) {
          dispatched = Status::Internal("unhandled exception");
        }
        if (dispatched.ok()) {
          alive = WriteResponse(fd, 200, dispatched.value(),
                                request.keep_alive);
        } else {
          const int http_status =
              api::StatusCodeToHttpStatus(dispatched.status().code());
          alive = WriteResponse(
              fd, http_status, JsonError(dispatched.status()),
              request.keep_alive,
              http_status == 401 ? "WWW-Authenticate: Bearer" : nullptr);
        }
      }
    } else {
      alive = WriteResponse(
          fd, 404,
          JsonError(Status::NotFound("no route for '" + target +
                                     "' (use POST /api/v1/<method>)")),
          request.keep_alive, nullptr, include_body);
    }
    alive = alive && request.keep_alive;
  }
  ::close(fd);
}

}  // namespace palm
}  // namespace coconut
