#include "palm/quota.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace coconut {
namespace palm {
namespace api {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QuotaEnforcer::QuotaEnforcer(QuotaOptions options)
    : options_(std::move(options)) {
  if (!options_.clock_seconds) options_.clock_seconds = &SteadySeconds;
  for (const auto& [token, quota] : options_.clients) {
    Bucket bucket;
    bucket.quota = quota;
    buckets_.emplace(token, bucket);
  }
  if (options_.anonymous_quota.has_value()) {
    anonymous_bucket_.quota = *options_.anonymous_quota;
  } else {
    anonymous_bucket_.quota.requests_per_second = 0.0;  // Unlimited.
  }
}

Status QuotaEnforcer::AdmitBucket(Bucket* bucket, double now_s) {
  const double rate = bucket->quota.requests_per_second;
  if (rate <= 0.0) return Status::OK();  // Unlimited client.
  const double burst = std::max(bucket->quota.burst, 1.0);
  if (!bucket->primed) {
    // First sighting: a full bucket, so a client's initial burst up to
    // `burst` goes through before pacing kicks in.
    bucket->tokens = burst;
    bucket->primed = true;
  } else {
    const double elapsed = std::max(0.0, now_s - bucket->last_refill_s);
    bucket->tokens = std::min(burst, bucket->tokens + elapsed * rate);
  }
  bucket->last_refill_s = now_s;
  if (bucket->tokens >= 1.0) {
    bucket->tokens -= 1.0;
    return Status::OK();
  }
  const double deficit_s = (1.0 - bucket->tokens) / rate;
  const int64_t retry_ms =
      static_cast<int64_t>(std::ceil(deficit_s * 1000.0));
  return Status::ResourceExhausted(
      "client over rate quota (" + std::to_string(rate) +
      " req/s, burst " + std::to_string(burst) + "); retry in ~" +
      std::to_string(retry_ms) + " ms");
}

Status QuotaEnforcer::Admit(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  const double now_s = options_.clock_seconds();
  Bucket* bucket = nullptr;
  auto it = buckets_.find(token);
  if (it != buckets_.end()) {
    bucket = &it->second;
  } else if (options_.allow_anonymous) {
    bucket = &anonymous_bucket_;
  } else {
    ++stats_.unauthenticated;
    return Status::Unauthenticated(
        token.empty() ? "missing client token: present Authorization: "
                        "Bearer <token>"
                      : "unknown client token");
  }
  Status status = AdmitBucket(bucket, now_s);
  if (status.ok()) {
    ++stats_.admitted;
  } else {
    ++stats_.throttled;
  }
  return status;
}

QuotaStats QuotaEnforcer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace api
}  // namespace palm
}  // namespace coconut
