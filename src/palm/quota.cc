#include "palm/quota.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace coconut {
namespace palm {
namespace api {

namespace {

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status LineError(const std::string& where, size_t line_number,
                 const std::string& line, const char* why) {
  return Status::InvalidArgument("quota config " + where + " line " +
                                 std::to_string(line_number) + ": " + why +
                                 " in '" + line + "'");
}

/// Strict non-negative double: the whole string must parse.
bool ParseRate(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (!(value >= 0.0) || !std::isfinite(value)) return false;
  *out = value;
  return true;
}

}  // namespace

Result<QuotaOptions> ParseQuotaConfig(const std::string& text,
                                      const std::string& where) {
  QuotaOptions options;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t newline = text.find('\n', pos);
    if (newline == std::string::npos) newline = text.size();
    std::string line = text.substr(pos, newline - pos);
    pos = newline + 1;
    ++line_number;
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    line = Trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) {
      return LineError(where, line_number, line,
                       "expected TOKEN=RPS[:BURST]");
    }
    const std::string token = Trim(line.substr(0, eq));
    const std::string rest = Trim(line.substr(eq + 1));
    ClientQuota quota;
    const size_t colon = rest.find(':');
    const std::string rps_text =
        colon == std::string::npos ? rest : Trim(rest.substr(0, colon));
    if (!ParseRate(rps_text, &quota.requests_per_second)) {
      return LineError(where, line_number, line,
                       "RPS must be a non-negative number");
    }
    if (colon != std::string::npos) {
      if (!ParseRate(Trim(rest.substr(colon + 1)), &quota.burst)) {
        return LineError(where, line_number, line,
                         "BURST must be a non-negative number");
      }
    } else {
      quota.burst = 2.0 * quota.requests_per_second;
    }
    if (token == "*") {
      if (options.allow_anonymous) {
        return LineError(where, line_number, line,
                         "duplicate anonymous ('*') entry");
      }
      options.allow_anonymous = true;
      options.anonymous_quota = quota;
    } else {
      if (options.clients.count(token) != 0) {
        return LineError(where, line_number, line, "duplicate token");
      }
      options.clients[token] = quota;
    }
  }
  return options;
}

Result<QuotaOptions> LoadQuotaFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("open quota file " + path + ": " +
                           std::strerror(errno));
  }
  std::string text;
  char chunk[4096];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    text.append(chunk, n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("read quota file " + path);
  }
  return ParseQuotaConfig(text, path);
}

QuotaEnforcer::QuotaEnforcer(QuotaOptions options)
    : options_(std::move(options)) {
  if (!options_.clock_seconds) options_.clock_seconds = &SteadySeconds;
  for (const auto& [token, quota] : options_.clients) {
    Bucket bucket;
    bucket.quota = quota;
    buckets_.emplace(token, bucket);
  }
  if (options_.anonymous_quota.has_value()) {
    anonymous_bucket_.quota = *options_.anonymous_quota;
  } else {
    anonymous_bucket_.quota.requests_per_second = 0.0;  // Unlimited.
  }
}

Status QuotaEnforcer::AdmitBucket(Bucket* bucket, double now_s) {
  const double rate = bucket->quota.requests_per_second;
  if (rate <= 0.0) return Status::OK();  // Unlimited client.
  const double burst = std::max(bucket->quota.burst, 1.0);
  if (!bucket->primed) {
    // First sighting: a full bucket, so a client's initial burst up to
    // `burst` goes through before pacing kicks in.
    bucket->tokens = burst;
    bucket->primed = true;
  } else {
    const double elapsed = std::max(0.0, now_s - bucket->last_refill_s);
    bucket->tokens = std::min(burst, bucket->tokens + elapsed * rate);
  }
  bucket->last_refill_s = now_s;
  if (bucket->tokens >= 1.0) {
    bucket->tokens -= 1.0;
    return Status::OK();
  }
  const double deficit_s = (1.0 - bucket->tokens) / rate;
  const int64_t retry_ms =
      static_cast<int64_t>(std::ceil(deficit_s * 1000.0));
  return Status::ResourceExhausted(
      "client over rate quota (" + std::to_string(rate) +
      " req/s, burst " + std::to_string(burst) + "); retry in ~" +
      std::to_string(retry_ms) + " ms");
}

Status QuotaEnforcer::Admit(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  const double now_s = options_.clock_seconds();
  Bucket* bucket = nullptr;
  auto it = buckets_.find(token);
  if (it != buckets_.end()) {
    bucket = &it->second;
  } else if (options_.allow_anonymous) {
    bucket = &anonymous_bucket_;
  } else {
    ++stats_.unauthenticated;
    return Status::Unauthenticated(
        token.empty() ? "missing client token: present Authorization: "
                        "Bearer <token>"
                      : "unknown client token");
  }
  Status status = AdmitBucket(bucket, now_s);
  if (status.ok()) {
    ++stats_.admitted;
  } else {
    ++stats_.throttled;
  }
  return status;
}

QuotaStats QuotaEnforcer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace api
}  // namespace palm
}  // namespace coconut
