#include "palm/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace coconut {
namespace palm {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

BlockingHttpClient::BlockingHttpClient(std::string host, uint16_t port,
                                       BlockingHttpClientOptions options)
    : host_(std::move(host)), port_(port), client_options_(options) {}

BlockingHttpClient::~BlockingHttpClient() { Close(); }

void BlockingHttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

int BlockingHttpClient::RemainingMs() const {
  if (!deadline_armed_) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline_ - std::chrono::steady_clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

Status BlockingHttpClient::ArmSocketDeadline(int optname) {
  const int remaining = RemainingMs();
  if (remaining < 0) return Status::OK();
  if (remaining == 0) {
    return Status::Unavailable("request to " + host_ + ":" +
                               std::to_string(port_) + " timed out after " +
                               std::to_string(
                                   client_options_.request_timeout_ms) +
                               "ms");
  }
  timeval tv{};
  tv.tv_sec = remaining / 1000;
  tv.tv_usec = (remaining % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, optname, &tv, sizeof(tv));
  return Status::OK();
}

Status BlockingHttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  // Latency measurements, not bulk transfer: flush each request eagerly.
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("not an IPv4 address: " + host_);
  }
  const std::string endpoint = host_ + ":" + std::to_string(port_);
  if (client_options_.connect_timeout_ms <= 0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const std::string message = std::strerror(errno);
      Close();
      return Status::IoError("connect " + endpoint + ": " + message);
    }
    return Status::OK();
  }
  // Bounded connect: non-blocking connect, poll for writability, then
  // read SO_ERROR for the real outcome and restore blocking mode.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      const std::string message = std::strerror(errno);
      Close();
      return Status::Unavailable("connect " + endpoint + ": " + message);
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    int poll_rc;
    do {
      poll_rc = ::poll(&pfd, 1, client_options_.connect_timeout_ms);
    } while (poll_rc < 0 && errno == EINTR);
    if (poll_rc == 0) {
      Close();
      return Status::Unavailable(
          "connect " + endpoint + " timed out after " +
          std::to_string(client_options_.connect_timeout_ms) + "ms");
    }
    if (poll_rc < 0) {
      const std::string message = std::strerror(errno);
      Close();
      return Status::IoError("poll(connect " + endpoint + "): " + message);
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      Close();
      return Status::Unavailable("connect " + endpoint + ": " +
                                 std::strerror(so_error));
    }
  }
  ::fcntl(fd_, F_SETFL, flags);
  return Status::OK();
}

Status BlockingHttpClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    COCONUT_RETURN_NOT_OK(ArmSocketDeadline(SO_SNDTIMEO));
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN = the per-send deadline expired; loop so ArmSocketDeadline
      // converts an exhausted budget into the structured timeout status.
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && deadline_armed_) {
        continue;
      }
      return Status::IoError("send: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClientResponse> BlockingHttpClient::ReadResponse() {
  size_t header_end;
  while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    COCONUT_RETURN_NOT_OK(ArmSocketDeadline(SO_RCVTIMEO));
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        deadline_armed_) {
      continue;  // deadline re-checked by ArmSocketDeadline above
    }
    return Status::IoError(n == 0 ? "connection closed mid-response"
                                  : "recv: " +
                                        std::string(std::strerror(errno)));
  }

  HttpClientResponse response;
  const std::string head = buffer_.substr(0, header_end);
  const size_t sp = head.find(' ');
  if (sp == std::string::npos) {
    return Status::IoError("malformed status line: " +
                           head.substr(0, head.find("\r\n")));
  }
  response.status = std::atoi(head.c_str() + sp + 1);

  size_t content_length = 0;
  size_t pos = head.find("\r\n");
  pos = pos == std::string::npos ? head.size() : pos + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = ToLower(line.substr(0, colon));
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') value.erase(value.begin());
    if (name == "content-length") {
      content_length = static_cast<size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
    } else if (name == "connection" && ToLower(value) == "close") {
      response.connection_close = true;
    }
  }
  buffer_.erase(0, header_end + 4);

  while (buffer_.size() < content_length) {
    COCONUT_RETURN_NOT_OK(ArmSocketDeadline(SO_RCVTIMEO));
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        deadline_armed_) {
      continue;  // deadline re-checked by ArmSocketDeadline above
    }
    return Status::IoError(n == 0 ? "connection closed mid-body"
                                  : "recv: " +
                                        std::string(std::strerror(errno)));
  }
  response.body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  if (response.connection_close) Close();
  return response;
}

Result<HttpClientResponse> BlockingHttpClient::Post(
    const std::string& target, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  if (client_options_.request_timeout_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(client_options_.request_timeout_ms);
    deadline_armed_ = true;
  }
  const bool was_connected = fd_ >= 0;
  COCONUT_RETURN_NOT_OK(EnsureConnected());
  std::string request = "POST " + target + " HTTP/1.1\r\n";
  request += "Host: " + host_ + "\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  request += body;

  Status sent = SendAll(request);
  Result<HttpClientResponse> response =
      sent.ok() ? ReadResponse() : Result<HttpClientResponse>(sent);
  if (!response.ok() && was_connected &&
      response.status().code() != StatusCode::kUnavailable) {
    // The keep-alive connection likely idled out between requests; one
    // reconnect-and-retry is safe because the request never started
    // processing on a dead socket. A deadline expiry (kUnavailable) is
    // deliberately NOT retried: the server may be mid-request, and a
    // blind resend could double-apply a non-idempotent call.
    Close();
    const auto retry = [&]() -> Result<HttpClientResponse> {
      COCONUT_RETURN_NOT_OK(EnsureConnected());
      COCONUT_RETURN_NOT_OK(SendAll(request));
      return ReadResponse();
    };
    response = retry();
  }
  deadline_armed_ = false;
  return response;
}

}  // namespace palm
}  // namespace coconut
