#include "palm/heatmap.h"

#include <algorithm>
#include <map>
#include <set>

namespace coconut {
namespace palm {

namespace {

// Density ramp from empty to hottest.
constexpr char kGlyphs[] = " .:-=+*#%@";
constexpr int kNumGlyphs = 10;

}  // namespace

HeatMap BuildHeatMap(std::span<const storage::AccessEvent> events,
                     size_t time_bins, size_t location_bins) {
  HeatMap map;
  map.time_bins = time_bins;
  map.location_bins = location_bins;
  map.counts.assign(time_bins * location_bins, 0);
  map.total_events = events.size();
  if (events.empty() || time_bins == 0 || location_bins == 0) return map;

  // Assign each touched file a contiguous band of the location axis, sized
  // by the span of pages the query touched in it.
  std::map<uint32_t, uint64_t> file_max_page;
  std::set<std::pair<uint32_t, uint64_t>> distinct;
  for (const auto& e : events) {
    auto [it, inserted] = file_max_page.try_emplace(e.file_id, e.page_no);
    if (!inserted) it->second = std::max(it->second, e.page_no);
    distinct.insert({e.file_id, e.page_no});
  }
  map.distinct_pages = distinct.size();
  map.distinct_files = file_max_page.size();

  std::map<uint32_t, uint64_t> band_start;
  uint64_t cursor = 0;
  for (const auto& [file, max_page] : file_max_page) {
    band_start[file] = cursor;
    cursor += max_page + 1;
  }
  const uint64_t total_span = std::max<uint64_t>(1, cursor);

  const uint64_t first_seq = events.front().sequence;
  const uint64_t last_seq = events.back().sequence;
  const uint64_t seq_span = std::max<uint64_t>(1, last_seq - first_seq + 1);

  for (const auto& e : events) {
    const uint64_t location = band_start[e.file_id] + e.page_no;
    size_t t = static_cast<size_t>((e.sequence - first_seq) * time_bins /
                                   seq_span);
    size_t l = static_cast<size_t>(location * location_bins / total_span);
    t = std::min(t, time_bins - 1);
    l = std::min(l, location_bins - 1);
    uint32_t& cell = map.counts[t * location_bins + l];
    ++cell;
    map.max_count = std::max(map.max_count, cell);
  }
  return map;
}

double AccessLocality(std::span<const storage::AccessEvent> events) {
  if (events.size() < 2) return 1.0;
  uint64_t local = 0;
  for (size_t i = 1; i < events.size(); ++i) {
    const auto& prev = events[i - 1];
    const auto& cur = events[i];
    if (prev.file_id == cur.file_id &&
        (cur.page_no == prev.page_no || cur.page_no == prev.page_no + 1)) {
      ++local;
    }
  }
  return static_cast<double>(local) / (events.size() - 1);
}

std::string RenderHeatMapText(const HeatMap& map) {
  std::string out;
  out.reserve(map.time_bins * (map.location_bins + 2));
  out += "+" + std::string(map.location_bins, '-') + "+  storage ->\n";
  for (size_t t = 0; t < map.time_bins; ++t) {
    out += '|';
    for (size_t l = 0; l < map.location_bins; ++l) {
      const uint32_t c = map.at(t, l);
      int glyph = 0;
      if (c > 0 && map.max_count > 0) {
        // c == max_count maps to the hottest glyph.
        glyph = 1 + static_cast<int>(static_cast<uint64_t>(c) *
                                     (kNumGlyphs - 2) / map.max_count);
        glyph = std::min(glyph, kNumGlyphs - 1);
      }
      out += kGlyphs[glyph];
    }
    out += t == 0 ? "|  time\n" : (t == 1 ? "|    |\n" : (t == 2 ? "|    v\n" : "|\n"));
  }
  out += "+" + std::string(map.location_bins, '-') + "+\n";
  return out;
}

void HeatMapToJson(const HeatMap& map, JsonWriter* writer) {
  writer->BeginObject();
  writer->Field("time_bins", static_cast<uint64_t>(map.time_bins));
  writer->Field("location_bins", static_cast<uint64_t>(map.location_bins));
  writer->Field("total_events", map.total_events);
  writer->Field("distinct_pages", map.distinct_pages);
  writer->Field("distinct_files", map.distinct_files);
  writer->Field("max_count", static_cast<uint64_t>(map.max_count));
  writer->Key("cells");
  writer->BeginArray();
  for (size_t t = 0; t < map.time_bins; ++t) {
    writer->BeginArray();
    for (size_t l = 0; l < map.location_bins; ++l) {
      writer->Uint(map.at(t, l));
    }
    writer->EndArray();
  }
  writer->EndArray();
  writer->EndObject();
}

}  // namespace palm
}  // namespace coconut
