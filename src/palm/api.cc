#include "palm/api.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <thread>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "palm/query_cache.h"
#include "palm/quota.h"
#include "palm/sharded_index.h"
#include "palm/sharded_streaming_index.h"
#include "series/series.h"
#include "stream/epoch.h"

namespace coconut {
namespace palm {
namespace api {

// --------------------------------------------------------------- errors

const char* StatusCodeToApiCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kNotSupported:
      return "not_supported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnauthenticated:
      return "unauthenticated";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "internal";
}

int StatusCodeToHttpStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kNotSupported:
      return 501;
    case StatusCode::kUnauthenticated:
      return 401;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return 500;
  }
  return 500;
}

Status ValidateName(const std::string& name, const char* what) {
  constexpr size_t kMaxNameLength = 128;
  if (name.empty()) {
    return Status::InvalidArgument(std::string(what) +
                                   " name must not be empty");
  }
  if (name.size() > kMaxNameLength) {
    return Status::InvalidArgument(std::string(what) + " name exceeds " +
                                   std::to_string(kMaxNameLength) +
                                   " characters");
  }
  if (name == "." || name == "..") {
    return Status::InvalidArgument(std::string(what) + " name '" + name +
                                   "' is reserved");
  }
  for (const char c : name) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          std::string(what) +
          " name may only contain [A-Za-z0-9_.-] characters");
    }
  }
  return Status::OK();
}

namespace {

/// Hard caps on attacker-declared sizes: wire fields that drive
/// allocations before any payload bytes constrain them (an empty "series"
/// with a huge "series_length", heat map bin counts) are bounded here so
/// a hostile request yields InvalidArgument, not std::bad_alloc.
constexpr uint64_t kMaxSeriesLength = 1u << 20;
constexpr uint64_t kMaxHeatMapBinsPerAxis = 4096;
/// Caps for wire-supplied VariantSpec knobs that size buffers, spawn
/// threads, or create per-shard storage stacks. Generous relative to any
/// real configuration, but small enough that one request cannot exhaust
/// the host before factory validation even runs.
constexpr uint64_t kMaxWireThreads = 1024;
constexpr uint64_t kMaxWireShards = 1024;
constexpr uint64_t kMaxWireBufferEntries = 1u << 24;
constexpr uint64_t kMaxWireMemoryBudgetBytes = 1ull << 36;  // 64 GiB
constexpr uint64_t kMaxWireLeafCapacity = 1u << 24;
constexpr int64_t kMaxWireSmallInt = 1024;  // growth_factor, btp_merge_k
/// Each in-flight seal pins up to buffer_entries series in memory; the cap
/// on the cap keeps a hostile spec from authorizing unbounded pinning.
constexpr uint64_t kMaxWireInflightSeals = 1u << 16;

int ApiCodeToHttpStatus(const std::string& code) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    const StatusCode sc = static_cast<StatusCode>(c);
    if (code == StatusCodeToApiCode(sc)) return StatusCodeToHttpStatus(sc);
  }
  return 500;
}

// ------------------------------------------- field extraction helpers

Status ExpectObject(const JsonValue& value, const char* what) {
  if (!value.is_object()) {
    return Status::InvalidArgument(std::string(what) +
                                   ": expected a JSON object");
  }
  return Status::OK();
}

/// Strict wire contract: a request naming fields the server does not know
/// is rejected, not silently half-honored.
Status RejectUnknown(const JsonValue& obj, const char* what,
                     std::initializer_list<std::string_view> allowed) {
  for (const JsonValue::Member& m : obj.object()) {
    if (std::find(allowed.begin(), allowed.end(), m.first) == allowed.end()) {
      return Status::InvalidArgument(std::string(what) + ": unknown field '" +
                                     m.first + "'");
    }
  }
  return Status::OK();
}

Status FieldError(const char* what, const char* key, const char* need) {
  return Status::InvalidArgument(std::string(what) + ": field '" + key +
                                 "' " + need);
}

Status OptString(const JsonValue& obj, const char* key, const char* what,
                 std::string* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) return FieldError(what, key, "must be a string");
  *out = v->string_value();
  return Status::OK();
}

Result<std::string> ReqString(const JsonValue& obj, const char* key,
                              const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(what, key, "is required");
  if (!v->is_string()) return FieldError(what, key, "must be a string");
  return v->string_value();
}

Status OptBool(const JsonValue& obj, const char* key, const char* what,
               bool* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_bool()) return FieldError(what, key, "must be a boolean");
  *out = v->bool_value();
  return Status::OK();
}

Status OptUint(const JsonValue& obj, const char* key, const char* what,
               uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return FieldError(what, key, "must be a number");
  Result<uint64_t> r = v->AsUint64();
  if (!r.ok()) {
    return FieldError(what, key, "must be a non-negative integer");
  }
  *out = r.value();
  return Status::OK();
}

Status OptInt(const JsonValue& obj, const char* key, const char* what,
              int64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return FieldError(what, key, "must be a number");
  Result<int64_t> r = v->AsInt64();
  if (!r.ok()) return FieldError(what, key, "must be an integer");
  *out = r.value();
  return Status::OK();
}

/// Range-checked variants for wire fields that are narrowed to int/size_t
/// or drive allocations and thread counts: out-of-range values are
/// rejected instead of silently truncated or honored at host-exhausting
/// magnitudes.
Status OptUintInRange(const JsonValue& obj, const char* key,
                      const char* what, uint64_t* out, uint64_t max) {
  COCONUT_RETURN_NOT_OK(OptUint(obj, key, what, out));
  if (*out > max) {
    return Status::InvalidArgument(std::string(what) + ": field '" + key +
                                   "' must be at most " +
                                   std::to_string(max));
  }
  return Status::OK();
}

Status OptIntInRange(const JsonValue& obj, const char* key, const char* what,
                     int64_t* out, int64_t min, int64_t max) {
  COCONUT_RETURN_NOT_OK(OptInt(obj, key, what, out));
  if (*out < min || *out > max) {
    return Status::InvalidArgument(
        std::string(what) + ": field '" + key + "' must be in [" +
        std::to_string(min) + ", " + std::to_string(max) + "]");
  }
  return Status::OK();
}

Status OptDouble(const JsonValue& obj, const char* key, const char* what,
                 double* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_number()) return FieldError(what, key, "must be a number");
  *out = v->AsDouble();
  return Status::OK();
}

Result<uint64_t> ReqUint(const JsonValue& obj, const char* key,
                         const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(what, key, "is required");
  if (!v->is_number()) return FieldError(what, key, "must be a number");
  Result<uint64_t> r = v->AsUint64();
  if (!r.ok()) {
    return FieldError(what, key, "must be a non-negative integer");
  }
  return r.value();
}

Result<double> ReqDouble(const JsonValue& obj, const char* key,
                         const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(what, key, "is required");
  if (!v->is_number()) return FieldError(what, key, "must be a number");
  return v->AsDouble();
}

Result<bool> ReqBool(const JsonValue& obj, const char* key,
                     const char* what) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) return FieldError(what, key, "is required");
  if (!v->is_bool()) return FieldError(what, key, "must be a boolean");
  return v->bool_value();
}

/// Shared by register_dataset and ingest_batch: reads "series" (array of
/// equal-length arrays of numbers) plus optional "series_length" into a
/// SeriesCollection, rejecting ragged input.
Result<series::SeriesCollection> ParseSeriesMatrix(const JsonValue& obj,
                                                   const char* what) {
  const JsonValue* arr = obj.Find("series");
  if (arr == nullptr) return FieldError(what, "series", "is required");
  if (!arr->is_array()) {
    return FieldError(what, "series", "must be an array of series");
  }
  uint64_t length = 0;
  bool have_length = false;
  if (const JsonValue* l = obj.Find("series_length"); l != nullptr) {
    if (!l->is_number() || !l->AsUint64().ok()) {
      return FieldError(what, "series_length",
                        "must be a non-negative integer");
    }
    length = l->AsUint64().value();
    have_length = true;
  }
  if (!have_length) {
    if (arr->array_size() == 0) {
      return Status::InvalidArgument(
          std::string(what) +
          ": empty 'series' requires an explicit 'series_length'");
    }
    // A packed outer array means the elements are numbers, not rows.
    if (arr->is_packed_array()) {
      return FieldError(what, "series", "must contain arrays of numbers");
    }
    const JsonValue& first = arr->array().front();
    if (!first.is_array()) {
      return FieldError(what, "series", "must contain arrays of numbers");
    }
    length = first.array_size();
  }
  if (length == 0) {
    return Status::InvalidArgument(std::string(what) +
                                   ": series length must be positive");
  }
  if (length > kMaxSeriesLength) {
    return Status::InvalidArgument(
        std::string(what) + ": series length " + std::to_string(length) +
        " exceeds the maximum of " + std::to_string(kMaxSeriesLength));
  }
  if (arr->is_packed_array() && arr->array_size() != 0) {
    // Numbers where rows were expected (with an explicit series_length
    // the first branch above didn't reject this shape).
    return Status::InvalidArgument(
        std::string(what) +
        ": series 0 does not have the expected length " +
        std::to_string(length));
  }
  series::SeriesCollection collection(static_cast<size_t>(length));
  collection.Reserve(arr->array_size());
  std::vector<float> buf;
  buf.reserve(static_cast<size_t>(length));
  for (size_t i = 0; i < arr->array().size(); ++i) {
    const JsonValue& row = arr->array()[i];
    if (!row.is_array() || row.array_size() != length) {
      return Status::InvalidArgument(
          std::string(what) + ": series " + std::to_string(i) +
          " does not have the expected length " + std::to_string(length));
    }
    buf.clear();
    if (row.is_packed_array()) {
      for (const double v : row.packed_numbers()) {
        buf.push_back(static_cast<float>(v));
      }
    } else {
      for (const JsonValue& v : row.array()) {
        if (!v.is_number()) {
          return Status::InvalidArgument(std::string(what) + ": series " +
                                         std::to_string(i) +
                                         " contains a non-numeric value");
        }
        buf.push_back(static_cast<float>(v.AsDouble()));
      }
    }
    collection.Append(buf);
  }
  return collection;
}

void WriteSeriesMatrix(const series::SeriesCollection& collection,
                       JsonWriter* w) {
  w->Field("series_length", static_cast<uint64_t>(collection.length()));
  w->Key("series");
  w->BeginArray();
  for (size_t i = 0; i < collection.size(); ++i) {
    w->BeginArray();
    for (const float v : collection[i]) w->Double(v);
    w->EndArray();
  }
  w->EndArray();
}

Result<std::vector<int64_t>> ParseTimestamps(const JsonValue& arr,
                                             const char* what) {
  if (!arr.is_array()) {
    return FieldError(what, "timestamps", "must be an array of integers");
  }
  std::vector<int64_t> out;
  const size_t n = arr.array_size();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!arr.element_is_number(i)) {
      return FieldError(what, "timestamps", "must contain only integers");
    }
    Result<int64_t> v = arr.ElementAsInt64(i);
    if (!v.ok()) {
      return FieldError(what, "timestamps", "must contain only integers");
    }
    out.push_back(v.value());
  }
  return out;
}

void WriteTimestamps(const std::vector<int64_t>& timestamps, JsonWriter* w) {
  w->Key("timestamps");
  w->BeginArray();
  for (const int64_t t : timestamps) w->Int(t);
  w->EndArray();
}

// ----------------------------------------------- enum spellings on wire

const char* FamilyToWire(IndexFamily family) {
  switch (family) {
    case IndexFamily::kAds:
      return "ads";
    case IndexFamily::kCTree:
      return "ctree";
    case IndexFamily::kClsm:
      return "clsm";
  }
  return "ctree";
}

Result<IndexFamily> FamilyFromWire(const std::string& s, const char* what) {
  if (s == "ads") return IndexFamily::kAds;
  if (s == "ctree") return IndexFamily::kCTree;
  if (s == "clsm") return IndexFamily::kClsm;
  return Status::InvalidArgument(std::string(what) + ": unknown family '" +
                                 s + "' (want ads|ctree|clsm)");
}

const char* ModeToWire(StreamMode mode) {
  switch (mode) {
    case StreamMode::kStatic:
      return "static";
    case StreamMode::kPP:
      return "pp";
    case StreamMode::kTP:
      return "tp";
    case StreamMode::kBTP:
      return "btp";
  }
  return "static";
}

Result<StreamMode> ModeFromWire(const std::string& s, const char* what) {
  if (s == "static") return StreamMode::kStatic;
  if (s == "pp") return StreamMode::kPP;
  if (s == "tp") return StreamMode::kTP;
  if (s == "btp") return StreamMode::kBTP;
  return Status::InvalidArgument(std::string(what) + ": unknown mode '" + s +
                                 "' (want static|pp|tp|btp)");
}

const char* BackpressureToWire(stream::BackpressurePolicy policy) {
  switch (policy) {
    case stream::BackpressurePolicy::kBlock:
      return "block";
    case stream::BackpressurePolicy::kReject:
      return "reject";
  }
  return "block";
}

Result<stream::BackpressurePolicy> BackpressureFromWire(const std::string& s,
                                                        const char* what) {
  if (s == "block") return stream::BackpressurePolicy::kBlock;
  if (s == "reject") return stream::BackpressurePolicy::kReject;
  return Status::InvalidArgument(std::string(what) +
                                 ": unknown backpressure_policy '" + s +
                                 "' (want block|reject)");
}

const char* PolicyToWire(stream::TimestampPolicy policy) {
  switch (policy) {
    case stream::TimestampPolicy::kPermissive:
      return "permissive";
    case stream::TimestampPolicy::kStrict:
      return "strict";
    case stream::TimestampPolicy::kClamp:
      return "clamp";
  }
  return "permissive";
}

Result<stream::TimestampPolicy> PolicyFromWire(const std::string& s,
                                               const char* what) {
  if (s == "permissive") return stream::TimestampPolicy::kPermissive;
  if (s == "strict") return stream::TimestampPolicy::kStrict;
  if (s == "clamp") return stream::TimestampPolicy::kClamp;
  return Status::InvalidArgument(std::string(what) +
                                 ": unknown timestamp_policy '" + s +
                                 "' (want permissive|strict|clamp)");
}

Result<series::SaxConfig> SaxFromJson(const JsonValue& value,
                                      const char* what) {
  COCONUT_RETURN_NOT_OK(ExpectObject(value, what));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, what, {"series_length", "num_segments", "bits_per_segment"}));
  series::SaxConfig sax;
  int64_t v;
  v = sax.series_length;
  COCONUT_RETURN_NOT_OK(
      OptIntInRange(value, "series_length", what, &v, 0,
                    static_cast<int64_t>(kMaxSeriesLength)));
  sax.series_length = static_cast<int>(v);
  v = sax.num_segments;
  COCONUT_RETURN_NOT_OK(
      OptIntInRange(value, "num_segments", what, &v, 0, 1 << 12));
  sax.num_segments = static_cast<int>(v);
  v = sax.bits_per_segment;
  COCONUT_RETURN_NOT_OK(
      OptIntInRange(value, "bits_per_segment", what, &v, 0, 32));
  sax.bits_per_segment = static_cast<int>(v);
  return sax;
}

void SaxToJson(const series::SaxConfig& sax, JsonWriter* w) {
  w->BeginObject();
  w->Field("series_length", static_cast<int64_t>(sax.series_length));
  w->Field("num_segments", static_cast<int64_t>(sax.num_segments));
  w->Field("bits_per_segment", static_cast<int64_t>(sax.bits_per_segment));
  w->EndObject();
}

}  // namespace

// ----------------------------------------------------- ApiError members

ApiError ApiError::FromStatus(const Status& status) {
  ApiError error;
  error.code = StatusCodeToApiCode(status.code());
  error.message = status.message();
  error.http_status = StatusCodeToHttpStatus(status.code());
  return error;
}

void ApiError::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("error");
  w->BeginObject();
  w->Field("api_version", static_cast<int64_t>(kApiVersion));
  w->Field("code", code);
  w->Field("message", message);
  w->EndObject();
  w->EndObject();
}

std::string ApiError::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<ApiError> ApiError::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "error";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  const JsonValue* inner = value.Find("error");
  if (inner == nullptr) {
    return Status::InvalidArgument("error: missing 'error' wrapper");
  }
  COCONUT_RETURN_NOT_OK(ExpectObject(*inner, kWhat));
  COCONUT_RETURN_NOT_OK(
      RejectUnknown(*inner, kWhat, {"api_version", "code", "message"}));
  ApiError error;
  COCONUT_ASSIGN_OR_RETURN(const uint64_t version,
                           ReqUint(*inner, "api_version", kWhat));
  if (version != static_cast<uint64_t>(kApiVersion)) {
    return Status::InvalidArgument("error: unsupported api_version " +
                                   std::to_string(version));
  }
  COCONUT_ASSIGN_OR_RETURN(error.code, ReqString(*inner, "code", kWhat));
  COCONUT_ASSIGN_OR_RETURN(error.message, ReqString(*inner, "message", kWhat));
  error.http_status = ApiCodeToHttpStatus(error.code);
  return error;
}

// ----------------------------------------------------- shared fragments

Result<VariantSpec> VariantSpecFromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "spec";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"family", "materialized", "mode", "sax", "fill_factor",
       "growth_factor", "buffer_entries", "memory_budget_bytes",
       "construction_threads", "ads_leaf_capacity", "btp_merge_k",
       "num_shards", "shard_build_threads", "shard_query_threads",
       "timestamp_policy", "async_ingest", "max_inflight_seals",
       "backpressure_policy", "durability"}));
  VariantSpec spec;
  std::string s;
  COCONUT_RETURN_NOT_OK(OptString(value, "family", kWhat, &s));
  if (!s.empty()) {
    COCONUT_ASSIGN_OR_RETURN(spec.family, FamilyFromWire(s, kWhat));
  }
  COCONUT_RETURN_NOT_OK(
      OptBool(value, "materialized", kWhat, &spec.materialized));
  s.clear();
  COCONUT_RETURN_NOT_OK(OptString(value, "mode", kWhat, &s));
  if (!s.empty()) {
    COCONUT_ASSIGN_OR_RETURN(spec.mode, ModeFromWire(s, kWhat));
  }
  if (const JsonValue* sax = value.Find("sax"); sax != nullptr) {
    COCONUT_ASSIGN_OR_RETURN(spec.sax, SaxFromJson(*sax, "spec.sax"));
  }
  COCONUT_RETURN_NOT_OK(
      OptDouble(value, "fill_factor", kWhat, &spec.fill_factor));
  int64_t i = spec.growth_factor;
  COCONUT_RETURN_NOT_OK(
      OptIntInRange(value, "growth_factor", kWhat, &i, 0, kMaxWireSmallInt));
  spec.growth_factor = static_cast<int>(i);
  uint64_t u = spec.buffer_entries;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "buffer_entries", kWhat, &u,
                                       kMaxWireBufferEntries));
  spec.buffer_entries = static_cast<size_t>(u);
  u = spec.memory_budget_bytes;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "memory_budget_bytes", kWhat,
                                       &u, kMaxWireMemoryBudgetBytes));
  spec.memory_budget_bytes = static_cast<size_t>(u);
  u = spec.construction_threads;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "construction_threads", kWhat,
                                       &u, kMaxWireThreads));
  spec.construction_threads = static_cast<size_t>(u);
  u = spec.ads_leaf_capacity;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "ads_leaf_capacity", kWhat, &u,
                                       kMaxWireLeafCapacity));
  spec.ads_leaf_capacity = static_cast<size_t>(u);
  i = spec.btp_merge_k;
  COCONUT_RETURN_NOT_OK(
      OptIntInRange(value, "btp_merge_k", kWhat, &i, 0, kMaxWireSmallInt));
  spec.btp_merge_k = static_cast<int>(i);
  u = spec.num_shards;
  COCONUT_RETURN_NOT_OK(
      OptUintInRange(value, "num_shards", kWhat, &u, kMaxWireShards));
  spec.num_shards = static_cast<size_t>(u);
  u = spec.shard_build_threads;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "shard_build_threads", kWhat,
                                       &u, kMaxWireThreads));
  spec.shard_build_threads = static_cast<size_t>(u);
  u = spec.shard_query_threads;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "shard_query_threads", kWhat,
                                       &u, kMaxWireThreads));
  spec.shard_query_threads = static_cast<size_t>(u);
  s.clear();
  COCONUT_RETURN_NOT_OK(OptString(value, "timestamp_policy", kWhat, &s));
  if (!s.empty()) {
    COCONUT_ASSIGN_OR_RETURN(spec.timestamp_policy, PolicyFromWire(s, kWhat));
  }
  COCONUT_RETURN_NOT_OK(
      OptBool(value, "async_ingest", kWhat, &spec.async_ingest));
  u = spec.max_inflight_seals;
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "max_inflight_seals", kWhat,
                                       &u, kMaxWireInflightSeals));
  spec.max_inflight_seals = static_cast<size_t>(u);
  s.clear();
  COCONUT_RETURN_NOT_OK(OptString(value, "backpressure_policy", kWhat, &s));
  if (!s.empty()) {
    COCONUT_ASSIGN_OR_RETURN(spec.backpressure_policy,
                             BackpressureFromWire(s, kWhat));
  }
  s.clear();
  COCONUT_RETURN_NOT_OK(OptString(value, "durability", kWhat, &s));
  if (!s.empty()) {
    if (s == "on") {
      spec.durable = true;
    } else if (s == "off") {
      spec.durable = false;
    } else {
      return Status::InvalidArgument(std::string(kWhat) +
                                     ": unknown durability '" + s +
                                     "' (want on|off)");
    }
  }
  return spec;
}

void VariantSpecToJson(const VariantSpec& spec, JsonWriter* w) {
  w->BeginObject();
  w->Field("family", std::string(FamilyToWire(spec.family)));
  w->Field("materialized", spec.materialized);
  w->Field("mode", std::string(ModeToWire(spec.mode)));
  w->Key("sax");
  SaxToJson(spec.sax, w);
  w->Field("fill_factor", spec.fill_factor);
  w->Field("growth_factor", static_cast<int64_t>(spec.growth_factor));
  w->Field("buffer_entries", static_cast<uint64_t>(spec.buffer_entries));
  w->Field("memory_budget_bytes",
           static_cast<uint64_t>(spec.memory_budget_bytes));
  w->Field("construction_threads",
           static_cast<uint64_t>(spec.construction_threads));
  w->Field("ads_leaf_capacity",
           static_cast<uint64_t>(spec.ads_leaf_capacity));
  w->Field("btp_merge_k", static_cast<int64_t>(spec.btp_merge_k));
  w->Field("num_shards", static_cast<uint64_t>(spec.num_shards));
  w->Field("shard_build_threads",
           static_cast<uint64_t>(spec.shard_build_threads));
  w->Field("shard_query_threads",
           static_cast<uint64_t>(spec.shard_query_threads));
  w->Field("timestamp_policy",
           std::string(PolicyToWire(spec.timestamp_policy)));
  w->Field("async_ingest", spec.async_ingest);
  w->Field("max_inflight_seals",
           static_cast<uint64_t>(spec.max_inflight_seals));
  w->Field("backpressure_policy",
           std::string(BackpressureToWire(spec.backpressure_policy)));
  w->Field("durability", std::string(spec.durable ? "on" : "off"));
  w->EndObject();
}

void IoStatsToJson(const storage::IoStats& io, JsonWriter* w) {
  w->BeginObject();
  w->Field("sequential_reads", io.sequential_reads);
  w->Field("random_reads", io.random_reads);
  w->Field("sequential_writes", io.sequential_writes);
  w->Field("random_writes", io.random_writes);
  w->Field("bytes_read", io.bytes_read);
  w->Field("bytes_written", io.bytes_written);
  w->EndObject();
}

Result<storage::IoStats> IoStatsFromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "io";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"sequential_reads", "random_reads", "sequential_writes",
       "random_writes", "bytes_read", "bytes_written"}));
  storage::IoStats io;
  COCONUT_ASSIGN_OR_RETURN(io.sequential_reads,
                           ReqUint(value, "sequential_reads", kWhat));
  COCONUT_ASSIGN_OR_RETURN(io.random_reads,
                           ReqUint(value, "random_reads", kWhat));
  COCONUT_ASSIGN_OR_RETURN(io.sequential_writes,
                           ReqUint(value, "sequential_writes", kWhat));
  COCONUT_ASSIGN_OR_RETURN(io.random_writes,
                           ReqUint(value, "random_writes", kWhat));
  COCONUT_ASSIGN_OR_RETURN(io.bytes_read, ReqUint(value, "bytes_read", kWhat));
  COCONUT_ASSIGN_OR_RETURN(io.bytes_written,
                           ReqUint(value, "bytes_written", kWhat));
  return io;
}

void QueryCountersToJson(const core::QueryCounters& counters, JsonWriter* w) {
  w->BeginObject();
  w->Field("leaves_visited", counters.leaves_visited);
  w->Field("leaves_pruned", counters.leaves_pruned);
  w->Field("entries_examined", counters.entries_examined);
  w->Field("raw_fetches", counters.raw_fetches);
  w->Field("partitions_visited", counters.partitions_visited);
  w->Field("partitions_skipped", counters.partitions_skipped);
  w->EndObject();
}

Result<core::QueryCounters> QueryCountersFromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "counters";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"leaves_visited", "leaves_pruned", "entries_examined", "raw_fetches",
       "partitions_visited", "partitions_skipped"}));
  core::QueryCounters counters;
  COCONUT_ASSIGN_OR_RETURN(counters.leaves_visited,
                           ReqUint(value, "leaves_visited", kWhat));
  COCONUT_ASSIGN_OR_RETURN(counters.leaves_pruned,
                           ReqUint(value, "leaves_pruned", kWhat));
  COCONUT_ASSIGN_OR_RETURN(counters.entries_examined,
                           ReqUint(value, "entries_examined", kWhat));
  COCONUT_ASSIGN_OR_RETURN(counters.raw_fetches,
                           ReqUint(value, "raw_fetches", kWhat));
  COCONUT_ASSIGN_OR_RETURN(counters.partitions_visited,
                           ReqUint(value, "partitions_visited", kWhat));
  COCONUT_ASSIGN_OR_RETURN(counters.partitions_skipped,
                           ReqUint(value, "partitions_skipped", kWhat));
  return counters;
}

Result<HeatMap> HeatMapFromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "heatmap";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"time_bins", "location_bins", "total_events", "distinct_pages",
       "distinct_files", "max_count", "cells"}));
  HeatMap map;
  uint64_t u;
  COCONUT_ASSIGN_OR_RETURN(u, ReqUint(value, "time_bins", kWhat));
  map.time_bins = static_cast<size_t>(u);
  COCONUT_ASSIGN_OR_RETURN(u, ReqUint(value, "location_bins", kWhat));
  map.location_bins = static_cast<size_t>(u);
  // Both bin counts drive the counts reserve below before any cell row
  // constrains them.
  if (map.time_bins > kMaxHeatMapBinsPerAxis ||
      map.location_bins > kMaxHeatMapBinsPerAxis) {
    return Status::InvalidArgument(
        "heatmap: bin counts exceed the maximum of " +
        std::to_string(kMaxHeatMapBinsPerAxis) + " per axis");
  }
  COCONUT_ASSIGN_OR_RETURN(map.total_events,
                           ReqUint(value, "total_events", kWhat));
  COCONUT_ASSIGN_OR_RETURN(map.distinct_pages,
                           ReqUint(value, "distinct_pages", kWhat));
  COCONUT_ASSIGN_OR_RETURN(map.distinct_files,
                           ReqUint(value, "distinct_files", kWhat));
  COCONUT_ASSIGN_OR_RETURN(u, ReqUint(value, "max_count", kWhat));
  if (u > std::numeric_limits<uint32_t>::max()) {
    return FieldError(kWhat, "max_count", "does not fit in 32 bits");
  }
  map.max_count = static_cast<uint32_t>(u);
  const JsonValue* cells = value.Find("cells");
  if (cells == nullptr || !cells->is_array() ||
      cells->array_size() != map.time_bins) {
    return Status::InvalidArgument(
        "heatmap: 'cells' must be an array of time_bins rows");
  }
  if (cells->is_packed_array()) {
    // Numbers where rows were expected.
    return Status::InvalidArgument(
        "heatmap: each cells row must have location_bins entries");
  }
  map.counts.reserve(map.time_bins * map.location_bins);
  for (const JsonValue& row : cells->array()) {
    if (!row.is_array() || row.array_size() != map.location_bins) {
      return Status::InvalidArgument(
          "heatmap: each cells row must have location_bins entries");
    }
    for (size_t j = 0; j < row.array_size(); ++j) {
      Result<uint64_t> cell = row.element_is_number(j)
                                  ? row.ElementAsUint64(j)
                                  : Result<uint64_t>(Status::InvalidArgument(
                                        "not a number"));
      if (!cell.ok() ||
          cell.value() > std::numeric_limits<uint32_t>::max()) {
        return Status::InvalidArgument(
            "heatmap: cells must be 32-bit counts");
      }
      map.counts.push_back(static_cast<uint32_t>(cell.value()));
    }
  }
  return map;
}

// ------------------------------------------------------------- requests

Result<RegisterDatasetRequest> RegisterDatasetRequest::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "register_dataset";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat, {"name", "series", "series_length", "timestamps"}));
  RegisterDatasetRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.name, ReqString(value, "name", kWhat));
  COCONUT_ASSIGN_OR_RETURN(request.data, ParseSeriesMatrix(value, kWhat));
  if (const JsonValue* ts = value.Find("timestamps"); ts != nullptr) {
    COCONUT_ASSIGN_OR_RETURN(std::vector<int64_t> parsed,
                             ParseTimestamps(*ts, kWhat));
    request.timestamps = std::move(parsed);
  }
  return request;
}

void RegisterDatasetRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("name", name);
  WriteSeriesMatrix(data, w);
  if (timestamps.has_value()) WriteTimestamps(*timestamps, w);
  w->EndObject();
}

std::string RegisterDatasetRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<RegisterDatasetResponse> RegisterDatasetResponse::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "register_dataset response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(
      RejectUnknown(value, kWhat, {"dataset", "series", "series_length"}));
  RegisterDatasetResponse response;
  COCONUT_ASSIGN_OR_RETURN(response.dataset,
                           ReqString(value, "dataset", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.series, ReqUint(value, "series", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.series_length,
                           ReqUint(value, "series_length", kWhat));
  return response;
}

void RegisterDatasetResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("dataset", dataset);
  w->Field("series", series);
  w->Field("series_length", series_length);
  w->EndObject();
}

std::string RegisterDatasetResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<BuildIndexRequest> BuildIndexRequest::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "build_index";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(
      RejectUnknown(value, kWhat, {"index", "dataset", "spec"}));
  BuildIndexRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.index, ReqString(value, "index", kWhat));
  COCONUT_ASSIGN_OR_RETURN(request.dataset,
                           ReqString(value, "dataset", kWhat));
  const JsonValue* spec = value.Find("spec");
  if (spec == nullptr) return FieldError(kWhat, "spec", "is required");
  COCONUT_ASSIGN_OR_RETURN(request.spec, VariantSpecFromJson(*spec));
  return request;
}

void BuildIndexRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("index", index);
  w->Field("dataset", dataset);
  w->Key("spec");
  VariantSpecToJson(spec, w);
  w->EndObject();
}

std::string BuildIndexRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<BuildIndexReport> BuildIndexReport::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "build report";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"index", "variant", "dataset", "shards", "entries", "build_seconds",
       "index_bytes", "total_bytes", "io"}));
  BuildIndexReport report;
  COCONUT_ASSIGN_OR_RETURN(report.index, ReqString(value, "index", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.variant, ReqString(value, "variant", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.dataset, ReqString(value, "dataset", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.shards, ReqUint(value, "shards", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.entries, ReqUint(value, "entries", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.build_seconds,
                           ReqDouble(value, "build_seconds", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.index_bytes,
                           ReqUint(value, "index_bytes", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.total_bytes,
                           ReqUint(value, "total_bytes", kWhat));
  const JsonValue* io = value.Find("io");
  if (io == nullptr) return FieldError(kWhat, "io", "is required");
  COCONUT_ASSIGN_OR_RETURN(report.io, IoStatsFromJson(*io));
  return report;
}

void BuildIndexReport::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("index", index);
  w->Field("variant", variant);
  w->Field("dataset", dataset);
  w->Field("shards", shards);
  w->Field("entries", entries);
  w->Field("build_seconds", build_seconds);
  w->Field("index_bytes", index_bytes);
  w->Field("total_bytes", total_bytes);
  w->Key("io");
  IoStatsToJson(io, w);
  w->EndObject();
}

std::string BuildIndexReport::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<CreateStreamRequest> CreateStreamRequest::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "create_stream";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"stream", "spec"}));
  CreateStreamRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.stream, ReqString(value, "stream", kWhat));
  const JsonValue* spec = value.Find("spec");
  if (spec == nullptr) return FieldError(kWhat, "spec", "is required");
  COCONUT_ASSIGN_OR_RETURN(request.spec, VariantSpecFromJson(*spec));
  return request;
}

void CreateStreamRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("stream", stream);
  w->Key("spec");
  VariantSpecToJson(spec, w);
  w->EndObject();
}

std::string CreateStreamRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<CreateStreamResponse> CreateStreamResponse::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "create_stream response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"stream", "variant"}));
  CreateStreamResponse response;
  COCONUT_ASSIGN_OR_RETURN(response.stream, ReqString(value, "stream", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.variant,
                           ReqString(value, "variant", kWhat));
  return response;
}

void CreateStreamResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("stream", stream);
  w->Field("variant", variant);
  w->EndObject();
}

std::string CreateStreamResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<IngestBatchRequest> IngestBatchRequest::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "ingest_batch";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat, {"stream", "series", "series_length", "timestamps"}));
  IngestBatchRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.stream, ReqString(value, "stream", kWhat));
  COCONUT_ASSIGN_OR_RETURN(request.batch, ParseSeriesMatrix(value, kWhat));
  const JsonValue* ts = value.Find("timestamps");
  if (ts == nullptr) return FieldError(kWhat, "timestamps", "is required");
  COCONUT_ASSIGN_OR_RETURN(request.timestamps, ParseTimestamps(*ts, kWhat));
  return request;
}

void IngestBatchRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("stream", stream);
  WriteSeriesMatrix(batch, w);
  WriteTimestamps(timestamps, w);
  w->EndObject();
}

std::string IngestBatchRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<IngestBatchReport> IngestBatchReport::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "ingest report";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"stream", "ingested", "total_entries", "partitions", "buffered",
       "pending_tasks", "seals_completed", "merges_completed",
       "seals_inflight", "ingest_stalls", "ingest_rejects", "stall_ms_p50",
       "stall_ms_p99", "seconds", "io"}));
  IngestBatchReport report;
  COCONUT_ASSIGN_OR_RETURN(report.stream, ReqString(value, "stream", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.ingested,
                           ReqUint(value, "ingested", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.total_entries,
                           ReqUint(value, "total_entries", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.partitions,
                           ReqUint(value, "partitions", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.buffered,
                           ReqUint(value, "buffered", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.pending_tasks,
                           ReqUint(value, "pending_tasks", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.seals_completed,
                           ReqUint(value, "seals_completed", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.merges_completed,
                           ReqUint(value, "merges_completed", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.seals_inflight,
                           ReqUint(value, "seals_inflight", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.ingest_stalls,
                           ReqUint(value, "ingest_stalls", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.ingest_rejects,
                           ReqUint(value, "ingest_rejects", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.stall_ms_p50,
                           ReqDouble(value, "stall_ms_p50", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.stall_ms_p99,
                           ReqDouble(value, "stall_ms_p99", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.seconds,
                           ReqDouble(value, "seconds", kWhat));
  const JsonValue* io = value.Find("io");
  if (io == nullptr) return FieldError(kWhat, "io", "is required");
  COCONUT_ASSIGN_OR_RETURN(report.io, IoStatsFromJson(*io));
  return report;
}

void IngestBatchReport::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("stream", stream);
  w->Field("ingested", ingested);
  w->Field("total_entries", total_entries);
  w->Field("partitions", partitions);
  w->Field("buffered", buffered);
  w->Field("pending_tasks", pending_tasks);
  w->Field("seals_completed", seals_completed);
  w->Field("merges_completed", merges_completed);
  w->Field("seals_inflight", seals_inflight);
  w->Field("ingest_stalls", ingest_stalls);
  w->Field("ingest_rejects", ingest_rejects);
  w->Field("stall_ms_p50", stall_ms_p50);
  w->Field("stall_ms_p99", stall_ms_p99);
  w->Field("seconds", seconds);
  w->Key("io");
  IoStatsToJson(io, w);
  w->EndObject();
}

std::string IngestBatchReport::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<DrainStreamRequest> DrainStreamRequest::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "drain_stream";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"stream"}));
  DrainStreamRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.stream, ReqString(value, "stream", kWhat));
  return request;
}

void DrainStreamRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("stream", stream);
  w->EndObject();
}

std::string DrainStreamRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<DrainStreamReport> DrainStreamReport::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "drain report";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"stream", "drained", "drain_seconds", "total_entries", "partitions",
       "buffered", "pending_tasks", "seals_completed", "merges_completed",
       "seals_inflight", "ingest_stalls", "ingest_rejects", "stall_ms_p50",
       "stall_ms_p99", "index_bytes", "total_bytes"}));
  DrainStreamReport report;
  COCONUT_ASSIGN_OR_RETURN(report.stream, ReqString(value, "stream", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.drained, ReqBool(value, "drained", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.drain_seconds,
                           ReqDouble(value, "drain_seconds", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.total_entries,
                           ReqUint(value, "total_entries", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.partitions,
                           ReqUint(value, "partitions", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.buffered,
                           ReqUint(value, "buffered", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.pending_tasks,
                           ReqUint(value, "pending_tasks", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.seals_completed,
                           ReqUint(value, "seals_completed", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.merges_completed,
                           ReqUint(value, "merges_completed", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.seals_inflight,
                           ReqUint(value, "seals_inflight", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.ingest_stalls,
                           ReqUint(value, "ingest_stalls", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.ingest_rejects,
                           ReqUint(value, "ingest_rejects", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.stall_ms_p50,
                           ReqDouble(value, "stall_ms_p50", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.stall_ms_p99,
                           ReqDouble(value, "stall_ms_p99", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.index_bytes,
                           ReqUint(value, "index_bytes", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.total_bytes,
                           ReqUint(value, "total_bytes", kWhat));
  return report;
}

void DrainStreamReport::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("stream", stream);
  w->Field("drained", drained);
  w->Field("drain_seconds", drain_seconds);
  w->Field("total_entries", total_entries);
  w->Field("partitions", partitions);
  w->Field("buffered", buffered);
  w->Field("pending_tasks", pending_tasks);
  w->Field("seals_completed", seals_completed);
  w->Field("merges_completed", merges_completed);
  w->Field("seals_inflight", seals_inflight);
  w->Field("ingest_stalls", ingest_stalls);
  w->Field("ingest_rejects", ingest_rejects);
  w->Field("stall_ms_p50", stall_ms_p50);
  w->Field("stall_ms_p99", stall_ms_p99);
  w->Field("index_bytes", index_bytes);
  w->Field("total_bytes", total_bytes);
  w->EndObject();
}

std::string DrainStreamReport::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<QueryRequest> QueryRequest::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "query";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"index", "query", "exact", "window", "approx_candidates",
       "capture_heatmap", "heatmap_time_bins", "heatmap_location_bins"}));
  QueryRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.index, ReqString(value, "index", kWhat));
  const JsonValue* q = value.Find("query");
  if (q == nullptr) return FieldError(kWhat, "query", "is required");
  if (!q->is_array()) {
    return FieldError(kWhat, "query", "must be an array of numbers");
  }
  request.query.reserve(q->array_size());
  if (q->is_packed_array()) {
    for (const double v : q->packed_numbers()) {
      request.query.push_back(static_cast<float>(v));
    }
  } else {
    for (const JsonValue& v : q->array()) {
      if (!v.is_number()) {
        return FieldError(kWhat, "query", "must contain only numbers");
      }
      request.query.push_back(static_cast<float>(v.AsDouble()));
    }
  }
  COCONUT_RETURN_NOT_OK(OptBool(value, "exact", kWhat, &request.exact));
  if (const JsonValue* win = value.Find("window"); win != nullptr) {
    COCONUT_RETURN_NOT_OK(ExpectObject(*win, "query.window"));
    COCONUT_RETURN_NOT_OK(
        RejectUnknown(*win, "query.window", {"begin", "end"}));
    core::TimeWindow window;
    COCONUT_RETURN_NOT_OK(
        OptInt(*win, "begin", "query.window", &window.begin));
    COCONUT_RETURN_NOT_OK(OptInt(*win, "end", "query.window", &window.end));
    // An inverted window used to sail through and silently scan nothing;
    // reject it at the boundary (Service::Query re-checks for the typed
    // in-process path).
    if (window.begin > window.end) {
      return Status::InvalidArgument(
          "query: field 'window' begin must be <= end (got begin=" +
          std::to_string(window.begin) +
          ", end=" + std::to_string(window.end) + ")");
    }
    request.window = window;
  }
  int64_t candidates = request.approx_candidates;
  // Bounded to the storage type so oversized wire values are rejected
  // instead of silently truncated (2^32+1 used to behave as 1).
  COCONUT_RETURN_NOT_OK(OptIntInRange(
      value, "approx_candidates", kWhat, &candidates,
      std::numeric_limits<int>::min(), std::numeric_limits<int>::max()));
  request.approx_candidates = static_cast<int>(candidates);
  COCONUT_RETURN_NOT_OK(
      OptBool(value, "capture_heatmap", kWhat, &request.capture_heatmap));
  uint64_t bins = request.heatmap_time_bins;
  COCONUT_RETURN_NOT_OK(OptUint(value, "heatmap_time_bins", kWhat, &bins));
  request.heatmap_time_bins = static_cast<size_t>(bins);
  bins = request.heatmap_location_bins;
  COCONUT_RETURN_NOT_OK(
      OptUint(value, "heatmap_location_bins", kWhat, &bins));
  request.heatmap_location_bins = static_cast<size_t>(bins);
  return request;
}

void QueryRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("index", index);
  w->Key("query");
  w->BeginArray();
  for (const float v : query) w->Double(v);
  w->EndArray();
  w->Field("exact", exact);
  if (window.has_value()) {
    w->Key("window");
    w->BeginObject();
    w->Field("begin", window->begin);
    w->Field("end", window->end);
    w->EndObject();
  }
  w->Field("approx_candidates", static_cast<int64_t>(approx_candidates));
  w->Field("capture_heatmap", capture_heatmap);
  w->Field("heatmap_time_bins", static_cast<uint64_t>(heatmap_time_bins));
  w->Field("heatmap_location_bins",
           static_cast<uint64_t>(heatmap_location_bins));
  w->EndObject();
}

std::string QueryRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<QueryReport> QueryReport::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "query report";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"index", "exact", "found", "series_id", "distance", "timestamp",
       "seconds", "io", "counters", "access_locality", "heatmap",
       "batch_size", "degraded"}));
  QueryReport report;
  COCONUT_ASSIGN_OR_RETURN(report.index, ReqString(value, "index", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.exact, ReqBool(value, "exact", kWhat));
  COCONUT_ASSIGN_OR_RETURN(report.found, ReqBool(value, "found", kWhat));
  if (report.found) {
    COCONUT_ASSIGN_OR_RETURN(report.series_id,
                             ReqUint(value, "series_id", kWhat));
    COCONUT_ASSIGN_OR_RETURN(report.distance,
                             ReqDouble(value, "distance", kWhat));
    int64_t ts = 0;
    COCONUT_RETURN_NOT_OK(OptInt(value, "timestamp", kWhat, &ts));
    report.timestamp = ts;
  }
  COCONUT_ASSIGN_OR_RETURN(report.seconds, ReqDouble(value, "seconds", kWhat));
  const JsonValue* io = value.Find("io");
  if (io == nullptr) return FieldError(kWhat, "io", "is required");
  COCONUT_ASSIGN_OR_RETURN(report.io, IoStatsFromJson(*io));
  const JsonValue* counters = value.Find("counters");
  if (counters == nullptr) return FieldError(kWhat, "counters", "is required");
  COCONUT_ASSIGN_OR_RETURN(report.counters, QueryCountersFromJson(*counters));
  if (const JsonValue* map = value.Find("heatmap"); map != nullptr) {
    report.has_heatmap = true;
    COCONUT_ASSIGN_OR_RETURN(report.access_locality,
                             ReqDouble(value, "access_locality", kWhat));
    COCONUT_ASSIGN_OR_RETURN(report.heatmap, HeatMapFromJson(*map));
  }
  COCONUT_RETURN_NOT_OK(OptUint(value, "batch_size", kWhat,
                                &report.batch_size));
  COCONUT_RETURN_NOT_OK(OptBool(value, "degraded", kWhat, &report.degraded));
  return report;
}

void QueryReport::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("index", index);
  w->Field("exact", exact);
  w->Field("found", found);
  if (found) {
    w->Field("series_id", series_id);
    w->Field("distance", distance);
    w->Field("timestamp", timestamp);
  }
  w->Field("seconds", seconds);
  w->Key("io");
  IoStatsToJson(io, w);
  w->Key("counters");
  QueryCountersToJson(counters, w);
  if (has_heatmap) {
    w->Field("access_locality", access_locality);
    w->Key("heatmap");
    HeatMapToJson(heatmap, w);
  }
  // Only batched-scan reports carry the marker; single-query JSON stays
  // byte-identical to the pre-batching shape.
  if (batch_size > 1) w->Field("batch_size", batch_size);
  // Only degraded coordinator answers carry the marker (same wire-additive
  // discipline as batch_size).
  if (degraded) w->Field("degraded", degraded);
  w->EndObject();
}

std::string QueryReport::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<QueryBatchRequest> QueryBatchRequest::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "query_batch";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"queries", "threads"}));
  QueryBatchRequest request;
  const JsonValue* queries = value.Find("queries");
  if (queries == nullptr) return FieldError(kWhat, "queries", "is required");
  if (!queries->is_array() || queries->is_packed_array()) {
    return FieldError(kWhat, "queries", "must be an array of query objects");
  }
  request.queries.reserve(queries->array().size());
  for (const JsonValue& q : queries->array()) {
    COCONUT_ASSIGN_OR_RETURN(QueryRequest parsed, QueryRequest::FromJson(q));
    request.queries.push_back(std::move(parsed));
  }
  COCONUT_RETURN_NOT_OK(OptUintInRange(value, "threads", kWhat,
                                       &request.threads, kMaxWireThreads));
  return request;
}

void QueryBatchRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("queries");
  w->BeginArray();
  for (const QueryRequest& q : queries) q.ToJson(w);
  w->EndArray();
  w->Field("threads", threads);
  w->EndObject();
}

std::string QueryBatchRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<QueryBatchResponse> QueryBatchResponse::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "query_batch response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"results"}));
  const JsonValue* results = value.Find("results");
  if (results == nullptr) return FieldError(kWhat, "results", "is required");
  if (!results->is_array() || results->is_packed_array()) {
    return FieldError(kWhat, "results", "must be an array of result objects");
  }
  QueryBatchResponse response;
  response.results.reserve(results->array().size());
  for (const JsonValue& entry : results->array()) {
    Entry parsed;
    if (entry.is_object() && entry.Find("error") != nullptr) {
      parsed.ok = false;
      COCONUT_ASSIGN_OR_RETURN(parsed.error, ApiError::FromJson(entry));
    } else {
      parsed.ok = true;
      COCONUT_ASSIGN_OR_RETURN(parsed.report, QueryReport::FromJson(entry));
    }
    response.results.push_back(std::move(parsed));
  }
  return response;
}

void QueryBatchResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("results");
  w->BeginArray();
  for (const Entry& entry : results) {
    if (entry.ok) {
      entry.report.ToJson(w);
    } else {
      entry.error.ToJson(w);
    }
  }
  w->EndArray();
  w->EndObject();
}

std::string QueryBatchResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<RecommendRequest> RecommendRequest::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "recommend";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"streaming", "dataset_size", "sax", "expected_queries", "update_ratio",
       "memory_budget_bytes", "window_queries", "typical_window_fraction",
       "storage_constrained"}));
  RecommendRequest request;
  Scenario& s = request.scenario;
  COCONUT_RETURN_NOT_OK(OptBool(value, "streaming", kWhat, &s.streaming));
  COCONUT_RETURN_NOT_OK(
      OptUint(value, "dataset_size", kWhat, &s.dataset_size));
  if (const JsonValue* sax = value.Find("sax"); sax != nullptr) {
    COCONUT_ASSIGN_OR_RETURN(s.sax, SaxFromJson(*sax, "recommend.sax"));
  }
  COCONUT_RETURN_NOT_OK(
      OptUint(value, "expected_queries", kWhat, &s.expected_queries));
  COCONUT_RETURN_NOT_OK(
      OptDouble(value, "update_ratio", kWhat, &s.update_ratio));
  COCONUT_RETURN_NOT_OK(
      OptUint(value, "memory_budget_bytes", kWhat, &s.memory_budget_bytes));
  COCONUT_RETURN_NOT_OK(
      OptBool(value, "window_queries", kWhat, &s.window_queries));
  COCONUT_RETURN_NOT_OK(OptDouble(value, "typical_window_fraction", kWhat,
                                  &s.typical_window_fraction));
  COCONUT_RETURN_NOT_OK(
      OptBool(value, "storage_constrained", kWhat, &s.storage_constrained));
  return request;
}

void RecommendRequest::ToJson(JsonWriter* w) const {
  const Scenario& s = scenario;
  w->BeginObject();
  w->Field("streaming", s.streaming);
  w->Field("dataset_size", s.dataset_size);
  w->Key("sax");
  SaxToJson(s.sax, w);
  w->Field("expected_queries", s.expected_queries);
  w->Field("update_ratio", s.update_ratio);
  w->Field("memory_budget_bytes", s.memory_budget_bytes);
  w->Field("window_queries", s.window_queries);
  w->Field("typical_window_fraction", s.typical_window_fraction);
  w->Field("storage_constrained", s.storage_constrained);
  w->EndObject();
}

std::string RecommendRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<RecommendResponse> RecommendResponse::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "recommend response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(
      RejectUnknown(value, kWhat, {"variant", "spec", "rationale"}));
  RecommendResponse response;
  COCONUT_ASSIGN_OR_RETURN(response.variant,
                           ReqString(value, "variant", kWhat));
  const JsonValue* spec = value.Find("spec");
  if (spec == nullptr) return FieldError(kWhat, "spec", "is required");
  COCONUT_RETURN_NOT_OK(ExpectObject(*spec, "recommend.spec"));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      *spec, "recommend.spec",
      {"materialized", "fill_factor", "growth_factor", "buffer_entries"}));
  COCONUT_ASSIGN_OR_RETURN(
      response.materialized,
      ReqBool(*spec, "materialized", "recommend.spec"));
  COCONUT_ASSIGN_OR_RETURN(
      response.fill_factor,
      ReqDouble(*spec, "fill_factor", "recommend.spec"));
  COCONUT_RETURN_NOT_OK(
      OptInt(*spec, "growth_factor", "recommend.spec",
             &response.growth_factor));
  COCONUT_RETURN_NOT_OK(
      OptUint(*spec, "buffer_entries", "recommend.spec",
              &response.buffer_entries));
  const JsonValue* rationale = value.Find("rationale");
  if (rationale == nullptr || !rationale->is_array() ||
      rationale->is_packed_array()) {
    return FieldError(kWhat, "rationale", "must be an array of strings");
  }
  for (const JsonValue& reason : rationale->array()) {
    if (!reason.is_string()) {
      return FieldError(kWhat, "rationale", "must contain only strings");
    }
    response.rationale.push_back(reason.string_value());
  }
  return response;
}

void RecommendResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("variant", variant);
  w->Key("spec");
  w->BeginObject();
  w->Field("materialized", materialized);
  w->Field("fill_factor", fill_factor);
  w->Field("growth_factor", growth_factor);
  w->Field("buffer_entries", buffer_entries);
  w->EndObject();
  w->Key("rationale");
  w->BeginArray();
  for (const std::string& reason : rationale) w->String(reason);
  w->EndArray();
  w->EndObject();
}

std::string RecommendResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<ListIndexesResponse> ListIndexesResponse::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "list_indexes response";
  if (!value.is_array() || value.is_packed_array()) {
    return Status::InvalidArgument(std::string(kWhat) +
                                   ": expected a JSON array of objects");
  }
  ListIndexesResponse response;
  response.indexes.reserve(value.array().size());
  for (const JsonValue& entry : value.array()) {
    COCONUT_RETURN_NOT_OK(ExpectObject(entry, kWhat));
    COCONUT_RETURN_NOT_OK(RejectUnknown(
        entry, kWhat,
        {"name", "variant", "streaming", "shards", "entries",
         "total_bytes"}));
    IndexInfo info;
    COCONUT_ASSIGN_OR_RETURN(info.name, ReqString(entry, "name", kWhat));
    COCONUT_ASSIGN_OR_RETURN(info.variant,
                             ReqString(entry, "variant", kWhat));
    COCONUT_ASSIGN_OR_RETURN(info.streaming,
                             ReqBool(entry, "streaming", kWhat));
    COCONUT_ASSIGN_OR_RETURN(info.shards, ReqUint(entry, "shards", kWhat));
    COCONUT_ASSIGN_OR_RETURN(info.entries, ReqUint(entry, "entries", kWhat));
    COCONUT_ASSIGN_OR_RETURN(info.total_bytes,
                             ReqUint(entry, "total_bytes", kWhat));
    response.indexes.push_back(std::move(info));
  }
  return response;
}

void ListIndexesResponse::ToJson(JsonWriter* w) const {
  w->BeginArray();
  for (const IndexInfo& info : indexes) {
    w->BeginObject();
    w->Field("name", info.name);
    w->Field("variant", info.variant);
    w->Field("streaming", info.streaming);
    w->Field("shards", info.shards);
    w->Field("entries", info.entries);
    w->Field("total_bytes", info.total_bytes);
    w->EndObject();
  }
  w->EndArray();
}

std::string ListIndexesResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<DropIndexRequest> DropIndexRequest::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "drop_index";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"index"}));
  DropIndexRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.index, ReqString(value, "index", kWhat));
  return request;
}

void DropIndexRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("index", index);
  w->EndObject();
}

std::string DropIndexRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<DropIndexResponse> DropIndexResponse::FromJson(const JsonValue& value) {
  static constexpr const char* kWhat = "drop_index response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      value, kWhat,
      {"index", "dropped", "streaming", "entries", "reclaimed_bytes"}));
  DropIndexResponse response;
  COCONUT_ASSIGN_OR_RETURN(response.index, ReqString(value, "index", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.dropped,
                           ReqBool(value, "dropped", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.streaming,
                           ReqBool(value, "streaming", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.entries, ReqUint(value, "entries", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.reclaimed_bytes,
                           ReqUint(value, "reclaimed_bytes", kWhat));
  return response;
}

void DropIndexResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("index", index);
  w->Field("dropped", dropped);
  w->Field("streaming", streaming);
  w->Field("entries", entries);
  w->Field("reclaimed_bytes", reclaimed_bytes);
  w->EndObject();
}

std::string DropIndexResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<DropDatasetRequest> DropDatasetRequest::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "drop_dataset";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(RejectUnknown(value, kWhat, {"dataset"}));
  DropDatasetRequest request;
  COCONUT_ASSIGN_OR_RETURN(request.dataset,
                           ReqString(value, "dataset", kWhat));
  return request;
}

void DropDatasetRequest::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("dataset", dataset);
  w->EndObject();
}

std::string DropDatasetRequest::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<DropDatasetResponse> DropDatasetResponse::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "drop_dataset response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(
      RejectUnknown(value, kWhat, {"dataset", "dropped", "series"}));
  DropDatasetResponse response;
  COCONUT_ASSIGN_OR_RETURN(response.dataset,
                           ReqString(value, "dataset", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.dropped,
                           ReqBool(value, "dropped", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.series, ReqUint(value, "series", kWhat));
  return response;
}

void DropDatasetResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Field("dataset", dataset);
  w->Field("dropped", dropped);
  w->Field("series", series);
  w->EndObject();
}

std::string DropDatasetResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

Result<ServerStatsResponse> ServerStatsResponse::FromJson(
    const JsonValue& value) {
  static constexpr const char* kWhat = "server_stats response";
  COCONUT_RETURN_NOT_OK(ExpectObject(value, kWhat));
  COCONUT_RETURN_NOT_OK(
      RejectUnknown(value, kWhat, {"cache", "quota", "shards"}));
  ServerStatsResponse response;
  const JsonValue* cache = value.Find("cache");
  if (cache == nullptr) {
    return FieldError(kWhat, "cache", "is required");
  }
  COCONUT_RETURN_NOT_OK(ExpectObject(*cache, "server_stats cache"));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      *cache, "server_stats cache",
      {"enabled", "entries", "bytes", "hits", "misses", "inserts",
       "evictions", "stale_drops", "invalidations", "negative_enabled",
       "negative_hits", "negative_inserts"}));
  COCONUT_ASSIGN_OR_RETURN(response.cache_enabled,
                           ReqBool(*cache, "enabled", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_entries,
                           ReqUint(*cache, "entries", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_bytes,
                           ReqUint(*cache, "bytes", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_hits,
                           ReqUint(*cache, "hits", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_misses,
                           ReqUint(*cache, "misses", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_inserts,
                           ReqUint(*cache, "inserts", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_evictions,
                           ReqUint(*cache, "evictions", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_stale_drops,
                           ReqUint(*cache, "stale_drops", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.cache_invalidations,
                           ReqUint(*cache, "invalidations", kWhat));
  COCONUT_RETURN_NOT_OK(OptBool(*cache, "negative_enabled", kWhat,
                                &response.cache_negative_enabled));
  COCONUT_RETURN_NOT_OK(OptUint(*cache, "negative_hits", kWhat,
                                &response.cache_negative_hits));
  COCONUT_RETURN_NOT_OK(OptUint(*cache, "negative_inserts", kWhat,
                                &response.cache_negative_inserts));
  const JsonValue* quota = value.Find("quota");
  if (quota == nullptr) {
    return FieldError(kWhat, "quota", "is required");
  }
  COCONUT_RETURN_NOT_OK(ExpectObject(*quota, "server_stats quota"));
  COCONUT_RETURN_NOT_OK(RejectUnknown(
      *quota, "server_stats quota",
      {"enabled", "admitted", "throttled", "unauthenticated"}));
  COCONUT_ASSIGN_OR_RETURN(response.quota_enabled,
                           ReqBool(*quota, "enabled", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.quota_admitted,
                           ReqUint(*quota, "admitted", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.quota_throttled,
                           ReqUint(*quota, "throttled", kWhat));
  COCONUT_ASSIGN_OR_RETURN(response.quota_unauthenticated,
                           ReqUint(*quota, "unauthenticated", kWhat));
  if (const JsonValue* shards = value.Find("shards"); shards != nullptr) {
    if (!shards->is_array() || shards->is_packed_array()) {
      return FieldError(kWhat, "shards", "must be an array of objects");
    }
    for (const JsonValue& entry : shards->array()) {
      static constexpr const char* kShardWhat = "server_stats shard";
      COCONUT_RETURN_NOT_OK(ExpectObject(entry, kShardWhat));
      COCONUT_RETURN_NOT_OK(RejectUnknown(
          entry, kShardWhat,
          {"endpoint", "healthy", "requests", "failures",
           "consecutive_failures"}));
      ShardHealth health;
      COCONUT_ASSIGN_OR_RETURN(health.endpoint,
                               ReqString(entry, "endpoint", kShardWhat));
      COCONUT_ASSIGN_OR_RETURN(health.healthy,
                               ReqBool(entry, "healthy", kShardWhat));
      COCONUT_ASSIGN_OR_RETURN(health.requests,
                               ReqUint(entry, "requests", kShardWhat));
      COCONUT_ASSIGN_OR_RETURN(health.failures,
                               ReqUint(entry, "failures", kShardWhat));
      COCONUT_ASSIGN_OR_RETURN(
          health.consecutive_failures,
          ReqUint(entry, "consecutive_failures", kShardWhat));
      response.shards.push_back(std::move(health));
    }
  }
  return response;
}

void ServerStatsResponse::ToJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("cache");
  w->BeginObject();
  w->Field("enabled", cache_enabled);
  w->Field("entries", cache_entries);
  w->Field("bytes", cache_bytes);
  w->Field("hits", cache_hits);
  w->Field("misses", cache_misses);
  w->Field("inserts", cache_inserts);
  w->Field("evictions", cache_evictions);
  w->Field("stale_drops", cache_stale_drops);
  w->Field("invalidations", cache_invalidations);
  // Wire-additive: only servers with negative caching on emit the
  // negative_* fields, so legacy responses stay byte-identical.
  if (cache_negative_enabled) {
    w->Field("negative_enabled", cache_negative_enabled);
    w->Field("negative_hits", cache_negative_hits);
    w->Field("negative_inserts", cache_negative_inserts);
  }
  w->EndObject();
  w->Key("quota");
  w->BeginObject();
  w->Field("enabled", quota_enabled);
  w->Field("admitted", quota_admitted);
  w->Field("throttled", quota_throttled);
  w->Field("unauthenticated", quota_unauthenticated);
  w->EndObject();
  // Wire-additive: only a distributed coordinator has shards to report.
  if (!shards.empty()) {
    w->Key("shards");
    w->BeginArray();
    for (const ShardHealth& shard : shards) {
      w->BeginObject();
      w->Field("endpoint", shard.endpoint);
      w->Field("healthy", shard.healthy);
      w->Field("requests", shard.requests);
      w->Field("failures", shard.failures);
      w->Field("consecutive_failures", shard.consecutive_failures);
      w->EndObject();
    }
    w->EndArray();
  }
  w->EndObject();
}

std::string ServerStatsResponse::ToJsonString() const {
  JsonWriter w;
  ToJson(&w);
  return w.TakeString();
}

// -------------------------------------------------------------- service

Result<std::unique_ptr<Service>> Service::Create(const std::string& root_dir,
                                                 size_t pool_bytes_per_index) {
  // Validate the root by creating it.
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> probe,
                           storage::StorageManager::Create(root_dir));
  (void)probe;
  return std::unique_ptr<Service>(
      new Service(root_dir, pool_bytes_per_index));
}

Service::Service(std::string root_dir, size_t pool_bytes)
    : root_dir_(std::move(root_dir)), pool_bytes_(pool_bytes) {}

Service::~Service() = default;

void Service::EnableQueryCache(const QueryCacheOptions& options) {
  query_cache_ = std::make_unique<QueryCache>(options);
}

void Service::ConfigureQuotas(const QuotaOptions& options) {
  quota_ = std::make_unique<QuotaEnforcer>(options);
}

ServerStatsResponse Service::ServerStats() const {
  ServerStatsResponse response;
  if (query_cache_ != nullptr) {
    const QueryCacheStats cache = query_cache_->Snapshot();
    response.cache_enabled = true;
    response.cache_entries = cache.entries;
    response.cache_bytes = cache.bytes;
    response.cache_hits = cache.hits;
    response.cache_misses = cache.misses;
    response.cache_inserts = cache.inserts;
    response.cache_evictions = cache.evictions;
    response.cache_stale_drops = cache.stale_drops;
    response.cache_invalidations = cache.invalidations;
    response.cache_negative_enabled = query_cache_->negative_caching_enabled();
    response.cache_negative_hits = cache.negative_hits;
    response.cache_negative_inserts = cache.negative_inserts;
  }
  if (quota_ != nullptr) {
    const QuotaStats quota = quota_->Snapshot();
    response.quota_enabled = true;
    response.quota_admitted = quota.admitted;
    response.quota_throttled = quota.throttled;
    response.quota_unauthenticated = quota.unauthenticated;
  }
  return response;
}

std::shared_ptr<Service::IndexHandle> Service::FindHandle(
    const std::string& name) const {
  auto it = indexes_.find(name);
  if (it == indexes_.end() || it->second->building.load()) return nullptr;
  return it->second;
}

std::shared_ptr<Service::IndexHandle> Service::PinHandle(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return FindHandle(name);
}

Result<Service::IndexHandle*> Service::ReserveHandle(
    const std::string& index_name, const VariantSpec& spec) {
  if (indexes_.count(index_name) != 0) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  auto handle = std::make_shared<IndexHandle>();
  handle->spec = spec;
  handle->building.store(true);
  IndexHandle* raw_ptr = handle.get();
  indexes_[index_name] = std::move(handle);
  return raw_ptr;
}

Status Service::InitHandleStorage(const std::string& index_name,
                                  IndexHandle* handle) {
  COCONUT_ASSIGN_OR_RETURN(
      handle->storage,
      storage::StorageManager::Create(root_dir_ + "/idx_" + index_name));
  // A leftover directory is normally stale garbage from a crashed prior
  // run — but for a durable stream it is the durable state itself, and
  // create_stream means "open existing" when a log survives. The sharded
  // wrapper keeps its logs inside the per-shard subdirectories; the
  // unsharded log lives at the handle root.
  const bool durable_stream = handle->spec.durable &&
                              handle->spec.mode != StreamMode::kStatic;
  if (durable_stream) {
    handle->recovered =
        handle->spec.num_shards > 1
            ? ShardedStreamingIndex::HasDurableState(handle->storage.get(),
                                                     "stream")
            : handle->storage->Exists("wal");
  }
  if (!handle->recovered) {
    // Clear() can remove_all a large leftover directory from a crashed
    // prior run — one reason this runs outside the registry lock.
    COCONUT_RETURN_NOT_OK(handle->storage->Clear());
  }
  handle->pool = std::make_unique<storage::BufferPool>(pool_bytes_);
  if (durable_stream && handle->spec.num_shards == 1) {
    // Open (or create) the log first: its base frame says how many
    // raw-store ordinals the last truncation folded away, which is where
    // the recovered raw store must resume. The unacknowledged raw tail
    // past the durable prefix is cut; Recover() re-appends every logged
    // payload on top.
    stream::Wal::Options wal_options;
    wal_options.test_hook = handle->spec.wal_test_hook;
    COCONUT_ASSIGN_OR_RETURN(
        handle->wal,
        stream::Wal::Open(handle->storage.get(), "wal",
                          static_cast<uint32_t>(
                              handle->spec.sax.series_length),
                          std::move(wal_options)));
    if (handle->recovered) {
      COCONUT_ASSIGN_OR_RETURN(
          handle->raw,
          core::RawSeriesStore::OpenTruncated(handle->storage.get(), "raw",
                                              handle->spec.sax.series_length,
                                              handle->wal->base_ordinals()));
      return Status::OK();
    }
  }
  COCONUT_ASSIGN_OR_RETURN(
      handle->raw,
      core::RawSeriesStore::Create(handle->storage.get(), "raw",
                                   handle->spec.sax.series_length));
  return Status::OK();
}

Result<RegisterDatasetResponse> Service::RegisterDataset(
    const std::string& name, const series::SeriesCollection& data,
    const std::vector<int64_t>* timestamps) {
  COCONUT_RETURN_NOT_OK(ValidateName(name, "dataset"));
  if (data.length() == 0) {
    return Status::InvalidArgument("dataset series length must be positive");
  }
  if (timestamps != nullptr && timestamps->size() != data.size()) {
    return Status::InvalidArgument("one timestamp per series required");
  }
  // The normalize-and-copy loop scales with the dataset (up to the wire
  // body cap), so it runs before the lock; the exclusive section is just
  // the duplicate check and the map insert. A racing duplicate wastes
  // the copy but stays correct.
  Dataset ds;
  ds.data = series::SeriesCollection(data.length());
  ds.data.Reserve(data.size());
  std::vector<float> buf;
  for (size_t i = 0; i < data.size(); ++i) {
    buf.assign(data[i].begin(), data[i].end());
    series::ZNormalize(buf);
    ds.data.Append(buf);
  }
  if (timestamps != nullptr) {
    ds.timestamps = *timestamps;
  } else {
    ds.timestamps.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      ds.timestamps[i] = static_cast<int64_t>(i);
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (datasets_.count(name) != 0) {
    return Status::AlreadyExists("dataset '" + name + "' already registered");
  }
  datasets_[name] = std::make_shared<const Dataset>(std::move(ds));
  RegisterDatasetResponse response;
  response.dataset = name;
  response.series = data.size();
  response.series_length = data.length();
  return response;
}

Result<RegisterDatasetResponse> Service::RegisterDataset(
    const RegisterDatasetRequest& request) {
  return RegisterDataset(
      request.name, request.data,
      request.timestamps.has_value() ? &*request.timestamps : nullptr);
}

Result<BuildIndexReport> Service::BuildIndex(const std::string& index_name,
                                             const VariantSpec& spec,
                                             const std::string& dataset_name) {
  COCONUT_RETURN_NOT_OK(ValidateName(index_name, "index"));
  // Builds can take seconds to minutes, so the registry lock is held
  // exclusively only for the reserve and publish edges — and not at all
  // for the build itself (even a shared hold would park every writer,
  // and on writer-preferring shared_mutex implementations every reader,
  // for the full duration). The dataset snapshot is pinned via its
  // shared_ptr, so a concurrent DropDataset cannot free it, and the
  // reserved handle is invisible (FindHandle/ListIndexes skip building
  // handles) and undroppable (DropIndex refuses them), so the builder
  // thread owns it alone.
  IndexHandle* handle = nullptr;
  std::shared_ptr<const Dataset> dataset;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto ds_it = datasets_.find(dataset_name);
    if (ds_it == datasets_.end()) {
      return Status::NotFound("dataset '" + dataset_name +
                              "' not registered");
    }
    if (static_cast<int>(ds_it->second->data.length()) !=
        spec.sax.series_length) {
      return Status::InvalidArgument("spec series_length != dataset length");
    }
    dataset = ds_it->second;
    COCONUT_ASSIGN_OR_RETURN(handle, ReserveHandle(index_name, spec));
  }
  Result<BuildIndexReport> report = Status::Internal("build not started");
  if (const Status init = InitHandleStorage(index_name, handle); !init.ok()) {
    report = init;
  } else {
    report =
        BuildIndexOnHandle(index_name, spec, dataset_name, *dataset, handle);
  }
  if (report.ok()) {
    // A republished name restarts its snapshot-version counter, so any
    // cached answers from a previous life of this name must go before the
    // handle becomes visible.
    if (query_cache_ != nullptr) query_cache_->InvalidateIndex(index_name);
    std::unique_lock<std::shared_mutex> lock(mu_);
    handle->building.store(false);
  } else {
    TeardownHandle(index_name, handle);
  }
  return report;
}

Result<BuildIndexReport> Service::BuildIndexOnHandle(
    const std::string& index_name, const VariantSpec& spec,
    const std::string& dataset_name, const Dataset& dataset,
    IndexHandle* handle) {
  WallTimer timer;
  const storage::IoStats before = *handle->storage->io_stats();

  COCONUT_ASSIGN_OR_RETURN(
      handle->static_index,
      CreateStaticIndex(spec, handle->storage.get(), "index",
                        handle->pool.get(), handle->raw.get()));
  // Sharded indexes route every series into a shard-local raw store; the
  // handle-level store would be a dead second copy of the dataset (doubled
  // disk and build I/O), so only unsharded indexes populate it.
  const bool shard_owned_raw = spec.num_shards > 1;
  for (size_t i = 0; i < dataset.data.size(); ++i) {
    if (!shard_owned_raw) {
      COCONUT_RETURN_NOT_OK(handle->raw->Append(dataset.data[i]).status());
    }
    COCONUT_RETURN_NOT_OK(handle->static_index->Insert(
        i, dataset.data[i], dataset.timestamps[i]));
  }
  COCONUT_RETURN_NOT_OK(handle->raw->Flush());
  COCONUT_RETURN_NOT_OK(handle->static_index->Finalize());
  handle->next_series_id = dataset.data.size();
  handle->build_seconds = timer.ElapsedSeconds();
  handle->build_io = handle->storage->io_stats()->Since(before);
  // Sharded builds do their I/O through per-shard storage managers (fresh
  // at this point, so totals == this build); fold them into the report.
  if (auto* sharded =
          dynamic_cast<ShardedIndex*>(handle->static_index.get());
      sharded != nullptr) {
    handle->build_io.Add(sharded->AggregateIoStats());
  }

  BuildIndexReport report;
  report.index = index_name;
  report.variant = VariantName(spec);
  report.dataset = dataset_name;
  report.shards = spec.num_shards;
  report.entries = handle->static_index->num_entries();
  report.build_seconds = handle->build_seconds;
  report.index_bytes = handle->static_index->index_bytes();
  report.total_bytes = handle->storage->TotalBytesOnDisk();
  report.io = handle->build_io;
  return report;
}

Result<BuildIndexReport> Service::BuildIndex(const BuildIndexRequest& request) {
  return BuildIndex(request.index, request.spec, request.dataset);
}

Result<CreateStreamResponse> Service::CreateStream(
    const std::string& stream_name, const VariantSpec& spec) {
  COCONUT_RETURN_NOT_OK(ValidateName(stream_name, "stream"));
  // Same reserve -> construct -> publish shape as BuildIndex: the handle
  // stays invisible while its streaming index is created outside the
  // exclusive lock (the builder thread is the only one touching it).
  IndexHandle* handle = nullptr;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    COCONUT_ASSIGN_OR_RETURN(handle, ReserveHandle(stream_name, spec));
  }
  // Failed creations normally tear the directory down so the name stays
  // reusable — but when the directory held durable state to recover, a
  // failed recovery (a corrupt log, a missing partition) must unregister
  // the name WITHOUT deleting the only copy of the log it failed to
  // read; the operator decides what to salvage.
  const auto discard = [this, &stream_name](IndexHandle* h) {
    if (!h->recovered) {
      TeardownHandle(stream_name, h);
      return;
    }
    h->stream_index.reset();
    h->static_index.reset();
    h->wal.reset();
    h->raw.reset();
    h->pool.reset();
    h->storage.reset();
    std::unique_lock<std::shared_mutex> lock(mu_);
    indexes_.erase(stream_name);
  };
  if (const Status init = InitHandleStorage(stream_name, handle);
      !init.ok()) {
    discard(handle);
    return init;
  }
  // The spec the factory sees carries the process-local log pointer (the
  // registered handle->spec keeps wire fields only). Sharded durable
  // streams ignore it and open per-shard logs; the factory recovers them
  // from disk by itself.
  VariantSpec wired = spec;
  wired.wal = handle->wal.get();
  Result<std::unique_ptr<stream::StreamingIndex>> created =
      CreateStreamingIndex(wired, handle->storage.get(), "stream",
                           handle->pool.get(), handle->raw.get());
  if (!created.ok()) {
    // An invalid spec must not leave a half-initialized handle behind:
    // every registered handle carries a static or streaming index
    // (ListIndexes/Query/DropIndex rely on it), and the name and its
    // directory must stay reusable.
    discard(handle);
    return created.status();
  }
  handle->stream_index = created.TakeValue();
  if (auto* sharded_recovered = dynamic_cast<ShardedStreamingIndex*>(
          handle->stream_index.get());
      sharded_recovered != nullptr) {
    // 0 for a fresh sharded stream; max recovered global id + 1 after a
    // sharded recovery (the factory replayed the per-shard logs inside
    // Recover()).
    handle->next_series_id = sharded_recovered->recovered_next_series_id();
  } else if (handle->recovered) {
    // Unsharded recovery: the index above was created empty with the log
    // already wired in; restore the newest durable checkpoint and replay
    // the acknowledged suffix through the normal ingest path.
    stream::WalRecoverOutcome outcome;
    if (const Status st = handle->wal->Recover(handle->stream_index.get(),
                                               handle->raw.get(), &outcome);
        !st.ok()) {
      discard(handle);
      return st;
    }
    handle->next_series_id = outcome.ordinals;
  }
  // See BuildIndex: a recreated name restarts its version counter.
  if (query_cache_ != nullptr) query_cache_->InvalidateIndex(stream_name);
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    handle->building.store(false);
  }
  CreateStreamResponse response;
  response.stream = stream_name;
  response.variant = VariantName(spec);
  return response;
}

std::error_code Service::TeardownHandle(const std::string& name,
                                        IndexHandle* handle) {
  // The handle is tombstoned (building == true): lookups skip it, drops
  // refuse it, and the map entry keeps the name — and therefore the
  // directory — reserved. So this thread owns the handle, and the slow
  // parts (flushing destructors, deleting the directory tree) run
  // without the registry lock. Reset order mirrors the member destructor
  // order: index structures flush through the raw store / pool / storage
  // below them. storage is null when InitHandleStorage itself failed;
  // the directory path is deterministic either way.
  const std::string directory = handle->storage != nullptr
                                    ? handle->storage->directory()
                                    : root_dir_ + "/idx_" + name;
  handle->stream_index.reset();
  handle->static_index.reset();
  handle->wal.reset();
  handle->raw.reset();
  handle->pool.reset();
  handle->storage.reset();
  std::error_code ec;
  std::filesystem::remove_all(directory, ec);
  std::unique_lock<std::shared_mutex> lock(mu_);
  indexes_.erase(name);
  return ec;
}

Result<CreateStreamResponse> Service::CreateStream(
    const CreateStreamRequest& request) {
  return CreateStream(request.stream, request.spec);
}

Result<IngestBatchReport> Service::IngestBatch(
    const std::string& stream_name, const series::SeriesCollection& batch,
    const std::vector<int64_t>& timestamps) {
  // Pin the handle with one brief shared hold; the batch itself — which
  // kBlock backpressure can stall indefinitely — runs under the handle's
  // op mutex with no registry lock held, so it never parks registry
  // writers or unrelated indexes.
  std::shared_ptr<IndexHandle> handle = PinHandle(stream_name);
  if (handle == nullptr) {
    return Status::NotFound("stream '" + stream_name + "' not found");
  }
  if (timestamps.size() != batch.size()) {
    return Status::InvalidArgument("one timestamp per series required");
  }
  if (batch.size() > 0 &&
      static_cast<int>(batch.length()) != handle->spec.sax.series_length) {
    return Status::InvalidArgument(
        "batch series length " + std::to_string(batch.length()) +
        " != stream series length " +
        std::to_string(handle->spec.sax.series_length));
  }
  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  // A concurrent DropIndex tombstones, then waits on op_mutex: if it won
  // that race the members below are torn down — bounce like a miss.
  if (handle->building.load() || handle->stream_index == nullptr) {
    return Status::NotFound("stream '" + stream_name + "' not found");
  }

  WallTimer timer;
  // A sharded stream routes every series into a shard-local raw store and
  // does its I/O through per-shard storage managers; the handle-level
  // store would be a dead second copy and the handle-level counters would
  // read zero (same treatment as the static sharded build path).
  auto* sharded =
      dynamic_cast<ShardedStreamingIndex*>(handle->stream_index.get());
  // Snapshot reads: background seals/merges of an async stream may be
  // doing I/O while this batch is admitted.
  storage::IoStats before = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) before.Add(sharded->AggregateIoStats());
  std::vector<float> buf;
  uint64_t admitted = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    buf.assign(batch[i].begin(), batch[i].end());
    series::ZNormalize(buf);
    // Series ids are raw-store ordinals (queries fetch by id), so take the
    // id Append assigned — or, sharded, the next global ordinal (the
    // wrapper appends to its shard's store and maps local ids back). If
    // the index then rejects the entry (a kStrict timestamp regression, a
    // backpressure reject), the ordinal stays burned as an unindexed raw
    // slot — ids of previously and subsequently admitted series keep
    // lining up either way.
    uint64_t id;
    if (sharded != nullptr) {
      id = handle->next_series_id;
    } else {
      COCONUT_ASSIGN_OR_RETURN(id, handle->raw->Append(buf));
    }
    handle->next_series_id = id + 1;
    const Status st = handle->stream_index->Ingest(id, buf, timestamps[i]);
    if (!st.ok() && handle->wal != nullptr) {
      // The ordinal above is burned whether or not the index admitted the
      // entry, so the log must burn it too — otherwise a replay would
      // assign later admits shifted ordinals. (Sharded streams journal
      // their own holes inside the wrapper; handle->wal is null there.)
      handle->wal->AppendHole();
    }
    if (st.code() == StatusCode::kResourceExhausted && admitted > 0) {
      // Reject-mode backpressure mid-batch: the admitted prefix cannot be
      // un-ingested, so report it truthfully (ingested < batch size, the
      // reject visible in ingest_rejects) instead of failing the whole
      // batch — a client that retried the full batch on 429 would
      // duplicate the prefix. A 429 therefore always means ZERO progress:
      // retry the same batch after draining.
      break;
    }
    COCONUT_RETURN_NOT_OK(st);
    ++admitted;
  }
  if (sharded == nullptr) {
    COCONUT_RETURN_NOT_OK(handle->raw->Flush());
  }
  // The durability ack gate: the report below tells the client the
  // admitted prefix is ingested, so its group commit must be on disk
  // first (one fdatasync per batch, fanned across shards when sharded).
  // No-op for non-durable streams.
  COCONUT_RETURN_NOT_OK(handle->stream_index->CommitDurable());

  const stream::StreamingStats stats =
      handle->stream_index->SnapshotStats();
  IngestBatchReport report;
  report.stream = stream_name;
  report.ingested = admitted;
  report.total_entries = stats.entries;
  report.partitions = stats.sealed_partitions;
  report.buffered = stats.buffered;
  report.pending_tasks = stats.pending_tasks;
  report.seals_completed = stats.seals_completed;
  report.merges_completed = stats.merges_completed;
  report.seals_inflight = stats.seals_inflight;
  report.ingest_stalls = stats.ingest_stalls;
  report.ingest_rejects = stats.ingest_rejects;
  report.stall_ms_p50 = stats.stall_ms_p50;
  report.stall_ms_p99 = stats.stall_ms_p99;
  report.seconds = timer.ElapsedSeconds();
  storage::IoStats after = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) after.Add(sharded->AggregateIoStats());
  report.io = after.Since(before);
  return report;
}

Result<IngestBatchReport> Service::IngestBatch(
    const IngestBatchRequest& request) {
  return IngestBatch(request.stream, request.batch, request.timestamps);
}

Result<DrainStreamReport> Service::DrainStream(const std::string& stream_name) {
  // Like IngestBatch: pin, release the registry, drain under op_mutex
  // only — a long drain barrier must not park registry writers.
  std::shared_ptr<IndexHandle> handle = PinHandle(stream_name);
  if (handle == nullptr) {
    return Status::NotFound("stream '" + stream_name + "' not found");
  }
  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  if (handle->building.load() || handle->stream_index == nullptr) {
    return Status::NotFound("stream '" + stream_name + "' not found");
  }
  WallTimer timer;
  COCONUT_RETURN_NOT_OK(handle->stream_index->FlushAll());
  // A drained stream is fully sealed and checkpointed, so the logs can
  // shrink to their base frame: recovering a drained stream replays
  // nothing.
  if (auto* sharded_drained = dynamic_cast<ShardedStreamingIndex*>(
          handle->stream_index.get());
      sharded_drained != nullptr) {
    COCONUT_RETURN_NOT_OK(sharded_drained->TruncateDurableLogs());
  } else if (handle->wal != nullptr) {
    COCONUT_RETURN_NOT_OK(handle->wal->TruncateBefore(handle->raw.get()));
  }
  const stream::StreamingStats stats =
      handle->stream_index->SnapshotStats();
  DrainStreamReport report;
  report.stream = stream_name;
  report.drained = true;
  report.drain_seconds = timer.ElapsedSeconds();
  report.total_entries = stats.entries;
  report.partitions = stats.sealed_partitions;
  report.buffered = stats.buffered;
  report.pending_tasks = stats.pending_tasks;
  report.seals_completed = stats.seals_completed;
  report.merges_completed = stats.merges_completed;
  report.seals_inflight = stats.seals_inflight;
  report.ingest_stalls = stats.ingest_stalls;
  report.ingest_rejects = stats.ingest_rejects;
  report.stall_ms_p50 = stats.stall_ms_p50;
  report.stall_ms_p99 = stats.stall_ms_p99;
  report.index_bytes = handle->stream_index->index_bytes();
  report.total_bytes = handle->storage->TotalBytesOnDisk();
  return report;
}

Result<DrainStreamReport> Service::DrainStream(
    const DrainStreamRequest& request) {
  return DrainStream(request.stream);
}

Result<QueryReport> Service::Query(const QueryRequest& request) {
  std::shared_ptr<IndexHandle> handle = PinHandle(request.index);
  if (handle == nullptr) {
    return Status::NotFound("index '" + request.index + "' not found");
  }
  // Validate at the API boundary: a malformed query used to reach the
  // index layers and misbehave there (empty spans, wrong-length distance
  // computations, zero candidate heaps).
  if (request.query.empty()) {
    return Status::InvalidArgument("query vector must not be empty");
  }
  if (static_cast<int>(request.query.size()) !=
      handle->spec.sax.series_length) {
    return Status::InvalidArgument(
        "query length " + std::to_string(request.query.size()) +
        " != index series length " +
        std::to_string(handle->spec.sax.series_length));
  }
  if (request.approx_candidates <= 0) {
    return Status::InvalidArgument("approx_candidates must be positive");
  }
  if (request.window.has_value() &&
      request.window->begin > request.window->end) {
    // The wire parser rejects this too; re-checked here so the typed
    // in-process path cannot slip an inverted window into a silent empty
    // scan.
    return Status::InvalidArgument(
        "query window begin must be <= end (got begin=" +
        std::to_string(request.window->begin) +
        ", end=" + std::to_string(request.window->end) + ")");
  }
  if (request.capture_heatmap) {
    if (request.heatmap_time_bins == 0 ||
        request.heatmap_location_bins == 0) {
      return Status::InvalidArgument("heatmap bins must be positive");
    }
    // BuildHeatMap allocates time_bins * location_bins cells up front.
    if (request.heatmap_time_bins > kMaxHeatMapBinsPerAxis ||
        request.heatmap_location_bins > kMaxHeatMapBinsPerAxis) {
      return Status::InvalidArgument(
          "heatmap bins exceed the maximum of " +
          std::to_string(kMaxHeatMapBinsPerAxis) + " per axis");
    }
  }
  // Cache probe, off the op mutex: serving a hit touches no index state.
  // A hit requires the entry's snapshot version to equal the index's
  // current one, so a concurrent admission that lands just after this read
  // merely orders the (cached) query before the ingest — the answer is
  // still the exact answer at its version.
  QueryCache* cache = query_cache_.get();
  const bool cacheable = cache != nullptr && QueryCache::Cacheable(request);
  std::string cache_key;
  if (cacheable) {
    cache_key = QueryCache::KeyFor(request);
    if (std::optional<QueryReport> hit =
            cache->Lookup(cache_key, IndexVersion(*handle))) {
      return *std::move(hit);
    }
  }
  // Lock-free read path: a stream that serves queries from epoch-published
  // snapshots never needs the per-handle op mutex, so a query cannot stall
  // behind a backpressure-blocked ingest batch. The whole read — tombstone
  // check, version bracket, scan, cache stamp — sits inside one epoch
  // guard, so DropIndex's Synchronize (which runs after the tombstone is
  // set) waits this query out before teardown and before the cache purge.
  // Heat-map capture mutates the handle's shared access tracker, so it
  // stays on the serialized path.
  if (handle->stream_index != nullptr &&
      handle->stream_index->ConcurrentReadsSafe() && !request.capture_heatmap) {
    stream::epoch::EpochGuard guard;
    if (handle->building.load()) {
      return Status::NotFound("index '" + request.index + "' not found");
    }
    // Fill guard, lock-free form: the version counter is monotone (never
    // reused, never rolled back), so two equal bracket reads prove the
    // scan observed one stable snapshot even though seals/merges publish
    // concurrently. A racing publish lands between the reads, the bracket
    // differs, and the entry is simply not stamped — a stale answer can
    // never be inserted at the new version.
    const uint64_t version_before = cacheable ? IndexVersion(*handle) : 0;
    Result<QueryReport> report = QueryLocked(request, handle.get());
    if (cacheable && report.ok() && IndexVersion(*handle) == version_before) {
      cache->Insert(cache_key, request.index, version_before, report.value());
    }
    return report;
  }
  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  if (handle->building.load()) {
    return Status::NotFound("index '" + request.index + "' not found");
  }
  // Fill guard: only a scan bracketed by two equal version reads observed
  // one stable snapshot (background seals/merges publish without the op
  // mutex, and direct-library ingest does not go through the service).
  const uint64_t version_before = cacheable ? IndexVersion(*handle) : 0;
  Result<QueryReport> report = QueryLocked(request, handle.get());
  if (cacheable && report.ok() && IndexVersion(*handle) == version_before) {
    cache->Insert(cache_key, request.index, version_before, report.value());
  }
  return report;
}

uint64_t Service::IndexVersion(const IndexHandle& handle) {
  if (handle.static_index != nullptr) {
    return handle.static_index->snapshot_version();
  }
  if (handle.stream_index != nullptr) {
    return handle.stream_index->snapshot_version();
  }
  return 0;
}

Result<QueryReport> Service::QueryLocked(const QueryRequest& request,
                                         IndexHandle* handle) {
  std::vector<float> query = request.query;
  series::ZNormalize(query);

  core::SearchOptions options;
  if (request.window.has_value()) options.window = *request.window;
  options.approx_candidates = request.approx_candidates;

  // A sharded index reads through per-shard storage managers; snapshot
  // those too so the reported query I/O is real, not the handle's zeros.
  auto* sharded = dynamic_cast<ShardedIndex*>(handle->static_index.get());
  auto* sharded_stream =
      dynamic_cast<ShardedStreamingIndex*>(handle->stream_index.get());

  core::QueryCounters counters;
  storage::AccessTracker* tracker = handle->storage->tracker();
  if (request.capture_heatmap) {
    if (sharded != nullptr || sharded_stream != nullptr) {
      // Shard I/O never touches the handle-level tracker; a silent empty
      // heat map would read as an all-cold result, so refuse instead.
      return Status::NotSupported(
          "heat maps are not captured for sharded indexes yet");
    }
    tracker->Clear();
    tracker->Enable();
  }

  WallTimer timer;
  // Snapshot: async streams may be sealing/merging in the background.
  storage::IoStats before = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) before.Add(sharded->AggregateIoStats());
  if (sharded_stream != nullptr) {
    before.Add(sharded_stream->AggregateIoStats());
  }
  Result<core::SearchResult> result =
      handle->static_index != nullptr
          ? (request.exact
                 ? handle->static_index->ExactSearch(query, options, &counters)
                 : handle->static_index->ApproxSearch(query, options,
                                                      &counters))
          : (request.exact
                 ? handle->stream_index->ExactSearch(query, options, &counters)
                 : handle->stream_index->ApproxSearch(query, options,
                                                      &counters));
  const double seconds = timer.ElapsedSeconds();
  if (request.capture_heatmap) tracker->Disable();
  if (!result.ok()) return result.status();
  const core::SearchResult& match = result.value();

  QueryReport report;
  report.index = request.index;
  report.exact = request.exact;
  report.found = match.found;
  if (match.found) {
    report.series_id = match.series_id;
    report.distance = std::sqrt(match.distance_sq);
    report.timestamp = match.timestamp;
  }
  report.seconds = seconds;
  storage::IoStats after = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) after.Add(sharded->AggregateIoStats());
  if (sharded_stream != nullptr) {
    after.Add(sharded_stream->AggregateIoStats());
  }
  report.io = after.Since(before);
  report.counters = counters;
  if (request.capture_heatmap) {
    // Snapshot: an async stream's background seals may still be recording.
    const std::vector<storage::AccessEvent> events =
        tracker->SnapshotEvents();
    report.has_heatmap = true;
    report.heatmap = BuildHeatMap(events, request.heatmap_time_bins,
                                  request.heatmap_location_bins);
    report.access_locality = AccessLocality(events);
  }
  return report;
}

void Service::QueryGroup(const std::vector<QueryRequest>& requests,
                         const std::vector<size_t>& ordinals,
                         std::vector<Result<QueryReport>>* results) {
  if (ordinals.empty()) return;
  // One pin for the whole group (every member names the same index).
  std::shared_ptr<IndexHandle> handle =
      PinHandle(requests[ordinals.front()].index);

  // Cache probe per ordinal before any bucketing: a hit is served verbatim
  // (it was filled by the single-query path, so batch_size stays 1) and
  // the miss set proceeds. Batched (shared-scan) results are never
  // inserted — their seconds/io fields are bucket-amortized, so caching
  // them would replay a different wire shape than a fresh single query.
  std::vector<size_t> pending;
  pending.reserve(ordinals.size());
  QueryCache* cache = query_cache_.get();
  if (cache != nullptr && handle != nullptr) {
    for (size_t ordinal : ordinals) {
      const QueryRequest& r = requests[ordinal];
      if (QueryCache::Cacheable(r)) {
        if (std::optional<QueryReport> hit =
                cache->Lookup(QueryCache::KeyFor(r), IndexVersion(*handle))) {
          (*results)[ordinal] = *std::move(hit);
          continue;
        }
      }
      pending.push_back(ordinal);
    }
  } else {
    pending = ordinals;
  }

  // Bucket the requests that can share one exact scan: static index, exact,
  // no heatmap, valid query shape, valid window, and identical search
  // options (window + approx_candidates) — the batch path evaluates one
  // SearchOptions for the whole bucket. Everything else keeps the
  // per-request Query path, which also produces the precise per-request
  // validation errors.
  std::vector<size_t> fallback;
  std::vector<std::pair<const QueryRequest*, std::vector<size_t>>> buckets;
  if (handle != nullptr && handle->static_index != nullptr) {
    for (size_t ordinal : pending) {
      const QueryRequest& r = requests[ordinal];
      const bool eligible =
          r.exact && !r.capture_heatmap && !r.query.empty() &&
          static_cast<int>(r.query.size()) == handle->spec.sax.series_length &&
          r.approx_candidates > 0 &&
          (!r.window.has_value() || r.window->begin <= r.window->end);
      if (!eligible) {
        fallback.push_back(ordinal);
        continue;
      }
      bool placed = false;
      for (auto& [rep, members] : buckets) {
        const bool same_window =
            rep->window.has_value() == r.window.has_value() &&
            (!r.window.has_value() ||
             (rep->window->begin == r.window->begin &&
              rep->window->end == r.window->end));
        if (same_window && rep->approx_candidates == r.approx_candidates) {
          members.push_back(ordinal);
          placed = true;
          break;
        }
      }
      if (!placed) buckets.emplace_back(&r, std::vector<size_t>{ordinal});
    }
  } else {
    fallback = pending;
  }

  for (auto& [rep, members] : buckets) {
    (void)rep;
    if (members.size() >= 2) {
      QueryBatched(requests, members, handle.get(), results);
    } else {
      fallback.push_back(members.front());
    }
  }
  for (size_t ordinal : fallback) {
    (*results)[ordinal] = Query(requests[ordinal]);
  }
}

void Service::QueryBatched(const std::vector<QueryRequest>& requests,
                           const std::vector<size_t>& ordinals,
                           IndexHandle* handle,
                           std::vector<Result<QueryReport>>* results) {
  const size_t nq = ordinals.size();
  // Z-normalized copies; the index layers take spans over them.
  std::vector<std::vector<float>> queries(nq);
  std::vector<std::span<const float>> spans(nq);
  for (size_t i = 0; i < nq; ++i) {
    queries[i] = requests[ordinals[i]].query;
    series::ZNormalize(queries[i]);
    spans[i] = queries[i];
  }

  const QueryRequest& first = requests[ordinals.front()];
  core::SearchOptions options;
  if (first.window.has_value()) options.window = *first.window;
  options.approx_candidates = first.approx_candidates;

  std::lock_guard<std::mutex> op_lock(handle->op_mutex);
  if (handle->building.load()) {
    for (size_t ordinal : ordinals) {
      (*results)[ordinal] = Status::NotFound(
          "index '" + requests[ordinal].index + "' not found");
    }
    return;
  }

  auto* sharded = dynamic_cast<ShardedIndex*>(handle->static_index.get());

  std::vector<core::SearchResult> matches(nq);
  std::vector<core::QueryCounters> counters(nq);
  WallTimer timer;
  storage::IoStats before = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) before.Add(sharded->AggregateIoStats());
  Status st =
      handle->static_index->ExactSearchBatch(spans, options, matches, counters);
  const double seconds = timer.ElapsedSeconds();
  if (!st.ok()) {
    for (size_t ordinal : ordinals) (*results)[ordinal] = st;
    return;
  }
  storage::IoStats after = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) after.Add(sharded->AggregateIoStats());
  const storage::IoStats delta = after.Since(before);

  for (size_t i = 0; i < nq; ++i) {
    const size_t ordinal = ordinals[i];
    QueryReport report;
    report.index = requests[ordinal].index;
    report.exact = true;
    report.found = matches[i].found;
    if (matches[i].found) {
      report.series_id = matches[i].series_id;
      report.distance = std::sqrt(matches[i].distance_sq);
      report.timestamp = matches[i].timestamp;
    }
    // The scan is shared: wall time is amortized evenly and the I/O delta
    // covers the whole bucket (per-query attribution is undefined there).
    report.seconds = seconds / static_cast<double>(nq);
    report.io = delta;
    report.counters = counters[i];
    report.batch_size = nq;
    (*results)[ordinal] = std::move(report);
  }
}

std::vector<Result<QueryReport>> Service::QueryBatch(
    const std::vector<QueryRequest>& requests, size_t threads) {
  std::vector<Result<QueryReport>> results(
      requests.size(),
      Result<QueryReport>(Status::Internal("not executed")));
  if (requests.empty()) return results;

  // Group request ordinals by target index. One task per group keeps every
  // index single-threaded (buffer pool pointers, tracker state and query
  // counters are per-index), while distinct indexes proceed in parallel.
  std::map<std::string, std::vector<size_t>> by_index;
  for (size_t i = 0; i < requests.size(); ++i) {
    by_index[requests[i].index].push_back(i);
  }

  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<size_t>(8, hw == 0 ? 1 : hw);
  }
  threads = std::min(threads, by_index.size());

  ThreadPool pool(threads);
  for (auto& [index_name, ordinals] : by_index) {
    (void)index_name;
    const std::vector<size_t>* group = &ordinals;
    pool.Submit([this, group, &requests, &results] {
      QueryGroup(requests, *group, &results);
    });
  }
  pool.Wait();
  return results;
}

QueryBatchResponse Service::QueryBatchResponseFor(
    const std::vector<QueryRequest>& requests, size_t threads) {
  std::vector<Result<QueryReport>> results = QueryBatch(requests, threads);
  QueryBatchResponse response;
  response.results.reserve(results.size());
  for (Result<QueryReport>& result : results) {
    QueryBatchResponse::Entry entry;
    entry.ok = result.ok();
    if (result.ok()) {
      entry.report = result.TakeValue();
    } else {
      entry.error = ApiError::FromStatus(result.status());
    }
    response.results.push_back(std::move(entry));
  }
  return response;
}

RecommendResponse Service::Recommend(const Scenario& scenario) {
  Recommendation rec = palm::Recommend(scenario);
  RecommendResponse response;
  response.variant = rec.variant_name();
  response.materialized = rec.spec.materialized;
  response.fill_factor = rec.spec.fill_factor;
  response.growth_factor = rec.spec.growth_factor;
  response.buffer_entries = rec.spec.buffer_entries;
  response.rationale = rec.rationale;
  return response;
}

ListIndexesResponse Service::ListIndexes() const {
  // Snapshot the pinned handles under one brief shared hold, then read
  // each one under its op mutex with no registry lock — waiting out a
  // backpressure-stalled ingest on one index must not park the registry
  // for everyone else.
  std::vector<std::pair<std::string, std::shared_ptr<IndexHandle>>> pinned;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    pinned.reserve(indexes_.size());
    for (const auto& [name, handle] : indexes_) {
      // A building handle has reserved its name but carries no index yet;
      // its fields belong to the builder thread until published.
      if (handle->building.load()) continue;
      pinned.emplace_back(name, handle);
    }
  }
  ListIndexesResponse response;
  response.indexes.reserve(pinned.size());
  for (const auto& [name, handle] : pinned) {
    auto read_info = [&](const std::string& index_name) {
      ListIndexesResponse::IndexInfo info;
      info.name = index_name;
      info.variant = VariantName(handle->spec);
      info.streaming = handle->stream_index != nullptr;
      info.shards = handle->spec.num_shards;
      info.entries = handle->static_index != nullptr
                         ? handle->static_index->num_entries()
                         : handle->stream_index->num_entries();
      info.total_bytes = handle->storage->TotalBytesOnDisk();
      response.indexes.push_back(std::move(info));
    };
    if (handle->stream_index != nullptr &&
        handle->stream_index->ConcurrentReadsSafe()) {
      // Epoch-snapshot streams answer stats reads lock-free; taking the op
      // mutex here would park the listing behind a backpressure-blocked
      // ingest batch on this one index.
      stream::epoch::EpochGuard guard;
      if (handle->building.load()) continue;
      read_info(name);
      continue;
    }
    // Serialize with per-index operations: sync streaming indexes update
    // entry counts without internal synchronization.
    std::lock_guard<std::mutex> op_lock(handle->op_mutex);
    // Dropped between the snapshot and here: skip, like the lookup miss.
    if (handle->building.load()) continue;
    read_info(name);
  }
  return response;
}

Result<DropIndexResponse> Service::DropIndex(const std::string& index_name) {
  std::shared_ptr<IndexHandle> handle;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = indexes_.find(index_name);
    if (it == indexes_.end()) {
      return Status::NotFound("index '" + index_name + "' not found");
    }
    if (it->second->building.load()) {
      // The owning thread (a build, or another drop) holds the handle
      // until it publishes or erases; erasing it here would free memory
      // that thread is using. 409: the name exists but is contended.
      return Status::AlreadyExists("index '" + index_name +
                                   "' is busy (building or being "
                                   "dropped); retry shortly");
    }
    handle = it->second;
    // Tombstone the handle: no new op can find it, and ops already past
    // the lookup hold the op_mutex this thread acquires next — so the
    // quiesce below waits out any in-flight batch (even one stalled on
    // backpressure) and the teardown after it runs exclusively, all
    // without the registry lock.
    handle->building.store(true);
  }
  DropIndexResponse response;
  response.index = index_name;
  std::string directory;
  {
    std::lock_guard<std::mutex> op_lock(handle->op_mutex);
    directory = handle->storage->directory();
    response.streaming = handle->stream_index != nullptr;
    if (handle->stream_index != nullptr) {
      // Quiesce background seals/merges before tearing the stack down. A
      // drain error does not block the drop — the handle is going away
      // either way and its destructor waits for stragglers.
      (void)handle->stream_index->FlushAll();
      response.entries = handle->stream_index->num_entries();
    } else {
      response.entries = handle->static_index->num_entries();
    }
    response.reclaimed_bytes = handle->storage->TotalBytesOnDisk();
  }
  // Wait out every lock-free reader that pinned the handle before the
  // tombstone above: each checks `building` inside its epoch guard, so any
  // query still touching this index's snapshots (or about to stamp its
  // cache) entered before the store and is drained here. After this
  // barrier no thread can insert a stale entry under this name or touch
  // the stack the teardown below destroys.
  stream::epoch::EpochManager::Global().Synchronize();
  // The name is about to disappear; purge its cached answers so a future
  // index reusing the name (whose version counter restarts at 0) can
  // never collide with this one's entries.
  if (query_cache_ != nullptr) query_cache_->InvalidateIndex(index_name);
  // op_mutex released before TeardownHandle takes mu_ exclusively (never
  // hold both): late ops that pinned the handle pre-tombstone bounce off
  // `building` under the op mutex instead of touching torn-down members.
  const std::error_code ec = TeardownHandle(index_name, handle.get());
  if (ec) {
    return Status::IoError("failed to remove '" + directory +
                           "': " + ec.message());
  }
  response.dropped = true;
  return response;
}

Result<DropIndexResponse> Service::DropIndex(const DropIndexRequest& request) {
  return DropIndex(request.index);
}

Result<DropDatasetResponse> Service::DropDataset(
    const std::string& dataset_name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = datasets_.find(dataset_name);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + dataset_name + "' not registered");
  }
  DropDatasetResponse response;
  response.dataset = dataset_name;
  response.series = it->second->data.size();
  datasets_.erase(it);
  response.dropped = true;
  return response;
}

Result<DropDatasetResponse> Service::DropDataset(
    const DropDatasetRequest& request) {
  return DropDataset(request.dataset);
}

core::DataSeriesIndex* Service::static_index(const std::string& name) {
  std::shared_ptr<IndexHandle> handle = PinHandle(name);
  return handle == nullptr ? nullptr : handle->static_index.get();
}

stream::StreamingIndex* Service::stream_index(const std::string& name) {
  std::shared_ptr<IndexHandle> handle = PinHandle(name);
  return handle == nullptr ? nullptr : handle->stream_index.get();
}

storage::StorageManager* Service::index_storage(const std::string& name) {
  std::shared_ptr<IndexHandle> handle = PinHandle(name);
  return handle == nullptr ? nullptr : handle->storage.get();
}

// ------------------------------------------------------------- dispatch

namespace {

/// The common parse -> typed call -> serialize shape of a dispatched
/// method.
template <typename Request, typename Response>
Result<std::string> RunTyped(const JsonValue& params,
                             Result<Response> (Service::*method)(
                                 const Request&),
                             Service* service) {
  COCONUT_ASSIGN_OR_RETURN(const Request request, Request::FromJson(params));
  COCONUT_ASSIGN_OR_RETURN(const Response response,
                           (service->*method)(request));
  return response.ToJsonString();
}

struct MethodEntry {
  const char* name;
  Result<std::string> (*handler)(Service* service, const JsonValue& params);
};

/// The single method registry: Dispatch routes through it and Methods()
/// projects its names, so the two cannot drift. Sorted by name.
constexpr MethodEntry kMethodTable[] = {
    {"build_index",
     [](Service* s, const JsonValue& p) {
       return RunTyped<BuildIndexRequest>(p, &Service::BuildIndex, s);
     }},
    {"create_stream",
     [](Service* s, const JsonValue& p) {
       return RunTyped<CreateStreamRequest>(p, &Service::CreateStream, s);
     }},
    {"drain_stream",
     [](Service* s, const JsonValue& p) {
       return RunTyped<DrainStreamRequest>(p, &Service::DrainStream, s);
     }},
    {"drop_dataset",
     [](Service* s, const JsonValue& p) {
       return RunTyped<DropDatasetRequest>(p, &Service::DropDataset, s);
     }},
    {"drop_index",
     [](Service* s, const JsonValue& p) {
       return RunTyped<DropIndexRequest>(p, &Service::DropIndex, s);
     }},
    {"ingest_batch",
     [](Service* s, const JsonValue& p) {
       return RunTyped<IngestBatchRequest>(p, &Service::IngestBatch, s);
     }},
    {"list_indexes",
     [](Service* s, const JsonValue& p) -> Result<std::string> {
       if (!p.is_object() || !p.object().empty()) {
         return Status::InvalidArgument("list_indexes takes no parameters");
       }
       return s->ListIndexes().ToJsonString();
     }},
    {"query",
     [](Service* s, const JsonValue& p) {
       return RunTyped<QueryRequest>(p, &Service::Query, s);
     }},
    {"query_batch",
     [](Service* s, const JsonValue& p) -> Result<std::string> {
       COCONUT_ASSIGN_OR_RETURN(const QueryBatchRequest request,
                                QueryBatchRequest::FromJson(p));
       return s->QueryBatchResponseFor(request.queries,
                                       static_cast<size_t>(request.threads))
           .ToJsonString();
     }},
    {"recommend",
     [](Service* s, const JsonValue& p) -> Result<std::string> {
       COCONUT_ASSIGN_OR_RETURN(const RecommendRequest request,
                                RecommendRequest::FromJson(p));
       return s->Recommend(request.scenario).ToJsonString();
     }},
    {"register_dataset",
     [](Service* s, const JsonValue& p) {
       return RunTyped<RegisterDatasetRequest>(p, &Service::RegisterDataset,
                                               s);
     }},
    {"server_stats",
     [](Service* s, const JsonValue& p) -> Result<std::string> {
       if (!p.is_object() || !p.object().empty()) {
         return Status::InvalidArgument("server_stats takes no parameters");
       }
       return s->ServerStats().ToJsonString();
     }},
};

}  // namespace

const std::vector<std::string>& Service::Methods() {
  static const std::vector<std::string> kMethods = [] {
    std::vector<std::string> names;
    for (const MethodEntry& entry : kMethodTable) {
      names.emplace_back(entry.name);
    }
    return names;
  }();
  return kMethods;
}

Result<std::string> Service::Dispatch(const std::string& method,
                                      const std::string& params_json) {
  return Dispatch(method, params_json, std::string());
}

Result<std::string> Service::Dispatch(const std::string& method,
                                      const std::string& params_json,
                                      const std::string& client_token) {
  // Admission first: a throttled client pays for nothing past the token
  // bucket — not even the params parse.
  if (quota_ != nullptr) {
    COCONUT_RETURN_NOT_OK(quota_->Admit(client_token));
  }
  COCONUT_ASSIGN_OR_RETURN(
      const JsonValue params,
      JsonParse(params_json.empty() ? std::string_view("{}")
                                    : std::string_view(params_json)));
  for (const MethodEntry& entry : kMethodTable) {
    if (method == entry.name) return entry.handler(this, params);
  }
  std::string known;
  for (const std::string& m : Methods()) {
    if (!known.empty()) known += ", ";
    known += m;
  }
  return Status::NotFound("unknown method '" + method +
                          "' (known methods: " + known + ")");
}

}  // namespace api
}  // namespace palm
}  // namespace coconut
