#include "palm/recommender.h"

#include <algorithm>

#include "core/entry.h"

namespace coconut {
namespace palm {

namespace {

// Materialization pays off once enough queries amortize the extra
// construction and storage: each non-materialized query pays
// approx_candidates-ish random fetches into the raw file, while
// materializing costs roughly one extra sequential pass over the data.
// The crossover used here mirrors the demo's Scenario-1 narrative.
bool MaterializationPaysOff(const Scenario& s,
                            std::vector<std::string>* rationale) {
  // Random fetches saved per query vs sequential pages of extra build work.
  const double fetches_saved_per_query = 10.0;
  const double seq_to_rand_cost_ratio = 0.1;  // One seek ~ 10 seq pages.
  const double extra_build_pages =
      static_cast<double>(s.dataset_size) *
      s.sax.series_length * sizeof(float) / 4096.0;
  const double saved = s.expected_queries * fetches_saved_per_query;
  const double paid = extra_build_pages * seq_to_rand_cost_ratio;
  const bool pays = saved > paid;
  if (pays) {
    rationale->push_back(
        "projected query count is high enough that the extra space and "
        "construction cost of a materialized index is amortized by faster "
        "queries (no raw-file fetches)");
  } else {
    rationale->push_back(
        "few projected queries: a non-materialized index is smaller and "
        "faster to build, and the occasional raw-file fetch at query time "
        "is cheaper than materializing everything");
  }
  return pays;
}

}  // namespace

Recommendation Recommend(const Scenario& scenario) {
  Recommendation rec;
  rec.spec.sax = scenario.sax;
  rec.spec.memory_budget_bytes = scenario.memory_budget_bytes;
  auto& why = rec.rationale;

  if (scenario.storage_constrained) {
    rec.spec.materialized = false;
    why.push_back(
        "storage is constrained: keep the index non-materialized (compact "
        "Coconut indexes already avoid the sparse-node bloat of ADS+)");
  }

  if (scenario.streaming) {
    // Continuous ingestion: log-structured writes are the only way to keep
    // up without random I/O (Section 2, read/write trade-off).
    rec.spec.family = IndexFamily::kClsm;
    why.push_back(
        "data keeps arriving: CoconutLSM ingests with sequential "
        "log-structured writes while staying queryable");

    if (scenario.window_queries) {
      rec.spec.mode = StreamMode::kBTP;
      why.push_back(
          "queries carry temporal windows: Bounded Temporal Partitioning "
          "skips partitions outside the window like TP, prunes large sorted "
          "partitions like PP, and bounds the partitions an approximate "
          "query touches");
    } else {
      rec.spec.mode = StreamMode::kPP;
      why.push_back(
          "no window constraints: a single log-structured index with "
          "post-processing timestamp checks is simplest and has no "
          "partition overhead");
    }
    if (!scenario.storage_constrained) {
      rec.spec.materialized = MaterializationPaysOff(scenario, &why);
    }
    // Size the ingest buffer from the memory budget (half of it, leaving
    // room for query-time caching), floor 256 entries.
    const size_t record =
        sizeof(core::IndexEntry) +
        (rec.spec.materialized ? scenario.sax.series_length * sizeof(float)
                               : 0);
    rec.spec.buffer_entries = std::max<size_t>(
        256, scenario.memory_budget_bytes / 2 / record);
    rec.spec.growth_factor = 4;
    return rec;
  }

  // Static collection.
  if (scenario.update_ratio > 0.3) {
    rec.spec.family = IndexFamily::kClsm;
    rec.spec.mode =
        scenario.window_queries ? StreamMode::kBTP : StreamMode::kStatic;
    why.push_back(
        "updates dominate the post-build workload: CoconutLSM absorbs them "
        "with sequential merges instead of per-leaf random writes");
  } else {
    rec.spec.family = IndexFamily::kCTree;
    rec.spec.mode =
        scenario.window_queries ? StreamMode::kPP : StreamMode::kStatic;
    why.push_back(
        "the collection is (mostly) fixed: CoconutTree bulk-loads compactly "
        "and contiguously via external sorting and is the fastest to query");
    if (scenario.window_queries) {
      why.push_back(
          "occasional temporal constraints are handled by post-processing "
          "timestamp checks inside the single tree");
    }
    if (scenario.update_ratio > 0.0) {
      rec.spec.fill_factor = 0.7;
      why.push_back(
          "a trickle of updates is expected: build leaves at 70% occupancy "
          "so inserts land in existing pages instead of splitting");
    } else {
      rec.spec.fill_factor = 1.0;
      why.push_back("read-only workload: pack leaves full (fill factor 1.0)");
    }
  }

  if (!scenario.storage_constrained) {
    rec.spec.materialized = MaterializationPaysOff(scenario, &why);
  }

  if (scenario.memory_budget_bytes <
      scenario.dataset_size * sizeof(core::IndexEntry)) {
    why.push_back(
        "memory is smaller than the summarization set: Coconut still builds "
        "with a two-pass external sort, whereas buffering-based indexes "
        "(ADS+) degrade to random I/O at this budget");
  }
  return rec;
}

}  // namespace palm
}  // namespace coconut
