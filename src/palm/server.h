#ifndef COCONUT_PALM_SERVER_H_
#define COCONUT_PALM_SERVER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/index.h"
#include "core/raw_store.h"
#include "palm/factory.h"
#include "palm/recommender.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace palm {

/// A similarity query as the GUI client would issue it.
struct QueryRequest {
  std::string index;
  /// Raw query series (the server z-normalizes).
  std::vector<float> query;
  bool exact = true;
  std::optional<core::TimeWindow> window;
  int approx_candidates = 10;
  /// Capture the page-access pattern and embed a heat map in the response.
  bool capture_heatmap = false;
  size_t heatmap_time_bins = 16;
  size_t heatmap_location_bins = 64;
};

/// The Coconut Palm algorithms server (Figure 1, right half) — in-process
/// substitute for the demo's REST backend. The GUI's requests map to
/// methods; every response is the JSON payload the PHP/JS client would
/// plot. Each index gets its own working directory, IoStats and buffer
/// pool so construction and query metrics are isolated per variant,
/// exactly what the GUI's side-by-side comparison panels need.
class Server {
 public:
  /// Creates a server rooted at `root_dir` (created if absent).
  static Result<std::unique_ptr<Server>> Create(const std::string& root_dir,
                                                size_t pool_bytes_per_index =
                                                    4ull << 20);

  /// Registers an in-memory dataset (z-normalized on ingestion). Optional
  /// `timestamps` (one per series) for streaming experiments; defaults to
  /// the series ordinal.
  Status RegisterDataset(const std::string& name,
                         const series::SeriesCollection& data,
                         const std::vector<int64_t>* timestamps);

  /// Builds a static index over a registered dataset. Returns the build
  /// report JSON: construction seconds, sequential/random I/O, bytes.
  Result<std::string> BuildIndex(const std::string& index_name,
                                 const VariantSpec& spec,
                                 const std::string& dataset_name);

  /// Creates an empty streaming index.
  Result<std::string> CreateStream(const std::string& stream_name,
                                   const VariantSpec& spec);

  /// Feeds a batch into a streaming index. Series ids continue from the
  /// stream's current count. Returns the ingest report JSON; for async
  /// streams it includes the background-progress snapshot (pending seal
  /// tasks, completed seals/merges) without waiting for them.
  Result<std::string> IngestBatch(const std::string& stream_name,
                                  const series::SeriesCollection& batch,
                                  const std::vector<int64_t>& timestamps);

  /// Drain barrier for a streaming index: blocks until every deferred
  /// seal, flush and merge cascade has completed (FlushAll), then returns
  /// a JSON stats report of the quiesced stream. After a drain the stream
  /// answers identically to a synchronous build over the same input.
  Result<std::string> DrainStream(const std::string& stream_name);

  /// Executes a query against a static or streaming index; returns the
  /// query report JSON (match, distance, latency, I/O, optional heat map).
  Result<std::string> Query(const QueryRequest& request);

  /// Executes independent requests concurrently on a small thread pool and
  /// returns one result per request, positionally. Requests that target the
  /// same index are serialized on one worker (per-index isolation: each
  /// index's buffer pool, I/O counters and heat-map tracker stay
  /// single-threaded); requests for distinct indexes run in parallel.
  /// A sharded index (spec.num_shards > 1) additionally fans each query
  /// out across its shards on its own pool — scatter-gather under the same
  /// facade — so one request exploits shard parallelism even when the
  /// batch serializes on its index. `threads` = 0 picks hardware
  /// concurrency (capped at 8).
  std::vector<Result<std::string>> QueryBatch(
      const std::vector<QueryRequest>& requests, size_t threads = 0);

  /// Runs the recommender; returns {variant, spec knobs, rationale[]}.
  std::string RecommendJson(const Scenario& scenario);

  /// JSON array describing every index and stream (the GUI's index list).
  std::string ListIndexes() const;

  /// Direct access for examples/benches (nullptr when absent).
  core::DataSeriesIndex* static_index(const std::string& name);
  stream::StreamingIndex* stream_index(const std::string& name);
  storage::StorageManager* index_storage(const std::string& name);

 private:
  struct Dataset {
    series::SeriesCollection data{0};
    std::vector<int64_t> timestamps;
  };

  struct IndexHandle {
    VariantSpec spec;
    std::unique_ptr<storage::StorageManager> storage;
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<core::RawSeriesStore> raw;
    std::unique_ptr<core::DataSeriesIndex> static_index;
    std::unique_ptr<stream::StreamingIndex> stream_index;
    uint64_t next_series_id = 0;
    double build_seconds = 0.0;
    storage::IoStats build_io;
  };

  Server(std::string root_dir, size_t pool_bytes)
      : root_dir_(std::move(root_dir)), pool_bytes_(pool_bytes) {}

  Result<IndexHandle*> NewHandle(const std::string& index_name,
                                 const VariantSpec& spec);

  static void WriteIoStats(const storage::IoStats& io, JsonWriter* w);

  std::string root_dir_;
  size_t pool_bytes_;
  std::map<std::string, Dataset> datasets_;
  std::map<std::string, std::unique_ptr<IndexHandle>> indexes_;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_SERVER_H_
