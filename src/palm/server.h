#ifndef COCONUT_PALM_SERVER_H_
#define COCONUT_PALM_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/index.h"
#include "palm/api.h"
#include "palm/factory.h"
#include "palm/recommender.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"

namespace coconut {
namespace palm {

/// A similarity query as the GUI client would issue it. The canonical
/// definition lives in the typed API layer; this alias preserves the
/// historical palm::QueryRequest spelling.
using QueryRequest = api::QueryRequest;

/// The Coconut Palm algorithms server (Figure 1, right half) — the
/// legacy in-process facade over the typed service layer (palm/api.h).
/// Every method is a thin adapter: it forwards to api::Service and
/// serializes the typed response, so the JSON these methods return is
/// byte-identical to what the wire transport (palm/http_server.h) sends
/// for the same operation. New code should talk to api::Service directly;
/// this class stays for the existing examples, benches and tests.
class Server {
 public:
  /// Creates a server rooted at `root_dir` (created if absent).
  static Result<std::unique_ptr<Server>> Create(const std::string& root_dir,
                                                size_t pool_bytes_per_index =
                                                    4ull << 20);

  /// Registers an in-memory dataset (z-normalized on ingestion). Optional
  /// `timestamps` (one per series) for streaming experiments; defaults to
  /// the series ordinal.
  Status RegisterDataset(const std::string& name,
                         const series::SeriesCollection& data,
                         const std::vector<int64_t>* timestamps);

  /// Builds a static index over a registered dataset. Returns the build
  /// report JSON: construction seconds, sequential/random I/O, bytes.
  Result<std::string> BuildIndex(const std::string& index_name,
                                 const VariantSpec& spec,
                                 const std::string& dataset_name);

  /// Creates an empty streaming index.
  Result<std::string> CreateStream(const std::string& stream_name,
                                   const VariantSpec& spec);

  /// Feeds a batch into a streaming index. Series ids continue from the
  /// stream's current count. Returns the ingest report JSON; for async
  /// streams it includes the background-progress snapshot (pending seal
  /// tasks, completed seals/merges) without waiting for them.
  Result<std::string> IngestBatch(const std::string& stream_name,
                                  const series::SeriesCollection& batch,
                                  const std::vector<int64_t>& timestamps);

  /// Drain barrier for a streaming index: blocks until every deferred
  /// seal, flush and merge cascade has completed (FlushAll), then returns
  /// a JSON stats report of the quiesced stream. After a drain the stream
  /// answers identically to a synchronous build over the same input.
  Result<std::string> DrainStream(const std::string& stream_name);

  /// Executes a query against a static or streaming index; returns the
  /// query report JSON (match, distance, latency, I/O, optional heat map).
  Result<std::string> Query(const QueryRequest& request);

  /// Executes independent requests concurrently on a small thread pool and
  /// returns one result per request, positionally. Requests that target the
  /// same index are serialized (per-index isolation: each index's buffer
  /// pool, I/O counters and heat-map tracker stay single-threaded);
  /// requests for distinct indexes run in parallel. A sharded index
  /// (spec.num_shards > 1) additionally fans each query out across its
  /// shards on its own pool — scatter-gather under the same facade — so
  /// one request exploits shard parallelism even when the batch serializes
  /// on its index. `threads` = 0 picks hardware concurrency (capped at 8).
  std::vector<Result<std::string>> QueryBatch(
      const std::vector<QueryRequest>& requests, size_t threads = 0);

  /// Runs the recommender; returns {variant, spec knobs, rationale[]}.
  std::string RecommendJson(const Scenario& scenario);

  /// JSON array describing every index and stream (the GUI's index list).
  std::string ListIndexes() const;

  /// Drops an index or stream: drains background work, releases its
  /// storage directory, buffer pool and raw store. Returns the drop
  /// report JSON.
  Result<std::string> DropIndex(const std::string& index_name);

  /// Forgets a registered dataset (indexes built from it are unaffected).
  Result<std::string> DropDataset(const std::string& dataset_name);

  /// The typed service this facade adapts — the JSON-RPC Dispatch entry
  /// point and the seam the HTTP transport plugs into.
  api::Service* service() { return service_.get(); }

  /// Direct access for examples/benches (nullptr when absent).
  core::DataSeriesIndex* static_index(const std::string& name);
  stream::StreamingIndex* stream_index(const std::string& name);
  storage::StorageManager* index_storage(const std::string& name);

 private:
  explicit Server(std::unique_ptr<api::Service> service)
      : service_(std::move(service)) {}

  std::unique_ptr<api::Service> service_;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_SERVER_H_
