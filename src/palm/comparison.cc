#include "palm/comparison.h"

#include <algorithm>
#include <cstdio>

namespace coconut {
namespace palm {

std::string RenderBarChart(const std::string& title, const std::string& unit,
                           const std::vector<ComparisonRow>& rows, int width) {
  std::string out = "== " + title + " (" + unit + ") ==\n";
  double max_value = 0.0;
  size_t label_width = 0;
  for (const auto& row : rows) {
    max_value = std::max(max_value, row.value);
    label_width = std::max(label_width, row.label.size());
  }
  for (const auto& row : rows) {
    std::string label = row.label;
    label.resize(label_width, ' ');
    int bar = 0;
    if (max_value > 0) {
      bar = static_cast<int>(row.value / max_value * width + 0.5);
    }
    char value_buf[32];
    std::snprintf(value_buf, sizeof(value_buf), "%.3g", row.value);
    out += "  " + label + " |" + std::string(bar, '#') + " " + value_buf +
           "\n";
  }
  return out;
}

void ComparisonToJson(const std::string& title, const std::string& unit,
                      const std::vector<ComparisonRow>& rows,
                      JsonWriter* writer) {
  writer->BeginObject();
  writer->Field("title", title);
  writer->Field("unit", unit);
  writer->Key("rows");
  writer->BeginArray();
  for (const auto& row : rows) {
    writer->BeginObject();
    writer->Field("label", row.label);
    writer->Field("value", row.value);
    writer->EndObject();
  }
  writer->EndArray();
  writer->EndObject();
}

}  // namespace palm
}  // namespace coconut
