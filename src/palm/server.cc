#include "palm/server.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "palm/heatmap.h"
#include "palm/sharded_index.h"
#include "series/series.h"

namespace coconut {
namespace palm {

Result<std::unique_ptr<Server>> Server::Create(const std::string& root_dir,
                                               size_t pool_bytes_per_index) {
  // Validate the root by creating it.
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> probe,
                           storage::StorageManager::Create(root_dir));
  (void)probe;
  return std::unique_ptr<Server>(new Server(root_dir, pool_bytes_per_index));
}

Status Server::RegisterDataset(const std::string& name,
                               const series::SeriesCollection& data,
                               const std::vector<int64_t>* timestamps) {
  if (datasets_.count(name) != 0) {
    return Status::AlreadyExists("dataset '" + name + "' already registered");
  }
  if (timestamps != nullptr && timestamps->size() != data.size()) {
    return Status::InvalidArgument("one timestamp per series required");
  }
  Dataset ds;
  ds.data = series::SeriesCollection(data.length());
  ds.data.Reserve(data.size());
  std::vector<float> buf;
  for (size_t i = 0; i < data.size(); ++i) {
    buf.assign(data[i].begin(), data[i].end());
    series::ZNormalize(buf);
    ds.data.Append(buf);
  }
  if (timestamps != nullptr) {
    ds.timestamps = *timestamps;
  } else {
    ds.timestamps.resize(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      ds.timestamps[i] = static_cast<int64_t>(i);
    }
  }
  datasets_[name] = std::move(ds);
  return Status::OK();
}

Result<Server::IndexHandle*> Server::NewHandle(const std::string& index_name,
                                               const VariantSpec& spec) {
  if (indexes_.count(index_name) != 0) {
    return Status::AlreadyExists("index '" + index_name + "' already exists");
  }
  auto handle = std::make_unique<IndexHandle>();
  handle->spec = spec;
  COCONUT_ASSIGN_OR_RETURN(
      handle->storage,
      storage::StorageManager::Create(root_dir_ + "/idx_" + index_name));
  COCONUT_RETURN_NOT_OK(handle->storage->Clear());
  handle->pool = std::make_unique<storage::BufferPool>(pool_bytes_);
  COCONUT_ASSIGN_OR_RETURN(
      handle->raw, core::RawSeriesStore::Create(handle->storage.get(), "raw",
                                                spec.sax.series_length));
  IndexHandle* raw_ptr = handle.get();
  indexes_[index_name] = std::move(handle);
  return raw_ptr;
}

void Server::WriteIoStats(const storage::IoStats& io, JsonWriter* w) {
  w->BeginObject();
  w->Field("sequential_reads", io.sequential_reads);
  w->Field("random_reads", io.random_reads);
  w->Field("sequential_writes", io.sequential_writes);
  w->Field("random_writes", io.random_writes);
  w->Field("bytes_read", io.bytes_read);
  w->Field("bytes_written", io.bytes_written);
  w->EndObject();
}

Result<std::string> Server::BuildIndex(const std::string& index_name,
                                       const VariantSpec& spec,
                                       const std::string& dataset_name) {
  auto ds_it = datasets_.find(dataset_name);
  if (ds_it == datasets_.end()) {
    return Status::NotFound("dataset '" + dataset_name + "' not registered");
  }
  const Dataset& dataset = ds_it->second;
  if (static_cast<int>(dataset.data.length()) != spec.sax.series_length) {
    return Status::InvalidArgument("spec series_length != dataset length");
  }
  COCONUT_ASSIGN_OR_RETURN(IndexHandle * handle,
                           NewHandle(index_name, spec));

  WallTimer timer;
  const storage::IoStats before = *handle->storage->io_stats();

  COCONUT_ASSIGN_OR_RETURN(
      handle->static_index,
      CreateStaticIndex(spec, handle->storage.get(), "index", handle->pool.get(),
                        handle->raw.get()));
  // Sharded indexes route every series into a shard-local raw store; the
  // handle-level store would be a dead second copy of the dataset (doubled
  // disk and build I/O), so only unsharded indexes populate it.
  const bool shard_owned_raw = spec.num_shards > 1;
  for (size_t i = 0; i < dataset.data.size(); ++i) {
    if (!shard_owned_raw) {
      COCONUT_RETURN_NOT_OK(handle->raw->Append(dataset.data[i]).status());
    }
    COCONUT_RETURN_NOT_OK(handle->static_index->Insert(
        i, dataset.data[i], dataset.timestamps[i]));
  }
  COCONUT_RETURN_NOT_OK(handle->raw->Flush());
  COCONUT_RETURN_NOT_OK(handle->static_index->Finalize());
  handle->next_series_id = dataset.data.size();
  handle->build_seconds = timer.ElapsedSeconds();
  handle->build_io = handle->storage->io_stats()->Since(before);
  // Sharded builds do their I/O through per-shard storage managers (fresh
  // at this point, so totals == this build); fold them into the report.
  if (auto* sharded =
          dynamic_cast<ShardedIndex*>(handle->static_index.get());
      sharded != nullptr) {
    handle->build_io.Add(sharded->AggregateIoStats());
  }

  JsonWriter w;
  w.BeginObject();
  w.Field("index", index_name);
  w.Field("variant", VariantName(spec));
  w.Field("dataset", dataset_name);
  w.Field("shards", static_cast<uint64_t>(spec.num_shards));
  w.Field("entries", handle->static_index->num_entries());
  w.Field("build_seconds", handle->build_seconds);
  w.Field("index_bytes", handle->static_index->index_bytes());
  w.Field("total_bytes", handle->storage->TotalBytesOnDisk());
  w.Key("io");
  WriteIoStats(handle->build_io, &w);
  w.EndObject();
  return w.TakeString();
}

Result<std::string> Server::CreateStream(const std::string& stream_name,
                                         const VariantSpec& spec) {
  COCONUT_ASSIGN_OR_RETURN(IndexHandle * handle,
                           NewHandle(stream_name, spec));
  COCONUT_ASSIGN_OR_RETURN(
      handle->stream_index,
      CreateStreamingIndex(spec, handle->storage.get(), "stream",
                           handle->pool.get(), handle->raw.get()));
  JsonWriter w;
  w.BeginObject();
  w.Field("stream", stream_name);
  w.Field("variant", VariantName(spec));
  w.EndObject();
  return w.TakeString();
}

Result<std::string> Server::IngestBatch(const std::string& stream_name,
                                        const series::SeriesCollection& batch,
                                        const std::vector<int64_t>& timestamps) {
  auto it = indexes_.find(stream_name);
  if (it == indexes_.end() || it->second->stream_index == nullptr) {
    return Status::NotFound("stream '" + stream_name + "' not found");
  }
  if (timestamps.size() != batch.size()) {
    return Status::InvalidArgument("one timestamp per series required");
  }
  IndexHandle* handle = it->second.get();

  WallTimer timer;
  // Snapshot reads: background seals/merges of an async stream may be
  // doing I/O while this batch is admitted.
  const storage::IoStats before = handle->storage->SnapshotIoStats();
  std::vector<float> buf;
  for (size_t i = 0; i < batch.size(); ++i) {
    buf.assign(batch[i].begin(), batch[i].end());
    series::ZNormalize(buf);
    // Series ids are raw-store ordinals (queries fetch by id), so take the
    // id Append assigned. If the index then rejects the entry (e.g. a
    // kStrict timestamp regression), the ordinal stays burned as an
    // unindexed raw slot — ids of previously and subsequently admitted
    // series keep lining up with the raw file either way.
    COCONUT_ASSIGN_OR_RETURN(const uint64_t id, handle->raw->Append(buf));
    handle->next_series_id = id + 1;
    COCONUT_RETURN_NOT_OK(
        handle->stream_index->Ingest(id, buf, timestamps[i]));
  }
  COCONUT_RETURN_NOT_OK(handle->raw->Flush());

  const stream::StreamingStats stats =
      handle->stream_index->SnapshotStats();
  JsonWriter w;
  w.BeginObject();
  w.Field("stream", stream_name);
  w.Field("ingested", static_cast<uint64_t>(batch.size()));
  w.Field("total_entries", stats.entries);
  w.Field("partitions", stats.sealed_partitions);
  w.Field("buffered", stats.buffered);
  w.Field("pending_tasks", stats.pending_tasks);
  w.Field("seals_completed", stats.seals_completed);
  w.Field("merges_completed", stats.merges_completed);
  w.Field("seconds", timer.ElapsedSeconds());
  w.Key("io");
  WriteIoStats(handle->storage->SnapshotIoStats().Since(before), &w);
  w.EndObject();
  return w.TakeString();
}

Result<std::string> Server::DrainStream(const std::string& stream_name) {
  auto it = indexes_.find(stream_name);
  if (it == indexes_.end() || it->second->stream_index == nullptr) {
    return Status::NotFound("stream '" + stream_name + "' not found");
  }
  IndexHandle* handle = it->second.get();
  WallTimer timer;
  COCONUT_RETURN_NOT_OK(handle->stream_index->FlushAll());
  const stream::StreamingStats stats =
      handle->stream_index->SnapshotStats();
  JsonWriter w;
  w.BeginObject();
  w.Field("stream", stream_name);
  w.Field("drained", true);
  w.Field("drain_seconds", timer.ElapsedSeconds());
  w.Field("total_entries", stats.entries);
  w.Field("partitions", stats.sealed_partitions);
  w.Field("buffered", stats.buffered);
  w.Field("pending_tasks", stats.pending_tasks);
  w.Field("seals_completed", stats.seals_completed);
  w.Field("merges_completed", stats.merges_completed);
  w.Field("index_bytes", handle->stream_index->index_bytes());
  w.Field("total_bytes", handle->storage->TotalBytesOnDisk());
  w.EndObject();
  return w.TakeString();
}

Result<std::string> Server::Query(const QueryRequest& request) {
  auto it = indexes_.find(request.index);
  if (it == indexes_.end()) {
    return Status::NotFound("index '" + request.index + "' not found");
  }
  IndexHandle* handle = it->second.get();

  std::vector<float> query = request.query;
  series::ZNormalize(query);

  core::SearchOptions options;
  if (request.window.has_value()) options.window = *request.window;
  options.approx_candidates = request.approx_candidates;

  // A sharded index reads through per-shard storage managers; snapshot
  // those too so the reported query I/O is real, not the handle's zeros.
  auto* sharded = dynamic_cast<ShardedIndex*>(handle->static_index.get());

  core::QueryCounters counters;
  storage::AccessTracker* tracker = handle->storage->tracker();
  if (request.capture_heatmap) {
    if (sharded != nullptr) {
      // Shard I/O never touches the handle-level tracker; a silent empty
      // heat map would read as an all-cold result, so refuse instead.
      return Status::NotSupported(
          "heat maps are not captured for sharded indexes yet");
    }
    tracker->Clear();
    tracker->Enable();
  }

  WallTimer timer;
  // Snapshot: async streams may be sealing/merging in the background.
  storage::IoStats before = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) before.Add(sharded->AggregateIoStats());
  Result<core::SearchResult> result =
      handle->static_index != nullptr
          ? (request.exact
                 ? handle->static_index->ExactSearch(query, options, &counters)
                 : handle->static_index->ApproxSearch(query, options,
                                                      &counters))
          : (request.exact
                 ? handle->stream_index->ExactSearch(query, options, &counters)
                 : handle->stream_index->ApproxSearch(query, options,
                                                      &counters));
  const double seconds = timer.ElapsedSeconds();
  if (request.capture_heatmap) tracker->Disable();
  if (!result.ok()) return result.status();
  const core::SearchResult& match = result.value();

  JsonWriter w;
  w.BeginObject();
  w.Field("index", request.index);
  w.Field("exact", request.exact);
  w.Field("found", match.found);
  if (match.found) {
    w.Field("series_id", match.series_id);
    w.Field("distance", std::sqrt(match.distance_sq));
    w.Field("timestamp", static_cast<int64_t>(match.timestamp));
  }
  w.Field("seconds", seconds);
  w.Key("io");
  storage::IoStats after = handle->storage->SnapshotIoStats();
  if (sharded != nullptr) after.Add(sharded->AggregateIoStats());
  WriteIoStats(after.Since(before), &w);
  w.Key("counters");
  w.BeginObject();
  w.Field("leaves_visited", counters.leaves_visited);
  w.Field("leaves_pruned", counters.leaves_pruned);
  w.Field("entries_examined", counters.entries_examined);
  w.Field("raw_fetches", counters.raw_fetches);
  w.Field("partitions_visited", counters.partitions_visited);
  w.Field("partitions_skipped", counters.partitions_skipped);
  w.EndObject();
  if (request.capture_heatmap) {
    // Snapshot: an async stream's background seals may still be recording.
    const std::vector<storage::AccessEvent> events =
        tracker->SnapshotEvents();
    HeatMap map = BuildHeatMap(events, request.heatmap_time_bins,
                               request.heatmap_location_bins);
    w.Field("access_locality", AccessLocality(events));
    w.Key("heatmap");
    HeatMapToJson(map, &w);
  }
  w.EndObject();
  return w.TakeString();
}

std::vector<Result<std::string>> Server::QueryBatch(
    const std::vector<QueryRequest>& requests, size_t threads) {
  std::vector<Result<std::string>> results(
      requests.size(), Result<std::string>(Status::Internal("not executed")));
  if (requests.empty()) return results;

  // Group request ordinals by target index. One task per group keeps every
  // index single-threaded (buffer pool pointers, tracker state and query
  // counters are per-index), while distinct indexes proceed in parallel.
  std::map<std::string, std::vector<size_t>> by_index;
  for (size_t i = 0; i < requests.size(); ++i) {
    by_index[requests[i].index].push_back(i);
  }

  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<size_t>(8, hw == 0 ? 1 : hw);
  }
  threads = std::min(threads, by_index.size());

  ThreadPool pool(threads);
  for (auto& [index_name, ordinals] : by_index) {
    (void)index_name;
    const std::vector<size_t>* group = &ordinals;
    pool.Submit([this, group, &requests, &results] {
      for (size_t ordinal : *group) {
        results[ordinal] = Query(requests[ordinal]);
      }
    });
  }
  pool.Wait();
  return results;
}

std::string Server::RecommendJson(const Scenario& scenario) {
  Recommendation rec = Recommend(scenario);
  JsonWriter w;
  w.BeginObject();
  w.Field("variant", rec.variant_name());
  w.Key("spec");
  w.BeginObject();
  w.Field("materialized", rec.spec.materialized);
  w.Field("fill_factor", rec.spec.fill_factor);
  w.Field("growth_factor", static_cast<int64_t>(rec.spec.growth_factor));
  w.Field("buffer_entries", static_cast<uint64_t>(rec.spec.buffer_entries));
  w.EndObject();
  w.Key("rationale");
  w.BeginArray();
  for (const auto& reason : rec.rationale) w.String(reason);
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

std::string Server::ListIndexes() const {
  JsonWriter w;
  w.BeginArray();
  for (const auto& [name, handle] : indexes_) {
    w.BeginObject();
    w.Field("name", name);
    w.Field("variant", VariantName(handle->spec));
    w.Field("streaming", handle->stream_index != nullptr);
    w.Field("shards", static_cast<uint64_t>(handle->spec.num_shards));
    const uint64_t entries = handle->static_index != nullptr
                                 ? handle->static_index->num_entries()
                                 : handle->stream_index->num_entries();
    w.Field("entries", entries);
    w.Field("total_bytes", handle->storage->TotalBytesOnDisk());
    w.EndObject();
  }
  w.EndArray();
  return w.TakeString();
}

core::DataSeriesIndex* Server::static_index(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second->static_index.get();
}

stream::StreamingIndex* Server::stream_index(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second->stream_index.get();
}

storage::StorageManager* Server::index_storage(const std::string& name) {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second->storage.get();
}

}  // namespace palm
}  // namespace coconut
