#include "palm/server.h"

namespace coconut {
namespace palm {

namespace {

/// Adapts a typed Result to the legacy string-returning contract.
template <typename Report>
Result<std::string> Serialized(Result<Report> result) {
  if (!result.ok()) return result.status();
  return result.value().ToJsonString();
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Create(const std::string& root_dir,
                                               size_t pool_bytes_per_index) {
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<api::Service> service,
      api::Service::Create(root_dir, pool_bytes_per_index));
  return std::unique_ptr<Server>(new Server(std::move(service)));
}

Status Server::RegisterDataset(const std::string& name,
                               const series::SeriesCollection& data,
                               const std::vector<int64_t>* timestamps) {
  return service_->RegisterDataset(name, data, timestamps).status();
}

Result<std::string> Server::BuildIndex(const std::string& index_name,
                                       const VariantSpec& spec,
                                       const std::string& dataset_name) {
  return Serialized(service_->BuildIndex(index_name, spec, dataset_name));
}

Result<std::string> Server::CreateStream(const std::string& stream_name,
                                         const VariantSpec& spec) {
  return Serialized(service_->CreateStream(stream_name, spec));
}

Result<std::string> Server::IngestBatch(
    const std::string& stream_name, const series::SeriesCollection& batch,
    const std::vector<int64_t>& timestamps) {
  return Serialized(service_->IngestBatch(stream_name, batch, timestamps));
}

Result<std::string> Server::DrainStream(const std::string& stream_name) {
  return Serialized(service_->DrainStream(stream_name));
}

Result<std::string> Server::Query(const QueryRequest& request) {
  return Serialized(service_->Query(request));
}

std::vector<Result<std::string>> Server::QueryBatch(
    const std::vector<QueryRequest>& requests, size_t threads) {
  std::vector<Result<api::QueryReport>> reports =
      service_->QueryBatch(requests, threads);
  std::vector<Result<std::string>> results;
  results.reserve(reports.size());
  for (Result<api::QueryReport>& report : reports) {
    results.push_back(Serialized(std::move(report)));
  }
  return results;
}

std::string Server::RecommendJson(const Scenario& scenario) {
  return service_->Recommend(scenario).ToJsonString();
}

std::string Server::ListIndexes() const {
  return service_->ListIndexes().ToJsonString();
}

Result<std::string> Server::DropIndex(const std::string& index_name) {
  return Serialized(service_->DropIndex(index_name));
}

Result<std::string> Server::DropDataset(const std::string& dataset_name) {
  return Serialized(service_->DropDataset(dataset_name));
}

core::DataSeriesIndex* Server::static_index(const std::string& name) {
  return service_->static_index(name);
}

stream::StreamingIndex* Server::stream_index(const std::string& name) {
  return service_->stream_index(name);
}

storage::StorageManager* Server::index_storage(const std::string& name) {
  return service_->index_storage(name);
}

}  // namespace palm
}  // namespace coconut
