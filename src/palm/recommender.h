#ifndef COCONUT_PALM_RECOMMENDER_H_
#define COCONUT_PALM_RECOMMENDER_H_

#include <string>
#include <vector>

#include "palm/factory.h"

namespace coconut {
namespace palm {

/// Description of the application an index is wanted for — the knobs the
/// Palm GUI exposes (Section 4: dataset kind, memory budget, anticipated
/// window size, projected workload).
struct Scenario {
  /// Whether data keeps arriving during exploration (Scenario 2) or the
  /// collection is fixed up front (Scenario 1).
  bool streaming = false;
  /// Expected number of data series.
  uint64_t dataset_size = 1'000'000;
  /// Series length and summarization shape.
  series::SaxConfig sax;
  /// Projected number of similarity queries in the exploration workflow.
  uint64_t expected_queries = 10;
  /// For static collections: fraction of post-build operations that are
  /// inserts (0 = read-only).
  double update_ratio = 0.0;
  /// Available main memory.
  uint64_t memory_budget_bytes = 256ull << 20;
  /// Whether queries carry temporal windows of interest.
  bool window_queries = false;
  /// Typical window length as a fraction of retained history (0..1];
  /// meaningful when window_queries is true.
  double typical_window_fraction = 0.25;
  /// Whether storage footprint is a first-class concern (e.g. cloud cost).
  bool storage_constrained = false;
};

/// A recommendation plus the decision path that produced it. The
/// recommender is a decision tree precisely so it can explain itself
/// (Section 4: "designed as a decision tree to be able to provide users
/// with the rationale for its advice").
struct Recommendation {
  VariantSpec spec;
  std::vector<std::string> rationale;

  std::string variant_name() const { return VariantName(spec); }
};

/// Runs the decision tree.
Recommendation Recommend(const Scenario& scenario);

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_RECOMMENDER_H_
