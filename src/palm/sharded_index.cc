#include "palm/sharded_index.h"

#include <algorithm>
#include <condition_variable>

#include "palm/shard_route.h"

namespace coconut {
namespace palm {

namespace {

/// Completion latch for one scatter round on the shared query pool.
/// ThreadPool::Wait would wait for *every* outstanding task, including
/// other callers' — per-call latches keep concurrent queries independent.
struct GatherLatch {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining;

  explicit GatherLatch(size_t n) : remaining(n) {}

  void Done() {
    // Notify under the lock: the waiter destroys the latch as soon as
    // Await returns, so the count decrement, the notify and this thread's
    // last touch of the latch must all complete before the waiter can
    // observe remaining == 0.
    std::lock_guard<std::mutex> lock(mu);
    --remaining;
    cv.notify_all();
  }

  void Await() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining == 0; });
  }
};

}  // namespace

Result<std::unique_ptr<ShardedIndex>> ShardedIndex::Create(
    storage::StorageManager* root, const std::string& name,
    const Options& options) {
  if (root == nullptr) {
    return Status::InvalidArgument("root storage manager is required");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.spec.mode != StreamMode::kStatic) {
    return Status::InvalidArgument("sharding supports static indexes only");
  }
  auto sharded =
      std::unique_ptr<ShardedIndex>(new ShardedIndex(options));

  // Each shard is a complete stack of the wrapped variant. The construction
  // sort budget is split so concurrent shard builds stay inside the
  // configured total.
  VariantSpec shard_spec = options.spec;
  shard_spec.num_shards = 1;
  shard_spec.memory_budget_bytes = std::max<size_t>(
      64 << 10, options.spec.memory_budget_bytes / options.num_shards);

  for (size_t i = 0; i < options.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    COCONUT_ASSIGN_OR_RETURN(
        shard->storage,
        storage::StorageManager::Create(root->directory() + "/" + name +
                                        "_shard" + std::to_string(i)));
    COCONUT_RETURN_NOT_OK(shard->storage->Clear());
    shard->pool =
        std::make_unique<storage::BufferPool>(options.pool_bytes_per_shard);
    COCONUT_ASSIGN_OR_RETURN(
        shard->raw,
        core::RawSeriesStore::Create(shard->storage.get(), "raw",
                                     options.spec.sax.series_length));
    COCONUT_ASSIGN_OR_RETURN(
        shard->index,
        CreateStaticIndex(shard_spec, shard->storage.get(), "index",
                          shard->pool.get(), shard->raw.get()));
    sharded->shards_.push_back(std::move(shard));
  }

  if (options.num_shards > 1) {
    const size_t threads =
        options.query_threads != 0
            ? options.query_threads
            : std::min<size_t>(options.num_shards, 8);
    if (threads > 1) {
      sharded->query_pool_ = std::make_unique<ThreadPool>(threads);
    }
  }
  return sharded;
}

size_t ShardedIndex::ShardOf(std::span<const float> znorm_values) const {
  // Shared with ShardedStreamingIndex (shard_route.h): a series lands in
  // the same key range whether bulk-built or streamed.
  return ShardOfSeries(znorm_values, options_.spec.sax, shards_.size());
}

Status ShardedIndex::Insert(uint64_t series_id,
                            std::span<const float> znorm_values,
                            int64_t timestamp) {
  if (static_cast<int>(znorm_values.size()) !=
      options_.spec.sax.series_length) {
    return Status::InvalidArgument("series length mismatch");
  }
  // Routing recomputes the summarization the inner Insert derives again;
  // accepted duplication — passing a precomputed key down would change
  // DataSeriesIndex::Insert for every family, and builds are dominated by
  // the construction sort, not SAX.
  Shard& shard = *shards_[ShardOf(znorm_values)];
  // The inner index speaks shard-local ids (its raw-store ordinals); the
  // mapping back to global ids is applied at gather time.
  COCONUT_ASSIGN_OR_RETURN(uint64_t local_id,
                           shard.raw->Append(znorm_values));
  COCONUT_RETURN_NOT_OK(
      shard.index->Insert(local_id, znorm_values, timestamp));
  if (shard.local_to_global.size() <= local_id) {
    shard.local_to_global.resize(local_id + 1);
  }
  shard.local_to_global[local_id] = series_id;
  BumpSnapshotVersion();
  return Status::OK();
}

Status ShardedIndex::Finalize() {
  if (finalized_) return Status::OK();

  auto finalize_shard = [](Shard* shard) -> Status {
    COCONUT_RETURN_NOT_OK(shard->raw->Flush());
    return shard->index->Finalize();
  };

  const size_t build_threads =
      options_.build_threads != 0
          ? std::min(options_.build_threads, shards_.size())
          : shards_.size();
  if (shards_.size() == 1 || build_threads == 1) {
    for (auto& shard : shards_) {
      COCONUT_RETURN_NOT_OK(finalize_shard(shard.get()));
    }
    finalized_ = true;  // Only a fully successful build seals the index.
    BumpSnapshotVersion();
    return Status::OK();
  }

  // Shards touch disjoint storage managers, pools and raw stores, so their
  // finalizes (CTree bulk sorts included) run concurrently.
  ThreadPool pool(build_threads);
  std::vector<Status> statuses(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    Status* slot = &statuses[i];
    pool.Submit([shard, slot, &finalize_shard] {
      *slot = finalize_shard(shard);
    });
  }
  pool.Wait();
  for (const Status& st : statuses) COCONUT_RETURN_NOT_OK(st);
  finalized_ = true;  // Only a fully successful build seals the index.
  BumpSnapshotVersion();
  return Status::OK();
}

Result<core::SearchResult> ShardedIndex::ScatterSearch(
    std::span<const float> query, const core::SearchOptions& options,
    core::QueryCounters* counters, bool exact) {
  const size_t k = shards_.size();
  std::vector<Result<core::SearchResult>> results(
      k, Result<core::SearchResult>(Status::Internal("not executed")));
  std::vector<core::QueryCounters> shard_counters(k);

  auto search_shard = [&](size_t i) {
    Shard& shard = *shards_[i];
    // Inner query state (buffer pool page pointers, tracker, counters) is
    // single-threaded by contract; concurrent ShardedIndex callers
    // serialize per shard here while distinct shards run in parallel.
    std::lock_guard<std::mutex> lock(shard.query_mu);
    results[i] = exact
                     ? shard.index->ExactSearch(query, options,
                                                &shard_counters[i])
                     : shard.index->ApproxSearch(query, options,
                                                 &shard_counters[i]);
  };

  if (query_pool_ == nullptr || k == 1) {
    for (size_t i = 0; i < k; ++i) search_shard(i);
  } else {
    GatherLatch latch(k);
    for (size_t i = 0; i < k; ++i) {
      query_pool_->Submit([i, &latch, &search_shard] {
        search_shard(i);
        latch.Done();
      });
    }
    latch.Await();
  }

  // Gather: smallest distance wins; exact ties break toward the smaller
  // global id so the answer is deterministic whatever the shard layout.
  core::SearchResult best;
  for (size_t i = 0; i < k; ++i) {
    COCONUT_RETURN_NOT_OK(results[i].status());
    core::SearchResult r = results[i].value();
    if (r.found) {
      r.series_id = shards_[i]->local_to_global[r.series_id];
      if (!best.found || r.distance_sq < best.distance_sq ||
          (r.distance_sq == best.distance_sq &&
           r.series_id < best.series_id)) {
        best = r;
      }
    }
    if (counters != nullptr) {
      counters->Add(shard_counters[i]);
    }
  }
  return best;
}

Result<core::SearchResult> ShardedIndex::ExactSearch(
    std::span<const float> query, const core::SearchOptions& options,
    core::QueryCounters* counters) {
  return ScatterSearch(query, options, counters, /*exact=*/true);
}

Status ShardedIndex::ExactSearchBatch(
    std::span<const std::span<const float>> queries,
    const core::SearchOptions& options,
    std::span<core::SearchResult> results,
    std::span<core::QueryCounters> counters) {
  const size_t nq = queries.size();
  const size_t k = shards_.size();
  if (nq == 0) return Status::OK();
  for (size_t q = 0; q < nq; ++q) results[q] = core::SearchResult{};

  // Scatter: every shard scores the whole batch over its partition in one
  // shared pass. Per-shard result/counter slabs keep the workers disjoint.
  std::vector<Status> statuses(k);
  std::vector<std::vector<core::SearchResult>> shard_results(
      k, std::vector<core::SearchResult>(nq));
  std::vector<std::vector<core::QueryCounters>> shard_counters(
      k, std::vector<core::QueryCounters>(nq));

  auto search_shard = [&](size_t i) {
    Shard& shard = *shards_[i];
    // Same serialization contract as ScatterSearch: inner query state is
    // single-threaded, distinct shards proceed in parallel.
    std::lock_guard<std::mutex> lock(shard.query_mu);
    statuses[i] = shard.index->ExactSearchBatch(
        queries, options, shard_results[i], shard_counters[i]);
  };

  if (query_pool_ == nullptr || k == 1) {
    for (size_t i = 0; i < k; ++i) search_shard(i);
  } else {
    GatherLatch latch(k);
    for (size_t i = 0; i < k; ++i) {
      query_pool_->Submit([i, &latch, &search_shard] {
        search_shard(i);
        latch.Done();
      });
    }
    latch.Await();
  }

  // Gather per query: smallest distance wins; exact ties break toward the
  // smaller global id, exactly like the single-query gather.
  for (size_t i = 0; i < k; ++i) {
    COCONUT_RETURN_NOT_OK(statuses[i]);
    for (size_t q = 0; q < nq; ++q) {
      core::SearchResult r = shard_results[i][q];
      if (r.found) {
        r.series_id = shards_[i]->local_to_global[r.series_id];
        core::SearchResult& best = results[q];
        if (!best.found || r.distance_sq < best.distance_sq ||
            (r.distance_sq == best.distance_sq &&
             r.series_id < best.series_id)) {
          best = r;
        }
      }
      if (!counters.empty()) counters[q].Add(shard_counters[i][q]);
    }
  }
  return Status::OK();
}

Result<core::SearchResult> ShardedIndex::ApproxSearch(
    std::span<const float> query, const core::SearchOptions& options,
    core::QueryCounters* counters) {
  return ScatterSearch(query, options, counters, /*exact=*/false);
}

uint64_t ShardedIndex::num_entries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index->num_entries();
  return total;
}

uint64_t ShardedIndex::index_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index->index_bytes();
  return total;
}

uint64_t ShardedIndex::snapshot_version() const {
  uint64_t total = core::DataSeriesIndex::snapshot_version();
  for (const auto& shard : shards_) {
    total += shard->index->snapshot_version();
  }
  return total;
}

std::string ShardedIndex::describe() const {
  return "Sharded[" + std::to_string(shards_.size()) + "x" +
         shards_[0]->index->describe() + "]";
}

uint64_t ShardedIndex::shard_entries(size_t shard) const {
  return shards_[shard]->index->num_entries();
}

storage::IoStats ShardedIndex::AggregateIoStats() const {
  storage::IoStats total;
  for (const auto& shard : shards_) {
    total.Add(shard->storage->SnapshotIoStats());
  }
  return total;
}

void ShardedIndex::PoolCounters(uint64_t* hits, uint64_t* misses) const {
  uint64_t h = 0;
  uint64_t m = 0;
  for (const auto& shard : shards_) {
    h += shard->pool->hits();
    m += shard->pool->misses();
  }
  if (hits != nullptr) *hits = h;
  if (misses != nullptr) *misses = m;
}

}  // namespace palm
}  // namespace coconut
