#ifndef COCONUT_PALM_SHARDED_STREAMING_INDEX_H_
#define COCONUT_PALM_SHARDED_STREAMING_INDEX_H_

#include <array>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/raw_store.h"
#include "palm/factory.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"
#include "stream/wal.h"

namespace coconut {
namespace palm {

/// One logical *live stream* split by invSAX key range across K shards —
/// the fusion of the two scale axes: each shard is a full, independent
/// async streaming stack (its own StorageManager subdirectory, BufferPool,
/// RawSeriesStore and inner CTree-TP / CLSM-BTP / CLSM-PP index), and each
/// shard's seal/flush/merge cascades run FIFO on that shard's own
/// SerialExecutor strand over the shared background pool. Temporal
/// partitioning happens *inside* every shard as before, so the layout is
/// the ROADMAP's "temporal × key-range" grid.
///
/// Routing: a series' interleaved sortable key is computed once at ingest
/// and mapped to a shard by the same contiguous monotone split the static
/// ShardedIndex uses — which shard a series lands in depends only on its
/// values, never on scheduling, so shard contents are deterministic (the
/// determinism suite pins this).
///
/// Queries scatter-gather: each shard evaluates one atomic snapshot of its
/// own buffer/pending/partition state (the PR 3 snapshot machinery) and
/// the gather keeps the closest candidate, ties broken toward the smaller
/// global id. Shards cover the stream disjointly and each per-shard search
/// is exact over its shard, so the gathered minimum equals the unsharded
/// exact answer.
///
/// Threading: Ingest is safe for concurrent callers (per-shard ingest
/// locks serialize the raw append + inner ingest + id-map update; the
/// global timestamp watermark has its own lock). Queries and stats reads
/// run concurrently with ingestion — inner async indexes are
/// snapshot-isolated by contract. FlushAll() is a cross-shard drain
/// barrier.
///
/// Backpressure: VariantSpec::max_inflight_seals applies per shard (each
/// shard's flusher is an independent strand); a blocked or rejected
/// Ingest reports through the same path as unsharded, and SnapshotStats()
/// aggregates the per-shard counters via StreamingStats::Add.
class ShardedStreamingIndex : public stream::StreamingIndex {
 public:
  struct Options {
    /// The per-shard variant. num_shards inside this spec is ignored (the
    /// wrapper owns sharding); must be an async-capable streaming cell.
    VariantSpec spec;
    size_t num_shards = 2;
    /// Threads fanning queries across shards (0 = one per shard, cap 8).
    size_t query_threads = 0;
    /// Per-shard buffer pool budget.
    size_t pool_bytes_per_shard = 4ull << 20;
  };

  /// Creates K empty shards under `root->directory()/name_shardN`. With
  /// spec.durable set, each shard also gets its own fresh write-ahead log.
  static Result<std::unique_ptr<ShardedStreamingIndex>> Create(
      storage::StorageManager* root, const std::string& name,
      const Options& options);

  /// Recovers K durable shards left behind by a previous process: each
  /// shard's log is scanned, its raw store cut back to the durable prefix,
  /// its checkpointed partition state restored and the acknowledged log
  /// suffix replayed through the normal ingest path. The global timestamp
  /// watermark and the per-shard id maps are rebuilt from the logs.
  static Result<std::unique_ptr<ShardedStreamingIndex>> Recover(
      storage::StorageManager* root, const std::string& name,
      const Options& options);

  /// Whether Recover() has durable per-shard state to work from (spec
  /// durable streams leave `<name>_shard0/wal` behind).
  static bool HasDurableState(const storage::StorageManager* root,
                              const std::string& name) {
    return root->Exists(name + "_shard0/wal");
  }

  ~ShardedStreamingIndex() override;

  // --- stream::StreamingIndex ---
  Status Ingest(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override;
  Status FlushAll() override;
  Result<core::SearchResult> ApproxSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  Result<core::SearchResult> ExactSearch(
      std::span<const float> query, const core::SearchOptions& options,
      core::QueryCounters* counters) override;
  uint64_t num_entries() const override;
  size_t num_partitions() const override;
  uint64_t index_bytes() const override;
  std::string describe() const override;
  stream::StreamingStats SnapshotStats() const override;

  /// Group-commits every shard's write-ahead log — the sharded ack gate.
  /// OK when the stream is not durable.
  Status CommitDurable() override;

  /// Reclaims every shard's log prefix behind its newest durable
  /// checkpoint (call after FlushAll, when checkpoints cover everything).
  Status TruncateDurableLogs();

  /// The smallest unused global series id after Recover() (max mapped
  /// global id + 1; 0 for an empty stream).
  uint64_t recovered_next_series_id() const { return recovered_next_id_; }

  /// Sum of per-shard inner stamps — monotone (every shard's counter only
  /// grows), so equal reads bracketing a query prove no shard admitted or
  /// published anything in between. All mutation goes through the inner
  /// indexes (AdmitToShard → inner Ingest; cascades bump inside), so the
  /// wrapper needs no counter of its own.
  uint64_t snapshot_version() const override {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->index->snapshot_version();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }

  /// The shard a series with these (z-normalized) values routes to —
  /// exposed so tests can replay the routing and build per-range oracles.
  size_t ShardOf(std::span<const float> znorm_values) const;

  /// Shard i's inner streaming index (tests compare per-shard partition
  /// sets bit-for-bit against unsharded references).
  stream::StreamingIndex* shard(size_t i) { return shards_[i]->index.get(); }

  /// Per-shard progress snapshot (shard-local counters, shard-local
  /// percentiles).
  stream::StreamingStats ShardStats(size_t i) const {
    return shards_[i]->index->SnapshotStats();
  }

  /// Sum of every shard's I/O counters (per-shard counters are internally
  /// thread-safe snapshot reads).
  storage::IoStats AggregateIoStats() const;

  /// All shards wrap the same spec, so one delegate answers for the group:
  /// the gather path reads each shard's epoch-published snapshot and the
  /// lock-free id map, never an admission lock.
  bool ConcurrentReadsSafe() const override {
    return !shards_.empty() && shards_[0]->index->ConcurrentReadsSafe();
  }

 private:
  /// Lock-free, grow-only map from shard-local raw-store ordinal to global
  /// series id. A chunked spine (chunk k holds kBase << k slots, bases
  /// contiguous) so growth never relocates published slots. The single
  /// writer — serialized by the shard's ingest_mu — fills slot `local_id`
  /// before the inner index publishes the entry that cites it, and a
  /// reader only looks up ordinals it obtained from a published entry, so
  /// the release/acquire pair on the inner index's admission count orders
  /// every Set before the Get that needs it. Slot and spine stores are
  /// atomic, so even an out-of-thin-air probe reads cleanly.
  class IdMap {
   public:
    IdMap() = default;
    IdMap(const IdMap&) = delete;
    IdMap& operator=(const IdMap&) = delete;
    ~IdMap() {
      for (auto& slot : chunks_) {
        delete[] slot.load(std::memory_order_relaxed);
      }
    }

    /// Writer side; callers are serialized by the shard's admission lock.
    void Set(uint64_t local_id, uint64_t global_id) {
      const size_t c = ChunkIndex(local_id);
      std::atomic<uint64_t>* chunk = chunks_[c].load(std::memory_order_acquire);
      if (chunk == nullptr) {
        chunk = new std::atomic<uint64_t>[ChunkCapacity(c)]();
        chunks_[c].store(chunk, std::memory_order_release);
      }
      chunk[local_id - ChunkBase(c)].store(global_id,
                                           std::memory_order_relaxed);
    }

    uint64_t Get(uint64_t local_id) const {
      const size_t c = ChunkIndex(local_id);
      std::atomic<uint64_t>* chunk = chunks_[c].load(std::memory_order_acquire);
      return chunk[local_id - ChunkBase(c)].load(std::memory_order_relaxed);
    }

   private:
    /// First chunk holds 1024 ids; 48 doubling chunks cover ~2.8e17.
    static constexpr size_t kBaseBits = 10;
    static constexpr size_t kMaxChunks = 48;

    /// Chunk k covers [kBase*(2^k - 1), kBase*(2^(k+1) - 1)).
    static size_t ChunkIndex(uint64_t id) {
      return static_cast<size_t>(std::bit_width((id >> kBaseBits) + 1)) - 1;
    }
    static uint64_t ChunkBase(size_t c) {
      return ((uint64_t{1} << c) - 1) << kBaseBits;
    }
    static size_t ChunkCapacity(size_t c) { return size_t{1} << (kBaseBits + c); }

    std::array<std::atomic<std::atomic<uint64_t>*>, kMaxChunks> chunks_{};
  };

  struct Shard {
    std::unique_ptr<storage::StorageManager> storage;
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<core::RawSeriesStore> raw;
    /// Per-shard write-ahead log (durable streams only). Declared before
    /// the index, which holds a raw pointer to it, so it outlives the
    /// index's destructor.
    std::unique_ptr<stream::Wal> wal;
    std::unique_ptr<stream::StreamingIndex> index;
    /// Shard-local raw-store ordinal -> global series id; lock-free so the
    /// gather never waits on a backpressure-blocked admission.
    IdMap local_to_global;
    /// Serializes this shard's admission path (raw append + inner Ingest +
    /// id-map append must agree on the local ordinal).
    std::mutex ingest_mu;
  };

  explicit ShardedStreamingIndex(Options options)
      : options_(std::move(options)) {}

  /// Shared body of Create/Recover: builds the K shard stacks, opening
  /// (and, when `recover` is set, replaying) the per-shard logs.
  static Result<std::unique_ptr<ShardedStreamingIndex>> Build(
      storage::StorageManager* root, const std::string& name,
      const Options& options, bool recover);

  /// Routes one entry to its shard and admits it (raw append + id map +
  /// inner Ingest under the shard's admission lock). Policy enforcement
  /// happens in Ingest, above this.
  Status AdmitToShard(uint64_t series_id,
                      std::span<const float> znorm_values, int64_t timestamp);

  Result<core::SearchResult> ScatterSearch(std::span<const float> query,
                                           const core::SearchOptions& options,
                                           core::QueryCounters* counters,
                                           bool exact);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> query_pool_;  // Null when fan-out is serial.

  /// Global stream-order state: the timestamp policy must see one
  /// watermark across shards, or a regression straddling two shards would
  /// slip past kStrict/kClamp. Held across the whole admission for the
  /// non-permissive policies (a global order is one serialization point);
  /// kPermissive never touches it.
  std::mutex watermark_mu_;
  int64_t last_timestamp_ = INT64_MIN;

  /// See recovered_next_series_id().
  uint64_t recovered_next_id_ = 0;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_SHARDED_STREAMING_INDEX_H_
