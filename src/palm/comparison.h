#ifndef COCONUT_PALM_COMPARISON_H_
#define COCONUT_PALM_COMPARISON_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace coconut {
namespace palm {

/// One bar of a GUI comparison panel (construction speed, storage
/// consumption, query latency across index variants — Section 4).
struct ComparisonRow {
  std::string label;
  double value = 0.0;
};

/// Renders a horizontal text bar chart, bars scaled to the largest value.
std::string RenderBarChart(const std::string& title, const std::string& unit,
                           const std::vector<ComparisonRow>& rows,
                           int width = 48);

/// Serializes a panel for the GUI client.
void ComparisonToJson(const std::string& title, const std::string& unit,
                      const std::vector<ComparisonRow>& rows,
                      JsonWriter* writer);

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_COMPARISON_H_
