#ifndef COCONUT_PALM_API_H_
#define COCONUT_PALM_API_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <system_error>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/index.h"
#include "core/raw_store.h"
#include "palm/factory.h"
#include "palm/heatmap.h"
#include "palm/recommender.h"
#include "series/series.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/storage_manager.h"
#include "stream/streaming_index.h"
#include "stream/wal.h"

namespace coconut {
namespace palm {
namespace api {

/// Wire protocol version, embedded in every error payload so clients can
/// detect incompatible servers. Bumped on breaking changes to the request
/// or response shapes.
inline constexpr int kApiVersion = 1;

// --------------------------------------------------------------- errors

/// Stable snake_case error code for a StatusCode ("not_found", ...). These
/// strings are part of the wire contract; StatusCodeToString stays the
/// human-readable spelling.
const char* StatusCodeToApiCode(StatusCode code);

/// HTTP status the transport maps a failed operation to (400/404/409/...).
int StatusCodeToHttpStatus(StatusCode code);

/// The one error shape every operation can produce:
///   {"error":{"api_version":1,"code":"not_found","message":"..."}}
struct ApiError {
  std::string code;
  std::string message;
  int http_status = 500;

  static ApiError FromStatus(const Status& status);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
  static Result<ApiError> FromJson(const JsonValue& value);
};

/// Wire-supplied index/stream/dataset names become filesystem path
/// components under the service root, so the charset is restricted to
/// [A-Za-z0-9_.-] (max 128 chars; "." and ".." rejected). Returns
/// InvalidArgument naming `what` ("index", "stream", "dataset") on
/// violation.
Status ValidateName(const std::string& name, const char* what);

// ------------------------------------------------- shared wire fragments

/// VariantSpec <-> {"family":"ctree","mode":"tp","sax":{...},...}. Every
/// knob of the spec is on the wire except background_pool (a process-local
/// pointer; JSON-created async indexes use the shared background pool).
/// Unknown fields are rejected.
Result<VariantSpec> VariantSpecFromJson(const JsonValue& value);
void VariantSpecToJson(const VariantSpec& spec, JsonWriter* writer);

/// IoStats <-> {"sequential_reads":...,...} (the report fragment every
/// legacy response embedded under "io").
void IoStatsToJson(const storage::IoStats& io, JsonWriter* writer);
Result<storage::IoStats> IoStatsFromJson(const JsonValue& value);

/// QueryCounters <-> {"leaves_visited":...,...}.
void QueryCountersToJson(const core::QueryCounters& counters,
                         JsonWriter* writer);
Result<core::QueryCounters> QueryCountersFromJson(const JsonValue& value);

/// HeatMap <-> the HeatMapToJson shape (see heatmap.h).
Result<HeatMap> HeatMapFromJson(const JsonValue& value);

// ------------------------------------------------------------- requests

/// POST /api/v1/register_dataset. Series arrive raw; the service
/// z-normalizes on registration exactly like the in-process path.
struct RegisterDatasetRequest {
  std::string name;
  series::SeriesCollection data{0};
  std::optional<std::vector<int64_t>> timestamps;

  static Result<RegisterDatasetRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

struct RegisterDatasetResponse {
  std::string dataset;
  uint64_t series = 0;
  uint64_t series_length = 0;

  static Result<RegisterDatasetResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/build_index.
struct BuildIndexRequest {
  std::string index;
  std::string dataset;
  VariantSpec spec;

  static Result<BuildIndexRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// Build report — serializes byte-identically to the pre-redesign
/// Server::BuildIndex JSON (pinned in api_test.cc).
struct BuildIndexReport {
  std::string index;
  std::string variant;
  std::string dataset;
  uint64_t shards = 1;
  uint64_t entries = 0;
  double build_seconds = 0.0;
  uint64_t index_bytes = 0;
  uint64_t total_bytes = 0;
  storage::IoStats io;

  static Result<BuildIndexReport> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/create_stream.
struct CreateStreamRequest {
  std::string stream;
  VariantSpec spec;

  static Result<CreateStreamRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

struct CreateStreamResponse {
  std::string stream;
  std::string variant;

  static Result<CreateStreamResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/ingest_batch.
struct IngestBatchRequest {
  std::string stream;
  series::SeriesCollection batch{0};
  std::vector<int64_t> timestamps;

  static Result<IngestBatchRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// Ingest report. PR 5 appended the backpressure fields (seals_inflight
/// through stall_ms_p99) to the pre-redesign shape — a wire-additive
/// change mirrored in the legacy serializer replicas api_test pins.
struct IngestBatchReport {
  std::string stream;
  uint64_t ingested = 0;
  uint64_t total_entries = 0;
  uint64_t partitions = 0;
  uint64_t buffered = 0;
  uint64_t pending_tasks = 0;
  uint64_t seals_completed = 0;
  uint64_t merges_completed = 0;
  /// Backpressure telemetry (summed across shards for sharded streams;
  /// stall percentiles are computed over the pooled per-shard sample
  /// windows).
  uint64_t seals_inflight = 0;
  uint64_t ingest_stalls = 0;
  uint64_t ingest_rejects = 0;
  double stall_ms_p50 = 0.0;
  double stall_ms_p99 = 0.0;
  double seconds = 0.0;
  storage::IoStats io;

  static Result<IngestBatchReport> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/drain_stream.
struct DrainStreamRequest {
  std::string stream;

  static Result<DrainStreamRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// Drain report. PR 5 appended the backpressure fields (a wire-additive
/// change, like the ingest report).
struct DrainStreamReport {
  std::string stream;
  bool drained = true;
  double drain_seconds = 0.0;
  uint64_t total_entries = 0;
  uint64_t partitions = 0;
  uint64_t buffered = 0;
  uint64_t pending_tasks = 0;
  uint64_t seals_completed = 0;
  uint64_t merges_completed = 0;
  /// Cumulative backpressure telemetry at drain time (seals_inflight is 0
  /// after a successful drain by construction).
  uint64_t seals_inflight = 0;
  uint64_t ingest_stalls = 0;
  uint64_t ingest_rejects = 0;
  double stall_ms_p50 = 0.0;
  double stall_ms_p99 = 0.0;
  uint64_t index_bytes = 0;
  uint64_t total_bytes = 0;

  static Result<DrainStreamReport> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/query — a similarity query as the GUI client would issue
/// it (raw query series; the server z-normalizes).
struct QueryRequest {
  std::string index;
  std::vector<float> query;
  bool exact = true;
  std::optional<core::TimeWindow> window;
  int approx_candidates = 10;
  /// Capture the page-access pattern and embed a heat map in the response.
  bool capture_heatmap = false;
  size_t heatmap_time_bins = 16;
  size_t heatmap_location_bins = 64;

  static Result<QueryRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// Query report — byte-identical to the pre-redesign Query JSON.
struct QueryReport {
  std::string index;
  bool exact = true;
  bool found = false;
  uint64_t series_id = 0;
  /// Euclidean distance (not squared — the GUI plots this directly).
  double distance = 0.0;
  int64_t timestamp = 0;
  double seconds = 0.0;
  storage::IoStats io;
  core::QueryCounters counters;
  bool has_heatmap = false;
  double access_locality = 0.0;
  HeatMap heatmap;
  /// >1 marks a report produced by a shared batched scan: `seconds` is the
  /// bucket's wall time amortized per query and `io` is the whole bucket's
  /// delta (the scan is shared, so per-query attribution is undefined).
  /// Serialized only when >1 so legacy outputs stay byte-identical.
  uint64_t batch_size = 1;
  /// True when a distributed coordinator answered from the surviving
  /// shards only (degraded reads enabled, >=1 shard unavailable): the
  /// result covers a subset of the key space. Serialized only when true
  /// so legacy outputs stay byte-identical.
  bool degraded = false;

  static Result<QueryReport> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/query_batch.
struct QueryBatchRequest {
  std::vector<QueryRequest> queries;
  /// Worker threads (0 = hardware concurrency capped at 8).
  uint64_t threads = 0;

  static Result<QueryBatchRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// Positional results: {"results":[<query report> | {"error":{...}}, ...]}.
struct QueryBatchResponse {
  struct Entry {
    bool ok = false;
    QueryReport report;  // valid when ok
    ApiError error;      // valid when !ok
  };
  std::vector<Entry> results;

  static Result<QueryBatchResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/recommend — the Scenario knobs the Palm GUI exposes.
struct RecommendRequest {
  Scenario scenario;

  static Result<RecommendRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// Recommendation — byte-identical to the pre-redesign RecommendJson
/// shape: {"variant":...,"spec":{...4 knobs...},"rationale":[...]}.
struct RecommendResponse {
  std::string variant;
  bool materialized = false;
  double fill_factor = 1.0;
  int64_t growth_factor = 4;
  uint64_t buffer_entries = 4096;
  std::vector<std::string> rationale;

  static Result<RecommendResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/list_indexes (empty params). Serializes as a top-level
/// JSON array, the legacy ListIndexes shape.
struct ListIndexesResponse {
  struct IndexInfo {
    std::string name;
    std::string variant;
    bool streaming = false;
    uint64_t shards = 1;
    uint64_t entries = 0;
    uint64_t total_bytes = 0;
  };
  std::vector<IndexInfo> indexes;

  static Result<ListIndexesResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/drop_index — releases the index's storage directory,
/// buffer pool and raw store. Streaming indexes are drained first.
struct DropIndexRequest {
  std::string index;

  static Result<DropIndexRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

struct DropIndexResponse {
  std::string index;
  bool dropped = false;
  bool streaming = false;
  uint64_t entries = 0;
  /// Bytes the index held on disk at drop time.
  uint64_t reclaimed_bytes = 0;

  static Result<DropIndexResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/drop_dataset — forgets a registered dataset. Indexes
/// built from it are unaffected (they own their data).
struct DropDatasetRequest {
  std::string dataset;

  static Result<DropDatasetRequest> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

struct DropDatasetResponse {
  std::string dataset;
  bool dropped = false;
  uint64_t series = 0;

  static Result<DropDatasetResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

/// POST /api/v1/server_stats (empty params) — the front-door counters on
/// the wire: answer-cache hit/miss/evict occupancy and quota
/// admit/throttle/401 tallies. Serialized as
/// {"cache":{...},"quota":{...}} with `enabled` flags so clients can tell
/// "disabled" from "idle".
struct ServerStatsResponse {
  bool cache_enabled = false;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_stale_drops = 0;
  uint64_t cache_invalidations = 0;
  /// Negative-result caching (not-found exact answers). The flag rides in
  /// the cache object; the counters are serialized only when the feature
  /// is on so legacy outputs stay byte-identical.
  bool cache_negative_enabled = false;
  uint64_t cache_negative_hits = 0;
  uint64_t cache_negative_inserts = 0;
  bool quota_enabled = false;
  uint64_t quota_admitted = 0;
  uint64_t quota_throttled = 0;
  uint64_t quota_unauthenticated = 0;

  /// Per-shard health as seen by a distributed coordinator. Empty for
  /// plain services; serialized (as "shards":[...]) only when non-empty
  /// so plain server_stats responses stay byte-identical.
  struct ShardHealth {
    std::string endpoint;
    bool healthy = true;
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t consecutive_failures = 0;
  };
  std::vector<ShardHealth> shards;

  static Result<ServerStatsResponse> FromJson(const JsonValue& value);
  void ToJson(JsonWriter* writer) const;
  std::string ToJsonString() const;
};

// -------------------------------------------------------------- service

class QueryCache;          // palm/query_cache.h
struct QueryCacheOptions;  // palm/query_cache.h
class QuotaEnforcer;       // palm/quota.h
struct QuotaOptions;       // palm/quota.h

/// The transport-agnostic Palm service: every operation of the demo's
/// algorithms backend as a typed method, plus a JSON-RPC style Dispatch
/// that parses a wire request, validates it, runs the typed method and
/// serializes the typed response. palm::Server is a thin adapter over
/// this class; the HTTP transport (http_server.h) serves Dispatch
/// directly. This is the seam future distributed shards plug into.
///
/// Thread safety: operations that mutate the registry (register, build,
/// create, drop) take an exclusive lock for their brief edges; per-index
/// operations (query, ingest, drain, list) hold the registry lock only
/// long enough to pin the handle's shared_ptr, then serialize on the
/// handle's operation mutex with NO registry lock held — so an ingest
/// stalled on backpressure (unbounded, by design) or a long drain never
/// parks registry writers or unrelated indexes. After acquiring the op
/// mutex they re-check the handle's tombstone flag: a concurrent
/// DropIndex marks the handle building, waits out the in-flight op on
/// that same mutex, and tears down only after it drains.
class Service {
 public:
  static Result<std::unique_ptr<Service>> Create(
      const std::string& root_dir, size_t pool_bytes_per_index = 4ull << 20);

  ~Service();  // Out of line: QueryCache/QuotaEnforcer are incomplete here.

  // ---- JSON-RPC entry point.

  /// Runs `method` with `params_json` (empty = "{}") and returns the
  /// response JSON. Unknown methods and malformed/invalid params fail with
  /// a Status the transport maps through ApiError::FromStatus.
  /// `client_token` is the credential the transport extracted (HTTP:
  /// Authorization: Bearer); when quotas are configured the request is
  /// admitted through the token bucket first (kUnauthenticated -> 401,
  /// kResourceExhausted -> 429) — with no quotas configured the token is
  /// ignored, today's open-door behavior.
  Result<std::string> Dispatch(const std::string& method,
                               const std::string& params_json,
                               const std::string& client_token);
  /// Anonymous-client convenience (token = "").
  Result<std::string> Dispatch(const std::string& method,
                               const std::string& params_json);

  /// Every method name Dispatch understands, sorted.
  static const std::vector<std::string>& Methods();

  // ---- front-door policy (set at startup, before serving traffic).

  /// Turns the exact LRU answer cache on (off by default — opt in). Call
  /// before the service takes concurrent traffic.
  void EnableQueryCache(const QueryCacheOptions& options);

  /// Installs per-client token quotas enforced at the Dispatch boundary.
  /// Call before the service takes concurrent traffic.
  void ConfigureQuotas(const QuotaOptions& options);

  /// Cache and quota counters (zeros with `enabled` false when off).
  ServerStatsResponse ServerStats() const;

  // ---- typed operations (wire-shaped requests).

  Result<RegisterDatasetResponse> RegisterDataset(
      const RegisterDatasetRequest& request);
  Result<BuildIndexReport> BuildIndex(const BuildIndexRequest& request);
  Result<CreateStreamResponse> CreateStream(const CreateStreamRequest& request);
  Result<IngestBatchReport> IngestBatch(const IngestBatchRequest& request);
  Result<DrainStreamReport> DrainStream(const DrainStreamRequest& request);
  Result<QueryReport> Query(const QueryRequest& request);
  /// One result per request, positionally; distinct indexes run in
  /// parallel on a small pool, same-index requests serialize.
  std::vector<Result<QueryReport>> QueryBatch(
      const std::vector<QueryRequest>& requests, size_t threads = 0);
  QueryBatchResponse QueryBatchResponseFor(
      const std::vector<QueryRequest>& requests, size_t threads = 0);
  RecommendResponse Recommend(const Scenario& scenario);
  ListIndexesResponse ListIndexes() const;
  Result<DropIndexResponse> DropIndex(const DropIndexRequest& request);
  Result<DropDatasetResponse> DropDataset(const DropDatasetRequest& request);

  // ---- in-process conveniences (no JSON, no copy of the series data).

  Result<RegisterDatasetResponse> RegisterDataset(
      const std::string& name, const series::SeriesCollection& data,
      const std::vector<int64_t>* timestamps);
  Result<BuildIndexReport> BuildIndex(const std::string& index_name,
                                      const VariantSpec& spec,
                                      const std::string& dataset_name);
  Result<CreateStreamResponse> CreateStream(const std::string& stream_name,
                                            const VariantSpec& spec);
  Result<IngestBatchReport> IngestBatch(
      const std::string& stream_name, const series::SeriesCollection& batch,
      const std::vector<int64_t>& timestamps);
  Result<DrainStreamReport> DrainStream(const std::string& stream_name);
  Result<DropIndexResponse> DropIndex(const std::string& index_name);
  Result<DropDatasetResponse> DropDataset(const std::string& dataset_name);

  /// Direct access for examples/benches (nullptr when absent). The
  /// returned pointers are NOT drop-safe: they outlive the internal
  /// handle pin, so the caller must guarantee no concurrent DropIndex on
  /// that name for as long as the pointer is used — these are in-process
  /// conveniences, not part of the concurrent service contract.
  core::DataSeriesIndex* static_index(const std::string& name);
  stream::StreamingIndex* stream_index(const std::string& name);
  storage::StorageManager* index_storage(const std::string& name);

 private:
  struct Dataset {
    series::SeriesCollection data{0};
    std::vector<int64_t> timestamps;
  };

  struct IndexHandle {
    VariantSpec spec;
    std::unique_ptr<storage::StorageManager> storage;
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<core::RawSeriesStore> raw;
    /// Write-ahead log of an unsharded durable stream (sharded streams
    /// keep one inside each shard instead). Declared before the indexes,
    /// which hold a raw pointer to it: their destructors (draining
    /// background seals that append checkpoints) must run first.
    std::unique_ptr<stream::Wal> wal;
    std::unique_ptr<core::DataSeriesIndex> static_index;
    std::unique_ptr<stream::StreamingIndex> stream_index;
    uint64_t next_series_id = 0;
    /// True when InitHandleStorage found durable on-disk state to recover
    /// instead of clearing the directory. Failure paths preserve the
    /// directory in that case — a failed recovery must never destroy the
    /// only copy of the log it failed to read.
    bool recovered = false;
    double build_seconds = 0.0;
    storage::IoStats build_io;
    /// True while one thread populates (BuildIndex/CreateStream) or tears
    /// down (DropIndex/TeardownHandle) the handle outside the registry
    /// lock. A building handle only reserves its name: lookups
    /// (FindHandle, ListIndexes) skip it and DropIndex refuses it, so its
    /// fields are touched by the owning thread alone. Atomic because ops
    /// re-read it under op_mutex (no registry lock) after DropIndex may
    /// have tombstoned it under mu_ exclusive; the mutex hand-offs order
    /// the member teardown, the atomic just keeps the flag race-free.
    std::atomic<bool> building{false};
    /// Serializes ingest/drain/query on this index (buffer pool, tracker
    /// and counters are single-threaded per index, as in QueryBatch).
    std::mutex op_mutex;
  };

  // Out of line (like ~Service): an inline body would instantiate the
  // unique_ptr deleters of the still-incomplete front-door types.
  Service(std::string root_dir, size_t pool_bytes);

  /// Registry mutation; caller holds mu_ exclusively. Inserts a
  /// tombstoned (building) handle that only reserves the name — no
  /// filesystem work happens under the lock; the caller follows up with
  /// InitHandleStorage outside it.
  Result<IndexHandle*> ReserveHandle(const std::string& index_name,
                                     const VariantSpec& spec);
  /// Creates the reserved handle's storage manager, buffer pool and raw
  /// store (mkdir + clearing any leftover directory — potentially slow
  /// I/O). No lock held: the tombstoned handle belongs to this thread.
  /// On failure the caller must TeardownHandle.
  Status InitHandleStorage(const std::string& index_name,
                           IndexHandle* handle);
  /// Tears a tombstoned handle down (flushing destructors, directory
  /// remove_all) outside the registry lock, then takes mu_ exclusively to
  /// unregister the name. Caller must have set handle->building under the
  /// exclusive lock (so this thread owns the handle and the name stays
  /// reserved throughout) and must NOT hold mu_. Returns the remove_all
  /// error, if any.
  std::error_code TeardownHandle(const std::string& name,
                                 IndexHandle* handle);
  /// The fallible tail of BuildIndex; on error the caller discards the
  /// handle. Needs no lock: the caller pins the dataset snapshot via its
  /// shared_ptr and the building handle is invisible to other threads.
  Result<BuildIndexReport> BuildIndexOnHandle(const std::string& index_name,
                                              const VariantSpec& spec,
                                              const std::string& dataset_name,
                                              const Dataset& dataset,
                                              IndexHandle* handle);
  /// Registry lookup; caller holds mu_ (shared is enough). The returned
  /// shared_ptr pins the handle so ops can release mu_ and still outlive
  /// a concurrent DropIndex (which waits on op_mutex and leaves the
  /// object alive until every pin drops).
  std::shared_ptr<IndexHandle> FindHandle(const std::string& name) const;

  /// Pin a live (non-building) handle: one brief shared hold of mu_.
  std::shared_ptr<IndexHandle> PinHandle(const std::string& name) const;

  Result<QueryReport> QueryLocked(const QueryRequest& request,
                                  IndexHandle* handle);

  /// The handle's current snapshot-version stamp (static or streaming).
  static uint64_t IndexVersion(const IndexHandle& handle);

  /// Runs one QueryBatch group (all requests target the same index name).
  /// Exact static-index requests with matching search options are bucketed
  /// and answered through DataSeriesIndex::ExactSearchBatch — one shared
  /// scan through the batched distance kernels; everything else falls back
  /// to the per-request Query path. Writes results[ordinal] for every
  /// ordinal in the group.
  void QueryGroup(const std::vector<QueryRequest>& requests,
                  const std::vector<size_t>& ordinals,
                  std::vector<Result<QueryReport>>* results);
  /// One shared-scan bucket (>= 2 requests, identical window and
  /// approx_candidates, validated, exact, non-heatmap, static index).
  void QueryBatched(const std::vector<QueryRequest>& requests,
                    const std::vector<size_t>& ordinals, IndexHandle* handle,
                    std::vector<Result<QueryReport>>* results);

  std::string root_dir_;
  size_t pool_bytes_;
  /// Guards the two registries. Exclusive: register/drop edges and the
  /// brief reserve/publish edges of build/create. Shared: only the
  /// handle-pinning lookup of ingest/drain/query/list — the per-index
  /// work itself runs under the handle's op_mutex with no registry lock
  /// (handles are shared_ptr-pinned), so neither a long build, a long
  /// drain, nor a backpressure-stalled ingest ever parks the registry.
  mutable std::shared_mutex mu_;
  /// Values are shared_ptr-to-const so an in-flight build can pin its
  /// dataset snapshot and run without the registry lock; DropDataset
  /// erases the entry but the data outlives it for the build.
  std::map<std::string, std::shared_ptr<const Dataset>> datasets_;
  /// shared_ptr so an op can pin a handle across its (registry-lock-free)
  /// work while DropIndex concurrently erases the map entry.
  std::map<std::string, std::shared_ptr<IndexHandle>> indexes_;

  /// Front-door policy objects; null = feature off. Installed once at
  /// startup (EnableQueryCache/ConfigureQuotas), internally thread-safe
  /// afterwards, so ops read the pointers without the registry lock.
  std::unique_ptr<QueryCache> query_cache_;
  std::unique_ptr<QuotaEnforcer> quota_;
};

}  // namespace api
}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_API_H_
