#include "palm/query_cache.h"

#include <cstring>

namespace coconut {
namespace palm {
namespace api {

namespace {

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

}  // namespace

QueryCache::QueryCache(const QueryCacheOptions& options) : options_(options) {}

bool QueryCache::Cacheable(const QueryRequest& request) {
  // Heatmap responses embed the page-access pattern of the specific run
  // that produced them; replaying one would misreport I/O behaviour.
  return !request.capture_heatmap;
}

std::string QueryCache::KeyFor(const QueryRequest& request) {
  std::string key;
  key.reserve(request.index.size() + 32 + request.query.size() * sizeof(float));
  // Length-prefix the name so "ab"+flags can never collide with "a"+"b...".
  AppendPod(&key, static_cast<uint64_t>(request.index.size()));
  key += request.index;
  AppendPod(&key, static_cast<uint8_t>(request.exact ? 1 : 0));
  AppendPod(&key, static_cast<int64_t>(request.approx_candidates));
  AppendPod(&key, static_cast<uint8_t>(request.window.has_value() ? 1 : 0));
  if (request.window.has_value()) {
    AppendPod(&key, request.window->begin);
    AppendPod(&key, request.window->end);
  }
  // Raw bit patterns: exactness means byte equality, not float equality.
  if (!request.query.empty()) {
    AppendRaw(&key, request.query.data(),
              request.query.size() * sizeof(float));
  }
  return key;
}

size_t QueryCache::ChargeOf(const Entry& entry) const {
  // Dominant terms only; the fixed part covers the report struct and the
  // list/map bookkeeping. Heatmap reports are excluded by Cacheable, so
  // the report's variable-size members are empty.
  return entry.key.size() + entry.index.size() + sizeof(Entry) + 128;
}

void QueryCache::EraseLocked(std::list<Entry>::iterator it) {
  bytes_ -= it->charge;
  map_.erase(it->key);
  lru_.erase(it);
}

std::optional<QueryReport> QueryCache::Lookup(const std::string& key,
                                              uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->version != version) {
    // Superseded: the index moved on. Drop it so the slot is reusable.
    ++stats_.stale_drops;
    ++stats_.misses;
    EraseLocked(it->second);
    return std::nullopt;
  }
  ++stats_.hits;
  if (!it->second->report.found) ++stats_.negative_hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->report;
}

void QueryCache::Insert(const std::string& key, const std::string& index,
                        uint64_t version, const QueryReport& report) {
  // Not-found answers are only cached when the operator opted in; the
  // positive-path behavior is unchanged either way.
  if (!report.found && !options_.cache_negative_results) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) EraseLocked(it->second);

  Entry entry;
  entry.key = key;
  entry.index = index;
  entry.version = version;
  entry.report = report;
  entry.charge = ChargeOf(entry);
  if (entry.charge > options_.max_bytes || options_.max_entries == 0) return;

  lru_.push_front(std::move(entry));
  map_.emplace(lru_.front().key, lru_.begin());
  bytes_ += lru_.front().charge;
  ++stats_.inserts;
  if (!report.found) ++stats_.negative_inserts;

  while (lru_.size() > options_.max_entries || bytes_ > options_.max_bytes) {
    ++stats_.evictions;
    EraseLocked(std::prev(lru_.end()));
  }
}

void QueryCache::InvalidateIndex(const std::string& index) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto next = std::next(it);
    if (it->index == index) {
      ++stats_.invalidations;
      EraseLocked(it);
    }
    it = next;
  }
}

QueryCacheStats QueryCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryCacheStats stats = stats_;
  stats.entries = lru_.size();
  stats.bytes = bytes_;
  return stats;
}

}  // namespace api
}  // namespace palm
}  // namespace coconut
