#include "palm/factory.h"

#include "core/adapters.h"
#include "palm/sharded_index.h"
#include "palm/sharded_streaming_index.h"
#include "stream/btp.h"
#include "stream/pp.h"
#include "stream/tp.h"

namespace coconut {
namespace palm {

namespace {

std::string FamilyName(const VariantSpec& spec) {
  switch (spec.family) {
    case IndexFamily::kAds:
      return spec.materialized ? "ADSFull" : "ADS+";
    case IndexFamily::kCTree:
      return spec.materialized ? "CTreeFull" : "CTree";
    case IndexFamily::kClsm:
      return spec.materialized ? "CLSMFull" : "CLSM";
  }
  return "?";
}

// ADS+'s in-memory budget in entries, derived from the byte budget.
size_t AdsBufferEntries(const VariantSpec& spec) {
  const size_t record = sizeof(core::IndexEntry) +
                        (spec.materialized
                             ? spec.sax.series_length * sizeof(float)
                             : 0);
  return std::max<size_t>(64, spec.memory_budget_bytes / record);
}

Result<std::unique_ptr<core::DataSeriesIndex>> MakeInner(
    const VariantSpec& spec, storage::StorageManager* storage,
    const std::string& name, storage::BufferPool* pool,
    core::RawSeriesStore* raw, ThreadPool* clsm_background = nullptr) {
  switch (spec.family) {
    case IndexFamily::kAds: {
      ads::AdsIndex::Options opts;
      opts.sax = spec.sax;
      opts.materialized = spec.materialized;
      opts.leaf_capacity = spec.ads_leaf_capacity;
      opts.global_buffer_entries = AdsBufferEntries(spec);
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<core::AdsIndexAdapter> adapter,
          core::AdsIndexAdapter::Create(storage, name, opts, raw));
      return std::unique_ptr<core::DataSeriesIndex>(std::move(adapter));
    }
    case IndexFamily::kCTree: {
      ctree::CTree::Options opts;
      opts.sax = spec.sax;
      opts.materialized = spec.materialized;
      opts.fill_factor = spec.fill_factor;
      opts.sort_memory_bytes = spec.memory_budget_bytes;
      opts.sort_threads = spec.construction_threads;
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<core::CTreeIndexAdapter> adapter,
          core::CTreeIndexAdapter::Create(storage, name, opts, pool, raw));
      return std::unique_ptr<core::DataSeriesIndex>(std::move(adapter));
    }
    case IndexFamily::kClsm: {
      clsm::Clsm::Options opts;
      opts.sax = spec.sax;
      opts.materialized = spec.materialized;
      opts.growth_factor = spec.growth_factor;
      opts.buffer_entries = spec.buffer_entries;
      opts.background = clsm_background;
      opts.max_inflight_seals = spec.max_inflight_seals;
      opts.backpressure = spec.backpressure_policy;
      opts.seal_test_hook = spec.seal_test_hook;
      opts.wal = spec.wal;
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<core::ClsmIndexAdapter> adapter,
          core::ClsmIndexAdapter::Create(storage, name, opts, pool, raw));
      return std::unique_ptr<core::DataSeriesIndex>(std::move(adapter));
    }
  }
  return Status::InvalidArgument("unknown index family");
}

}  // namespace

std::string VariantName(const VariantSpec& spec) {
  std::string name = FamilyName(spec);
  switch (spec.mode) {
    case StreamMode::kStatic:
      break;
    case StreamMode::kPP:
      name += "-PP";
      break;
    case StreamMode::kTP:
      name += "-TP";
      break;
    case StreamMode::kBTP:
      name += "-BTP";
      break;
  }
  if (spec.num_shards > 1) {
    name += "-S" + std::to_string(spec.num_shards);
  }
  if (spec.async_ingest) {
    name += "-async";
  }
  if (spec.durable) {
    name += "-wal";
  }
  return name;
}

bool SpecIsValid(const VariantSpec& spec, std::string* why) {
  if (!spec.sax.Valid()) {
    if (why != nullptr) *why = "invalid SaxConfig";
    return false;
  }
  if (spec.mode == StreamMode::kBTP && spec.family != IndexFamily::kClsm) {
    if (why != nullptr) {
      *why = "BTP requires sort-merged partitions; only the Coconut LSM "
             "variant supports it (Figure 1)";
    }
    return false;
  }
  if (spec.mode == StreamMode::kTP && spec.family == IndexFamily::kClsm) {
    if (why != nullptr) {
      *why = "CLSM already merges log-structured runs; plain TP applies to "
             "ADS+ and CTree partitions (Figure 1)";
    }
    return false;
  }
  if (spec.num_shards == 0) {
    if (why != nullptr) *why = "num_shards must be >= 1";
    return false;
  }
  if (spec.num_shards > 1 && spec.mode != StreamMode::kStatic &&
      !spec.async_ingest) {
    if (why != nullptr) {
      *why = "sharded streaming requires async_ingest: each shard's "
             "seal/merge cascades run on their own strand, and a "
             "synchronous per-shard seal inside Ingest would serialize "
             "the shards again";
    }
    return false;
  }
  if (spec.async_ingest) {
    if (spec.mode == StreamMode::kStatic) {
      if (why != nullptr) {
        *why = "async_ingest is a streaming knob; static builds already "
               "parallelize construction";
      }
      return false;
    }
    if (spec.mode == StreamMode::kTP && spec.family == IndexFamily::kAds) {
      if (why != nullptr) {
        *why = "async ingestion requires sorted buffered partitions; a live "
               "ADS+ tree cannot be sealed behind ingestion's back";
      }
      return false;
    }
    if (spec.mode == StreamMode::kPP && spec.family != IndexFamily::kClsm) {
      if (why != nullptr) {
        *why = "async PP needs a buffering inner index; ADS+/CTree-PP "
               "insert straight into the structure (only CLSM-PP buffers)";
      }
      return false;
    }
  }
  if (spec.durable) {
    if (spec.mode == StreamMode::kStatic) {
      if (why != nullptr) {
        *why = "durability is a streaming knob; a static build has no "
               "stream of acknowledgements to protect";
      }
      return false;
    }
    if (spec.family == IndexFamily::kAds) {
      if (why != nullptr) {
        *why = "durability requires checkpointable sorted partitions; an "
               "ADS+ tree has no manifest to restore (use CTree-TP, "
               "CLSM-BTP or CLSM-PP)";
      }
      return false;
    }
    if (spec.mode == StreamMode::kPP && spec.family != IndexFamily::kClsm) {
      if (why != nullptr) {
        *why = "durable PP needs a buffering inner index with a "
               "checkpointable run set (only CLSM-PP qualifies)";
      }
      return false;
    }
  }
  return true;
}

Result<std::unique_ptr<core::DataSeriesIndex>> CreateStaticIndex(
    const VariantSpec& spec, storage::StorageManager* storage,
    const std::string& name, storage::BufferPool* pool,
    core::RawSeriesStore* raw) {
  std::string why;
  if (!SpecIsValid(spec, &why)) return Status::InvalidArgument(why);
  if (spec.mode != StreamMode::kStatic) {
    return Status::InvalidArgument(
        "CreateStaticIndex called with a streaming mode");
  }
  if (spec.num_shards > 1) {
    // The sharded wrapper owns a full stack per shard (storage, pool, raw
    // store) under the given manager's directory; the passed-in pool and
    // raw store serve the unsharded path only.
    ShardedIndex::Options opts;
    opts.spec = spec;
    opts.num_shards = spec.num_shards;
    opts.build_threads = spec.shard_build_threads;
    opts.query_threads = spec.shard_query_threads;
    if (pool != nullptr) {
      // Split the caller's cache budget across shards so the aggregate
      // page cache matches the unsharded configuration — otherwise a
      // shard sweep would conflate shard speedup with extra cache.
      opts.pool_bytes_per_shard = std::max<size_t>(
          storage::kPageSize,
          pool->capacity_pages() * storage::kPageSize / spec.num_shards);
    }
    COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<ShardedIndex> sharded,
                             ShardedIndex::Create(storage, name, opts));
    return std::unique_ptr<core::DataSeriesIndex>(std::move(sharded));
  }
  return MakeInner(spec, storage, name, pool, raw);
}

Result<std::unique_ptr<stream::StreamingIndex>> CreateStreamingIndex(
    const VariantSpec& spec, storage::StorageManager* storage,
    const std::string& name, storage::BufferPool* pool,
    core::RawSeriesStore* raw) {
  std::string why;
  if (!SpecIsValid(spec, &why)) return Status::InvalidArgument(why);
  if (spec.num_shards > 1) {
    // Key-range sharding of the live stream: the wrapper owns a full
    // stack per shard (storage, pool, raw store) under the given
    // manager's directory, exactly like the static ShardedIndex.
    ShardedStreamingIndex::Options opts;
    opts.spec = spec;
    opts.num_shards = spec.num_shards;
    opts.query_threads = spec.shard_query_threads;
    if (pool != nullptr) {
      opts.pool_bytes_per_shard = std::max<size_t>(
          storage::kPageSize,
          pool->capacity_pages() * storage::kPageSize / spec.num_shards);
    }
    // A durable sharded stream whose per-shard logs survive on disk is
    // recovered, not re-created (create would clear the shard
    // directories). The api layer preserves the handle directory for
    // exactly this case.
    const bool recover =
        spec.durable && ShardedStreamingIndex::HasDurableState(storage, name);
    COCONUT_ASSIGN_OR_RETURN(
        std::unique_ptr<ShardedStreamingIndex> sharded,
        recover ? ShardedStreamingIndex::Recover(storage, name, opts)
                : ShardedStreamingIndex::Create(storage, name, opts));
    return std::unique_ptr<stream::StreamingIndex>(std::move(sharded));
  }
  // Deferred seals/flushes/merges ride the caller's pool or the
  // process-wide shared one; each index serializes its own work on a
  // strand, so many streams can share a bounded worker set.
  ThreadPool* background =
      spec.async_ingest ? (spec.background_pool != nullptr
                               ? spec.background_pool
                               : SharedBackgroundPool())
                        : nullptr;
  switch (spec.mode) {
    case StreamMode::kStatic:
      return Status::InvalidArgument(
          "CreateStreamingIndex called with kStatic mode");
    case StreamMode::kPP: {
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<core::DataSeriesIndex> inner,
          MakeInner(spec, storage, name, pool, raw, background));
      // PP over CTree inserts top-down into the B-tree: finalize the empty
      // bulk build up front so Ingest takes the insert path.
      if (spec.family == IndexFamily::kCTree) {
        COCONUT_RETURN_NOT_OK(inner->Finalize());
      }
      clsm::Clsm* lsm = nullptr;
      if (auto* adapter = dynamic_cast<core::ClsmIndexAdapter*>(inner.get());
          adapter != nullptr) {
        lsm = adapter->lsm();
      }
      auto pp = std::make_unique<stream::PostProcessingIndex>(
          std::move(inner), spec.timestamp_policy);
      if (lsm != nullptr) {
        pp->set_stats_provider([lsm] { return lsm->SnapshotStats(); });
        // Durability plumbing: the checkpoint manifest is CLSM's run set,
        // so the facade's restore forwards straight to the tree.
        pp->set_manifest_restorer([lsm](std::span<const uint8_t> manifest) {
          return lsm->RestoreFromManifest(manifest);
        });
        // Async CLSM serves queries from epoch-published snapshots, so the
        // service may fan reads out without the per-handle op lock.
        pp->set_concurrent_reads_safe(lsm->async());
      }
      pp->set_wal(spec.wal);
      return std::unique_ptr<stream::StreamingIndex>(std::move(pp));
    }
    case StreamMode::kTP: {
      stream::TemporalPartitioningIndex::Options opts;
      opts.sax = spec.sax;
      opts.materialized = spec.materialized;
      opts.backend = spec.family == IndexFamily::kAds
                         ? stream::PartitionBackend::kAds
                         : stream::PartitionBackend::kSeqTable;
      opts.buffer_entries = spec.buffer_entries;
      opts.ads_leaf_capacity = spec.ads_leaf_capacity;
      opts.timestamp_policy = spec.timestamp_policy;
      opts.background = background;
      opts.max_inflight_seals = spec.max_inflight_seals;
      opts.backpressure = spec.backpressure_policy;
      opts.seal_test_hook = spec.seal_test_hook;
      opts.wal = spec.wal;
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<stream::TemporalPartitioningIndex> tp,
          stream::TemporalPartitioningIndex::Create(storage, name, opts, pool,
                                                    raw));
      return std::unique_ptr<stream::StreamingIndex>(std::move(tp));
    }
    case StreamMode::kBTP: {
      stream::BoundedTemporalPartitioningIndex::BtpOptions opts;
      opts.sax = spec.sax;
      opts.materialized = spec.materialized;
      opts.buffer_entries = spec.buffer_entries;
      opts.merge_k = spec.btp_merge_k;
      opts.timestamp_policy = spec.timestamp_policy;
      opts.background = background;
      opts.max_inflight_seals = spec.max_inflight_seals;
      opts.backpressure = spec.backpressure_policy;
      opts.seal_test_hook = spec.seal_test_hook;
      opts.wal = spec.wal;
      COCONUT_ASSIGN_OR_RETURN(
          std::unique_ptr<stream::BoundedTemporalPartitioningIndex> btp,
          stream::BoundedTemporalPartitioningIndex::Create(storage, name,
                                                           opts, pool, raw));
      return std::unique_ptr<stream::StreamingIndex>(std::move(btp));
    }
  }
  return Status::InvalidArgument("unknown stream mode");
}

}  // namespace palm
}  // namespace coconut
