#ifndef COCONUT_PALM_HTTP_SERVER_H_
#define COCONUT_PALM_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "palm/api.h"

namespace coconut {
namespace palm {

/// One API request as seen by the transport: the /api/v1/<method> suffix,
/// the raw body bytes, the Content-Type the client declared (empty when
/// absent — treated as JSON), and the bearer credential.
struct HttpRequestInfo {
  std::string method;
  std::string body;
  std::string content_type;
  std::string client_token;
};

/// Seam between the HTTP transport and whatever answers API calls. The
/// canonical implementation forwards to api::Service::Dispatch; the
/// distributed coordinator and shard endpoints implement it directly so
/// they can negotiate non-JSON bodies by Content-Type. Implementations
/// must be thread-safe: every server worker calls Dispatch concurrently.
/// The returned string is always a JSON response body; failures map to
/// HTTP codes through api::StatusCodeToHttpStatus.
class HttpDispatcher {
 public:
  virtual ~HttpDispatcher() = default;
  virtual Result<std::string> Dispatch(const HttpRequestInfo& request) = 0;
};

struct HttpServerOptions {
  /// Interface to bind; the demo backend is loopback-only by default.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
  uint16_t port = 0;
  /// Worker threads. Each worker owns one connection at a time (keep-alive
  /// included), so this is also the concurrent-connection budget.
  size_t threads = 4;
  /// Largest accepted request body (dataset registrations are the big
  /// ones); beyond it the connection gets 413 and is closed.
  size_t max_body_bytes = 64ull << 20;
  /// An idle keep-alive connection is closed after this long.
  int keep_alive_timeout_ms = 5000;
};

/// Minimal embedded HTTP/1.1 server putting a real wire behind the typed
/// service layer — the REST backend of the paper's Figure 1, and the seam
/// future distributed shards plug into.
///
///   POST /api/v1/<method>   body = request JSON  ->  response JSON
///   GET  /healthz                                ->  {"ok":true}
///
/// <method> is any api::Service::Methods() name; the body goes straight
/// into Service::Dispatch and failures map to HTTP codes through
/// api::StatusCodeToHttpStatus with an ApiError JSON body. Supports
/// keep-alive with Content-Length framing (no chunked encoding — requests
/// carrying Transfer-Encoding are rejected with 501).
///
/// Threading: one acceptor thread hands connections to a fixed worker
/// pool; concurrency control for the service itself lives in
/// api::Service (registry lock + per-index operation mutexes). Stop() is
/// graceful: stops accepting, lets in-flight requests finish, joins every
/// thread; the destructor calls it.
class HttpServer {
 public:
  /// Binds, listens and starts the acceptor + workers. On success the
  /// server is live; port() reports the actual port (useful with port 0).
  static Result<std::unique_ptr<HttpServer>> Start(
      api::Service* service, const HttpServerOptions& options = {});

  /// Same, but serving an arbitrary dispatcher (coordinator, shard
  /// endpoint). The dispatcher must outlive the server.
  static Result<std::unique_ptr<HttpServer>> Start(
      HttpDispatcher* dispatcher, const HttpServerOptions& options = {});

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Graceful shutdown; idempotent. Returns after every thread joined.
  void Stop();

  uint16_t port() const { return port_; }
  const std::string& address() const { return options_.bind_address; }

 private:
  HttpServer(HttpDispatcher* dispatcher, HttpServerOptions options)
      : dispatcher_(dispatcher), options_(std::move(options)) {}

  Status Listen();
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);

  HttpDispatcher* dispatcher_;
  /// Keeps the Service->HttpDispatcher adapter alive for the
  /// Start(api::Service*) convenience overload.
  std::unique_ptr<HttpDispatcher> owned_dispatcher_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_connections_;
  /// Serializes Stop() against the destructor.
  std::mutex stop_mutex_;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_HTTP_SERVER_H_
