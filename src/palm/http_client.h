#ifndef COCONUT_PALM_HTTP_CLIENT_H_
#define COCONUT_PALM_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace coconut {
namespace palm {

/// One parsed HTTP response.
struct HttpClientResponse {
  int status = 0;
  std::string body;
  /// True when the server asked for (or the protocol implies) connection
  /// close; the client tears the socket down and reconnects lazily.
  bool connection_close = false;
};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection —
/// just enough wire for talking to palm::HttpServer from the load
/// generator and the front-door tests. Not thread-safe: one instance per
/// thread. Reconnects transparently when the server closes the
/// connection between requests (keep-alive churn), but a failure
/// mid-response surfaces as an error.
class BlockingHttpClient {
 public:
  BlockingHttpClient(std::string host, uint16_t port);
  ~BlockingHttpClient();

  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;

  /// POST `body` to `target` with optional extra headers (e.g.
  /// {"Authorization", "Bearer alice"}). Non-2xx statuses are returned,
  /// not errors — only transport failures produce a bad Status.
  Result<HttpClientResponse> Post(
      const std::string& target, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  void Close();

 private:
  Status EnsureConnected();
  Status SendAll(const std::string& data);
  Result<HttpClientResponse> ReadResponse();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  /// Bytes received past the previous response (keep-alive pipelining
  /// slack) — consumed before touching the socket again.
  std::string buffer_;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_HTTP_CLIENT_H_
