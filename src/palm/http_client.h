#ifndef COCONUT_PALM_HTTP_CLIENT_H_
#define COCONUT_PALM_HTTP_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace coconut {
namespace palm {

/// One parsed HTTP response.
struct HttpClientResponse {
  int status = 0;
  std::string body;
  /// True when the server asked for (or the protocol implies) connection
  /// close; the client tears the socket down and reconnects lazily.
  bool connection_close = false;
};

struct BlockingHttpClientOptions {
  /// Bound on establishing the TCP connection; 0 = no bound (blocking
  /// connect). Expiry surfaces as StatusCode::kUnavailable.
  int connect_timeout_ms = 0;
  /// Bound on one whole Post() round trip (send + response), measured
  /// from the call; 0 = no bound. Expiry surfaces as
  /// StatusCode::kUnavailable with a "timed out" message, and is never
  /// retried internally — the server may still be processing the
  /// request, so blind resends are the caller's decision.
  int request_timeout_ms = 0;
};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection —
/// just enough wire for talking to palm::HttpServer from the load
/// generator and the front-door tests. Not thread-safe: one instance per
/// thread. Reconnects transparently when the server closes the
/// connection between requests (keep-alive churn), but a failure
/// mid-response surfaces as an error.
class BlockingHttpClient {
 public:
  BlockingHttpClient(std::string host, uint16_t port,
                     BlockingHttpClientOptions options = {});
  ~BlockingHttpClient();

  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;

  /// POST `body` to `target` with optional extra headers (e.g.
  /// {"Authorization", "Bearer alice"}). Non-2xx statuses are returned,
  /// not errors — only transport failures produce a bad Status.
  Result<HttpClientResponse> Post(
      const std::string& target, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  void Close();

 private:
  Status EnsureConnected();
  Status SendAll(const std::string& data);
  Result<HttpClientResponse> ReadResponse();
  /// Remaining budget before deadline_, or -1 when no deadline is armed.
  /// 0 means expired.
  int RemainingMs() const;
  /// Arms SO_RCVTIMEO/SO_SNDTIMEO to the remaining budget (no-op without
  /// a deadline); returns Unavailable once the budget is spent.
  Status ArmSocketDeadline(int optname);

  std::string host_;
  uint16_t port_;
  BlockingHttpClientOptions client_options_;
  /// Absolute deadline for the in-flight Post (valid when
  /// request_timeout_ms > 0).
  std::chrono::steady_clock::time_point deadline_{};
  bool deadline_armed_ = false;
  int fd_ = -1;
  /// Bytes received past the previous response (keep-alive pipelining
  /// slack) — consumed before touching the socket again.
  std::string buffer_;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_HTTP_CLIENT_H_
