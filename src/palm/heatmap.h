#ifndef COCONUT_PALM_HEATMAP_H_
#define COCONUT_PALM_HEATMAP_H_

#include <span>
#include <string>
#include <vector>

#include "common/json.h"
#include "storage/access_tracker.h"

namespace coconut {
namespace palm {

/// A query's page-access pattern binned over time (rows) and storage
/// location (columns) — the heat map of Figure 2 that the demo uses to
/// attribute CTree's speed to friendly I/O. Storage locations concatenate
/// the pages of every touched file into one axis (per-file bands ordered
/// by file id), so an ADS+ query shows up as scatter across many bands
/// while a CTree scan is one advancing diagonal.
struct HeatMap {
  size_t time_bins = 0;
  size_t location_bins = 0;
  /// Row-major [time][location] access counts.
  std::vector<uint32_t> counts;
  uint32_t max_count = 0;
  uint64_t total_events = 0;
  /// Number of distinct (file, page) cells touched.
  uint64_t distinct_pages = 0;
  /// Number of distinct files touched.
  uint64_t distinct_files = 0;

  uint32_t at(size_t t, size_t l) const {
    return counts[t * location_bins + l];
  }
};

/// Bins `events` into a time_bins x location_bins heat map.
HeatMap BuildHeatMap(std::span<const storage::AccessEvent> events,
                     size_t time_bins, size_t location_bins);

/// Fraction of consecutive accesses that land on the same or the next page
/// of the same file — 1.0 for a pure sequential scan, ~0 for random hops.
/// The single number the demo's narrative boils the heat map down to.
double AccessLocality(std::span<const storage::AccessEvent> events);

/// Renders the map as text (one row per time bin, density glyphs " .:-=+*#%@").
std::string RenderHeatMapText(const HeatMap& map);

/// Serializes the map for the GUI client.
void HeatMapToJson(const HeatMap& map, JsonWriter* writer);

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_HEATMAP_H_
