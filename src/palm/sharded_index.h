#ifndef COCONUT_PALM_SHARDED_INDEX_H_
#define COCONUT_PALM_SHARDED_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/index.h"
#include "core/raw_store.h"
#include "palm/factory.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace palm {

/// One logical index split by invSAX key range across K shards, each a
/// full, independent index stack: its own StorageManager (a subdirectory
/// of the parent's working directory), BufferPool, RawSeriesStore and
/// inner DataSeriesIndex of the wrapped variant.
///
/// Routing: a series' interleaved sortable key is computed once at insert
/// and mapped to a shard by a contiguous, monotone split of the key space —
/// shard boundaries are key-range boundaries, exactly the "split the
/// sorted order at arbitrary keys" property Coconut's sortable
/// summarizations buy. Every series lands in exactly one shard, so the
/// shards partition the dataset.
///
/// Queries scatter-gather: each shard answers over its partition (shards
/// prune with their own summarizations as usual) and the gather keeps the
/// closest candidate, tie-broken by global series id. Because the shards
/// cover the dataset disjointly and each per-shard search is exact over
/// its shard, the gathered minimum distance equals the unsharded exact
/// answer — the equivalence sharded_oracle_test pins against brute force.
/// The one permitted divergence: when two series sit at *exactly* equal
/// distance, the gather deterministically returns the smaller global id,
/// while an unsharded traversal keeps whichever it encountered first.
///
/// Threading: Insert/Finalize are single-caller (the build path).
/// ExactSearch/ApproxSearch are safe for concurrent callers: shard fan-out
/// runs on an internal pool and each shard's inner index — whose buffer
/// pool and tracker are single-threaded by contract — is serialized behind
/// a per-shard mutex. Distinct shards proceed in parallel.
class ShardedIndex : public core::DataSeriesIndex {
 public:
  struct Options {
    /// The per-shard variant. num_shards inside this spec is ignored (the
    /// wrapper owns sharding); the sort memory budget is divided across
    /// shards so concurrent shard builds respect the configured total.
    VariantSpec spec;
    size_t num_shards = 2;
    /// Threads finalizing shards concurrently (0 = one per shard).
    size_t build_threads = 0;
    /// Threads fanning queries across shards (0 = one per shard, cap 8).
    size_t query_threads = 0;
    /// Per-shard buffer pool budget.
    size_t pool_bytes_per_shard = 4ull << 20;
  };

  /// Creates K empty shards under `root->directory()/name_shardN`.
  static Result<std::unique_ptr<ShardedIndex>> Create(
      storage::StorageManager* root, const std::string& name,
      const Options& options);

  // --- core::DataSeriesIndex ---
  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override;
  Status Finalize() override;
  Result<core::SearchResult> ApproxSearch(std::span<const float> query,
                                          const core::SearchOptions& options,
                                          core::QueryCounters* counters)
      override;
  Result<core::SearchResult> ExactSearch(std::span<const float> query,
                                         const core::SearchOptions& options,
                                         core::QueryCounters* counters)
      override;
  /// Batched scatter-gather: each shard answers the whole batch in one
  /// pass (its inner index's ExactSearchBatch — a shared leaf-level scan
  /// through the batched distance kernels for CTree shards), then the
  /// per-query gather keeps the closest candidate with the usual
  /// smaller-global-id tie-break. Exactness argument is per query, as for
  /// ExactSearch.
  Status ExactSearchBatch(std::span<const std::span<const float>> queries,
                          const core::SearchOptions& options,
                          std::span<core::SearchResult> results,
                          std::span<core::QueryCounters> counters) override;
  uint64_t num_entries() const override;
  uint64_t index_bytes() const override;
  std::string describe() const override;

  /// Wrapper-level mutations plus the sum of per-shard inner stamps — a
  /// monotone sum (every term only grows), so equal reads bracketing a
  /// query still prove no shard changed in between.
  uint64_t snapshot_version() const override;

  size_t num_shards() const { return shards_.size(); }

  /// The shard a series with these (z-normalized) values routes to —
  /// exposed so tests can construct queries that straddle boundaries.
  size_t ShardOf(std::span<const float> znorm_values) const;

  /// Entries resident in one shard (balance inspection).
  uint64_t shard_entries(size_t shard) const;

  /// Sum of every shard's I/O counters. Read from quiescent sections; the
  /// per-shard counters themselves are internally thread-safe.
  storage::IoStats AggregateIoStats() const;

  /// Aggregate buffer-pool hit/miss counters across shards.
  void PoolCounters(uint64_t* hits, uint64_t* misses) const;

 private:
  struct Shard {
    std::unique_ptr<storage::StorageManager> storage;
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<core::RawSeriesStore> raw;
    std::unique_ptr<core::DataSeriesIndex> index;
    /// Shard-local raw-store ordinal -> global series id.
    std::vector<uint64_t> local_to_global;
    /// Serializes queries into this shard (inner query state is
    /// single-threaded by contract).
    std::mutex query_mu;
  };

  explicit ShardedIndex(Options options) : options_(std::move(options)) {}

  Result<core::SearchResult> ScatterSearch(std::span<const float> query,
                                           const core::SearchOptions& options,
                                           core::QueryCounters* counters,
                                           bool exact);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<ThreadPool> query_pool_;  // Null when fan-out is serial.
  bool finalized_ = false;
};

}  // namespace palm
}  // namespace coconut

#endif  // COCONUT_PALM_SHARDED_INDEX_H_
