#include "palm/sharded_streaming_index.h"

#include <algorithm>

#include "palm/shard_route.h"

namespace coconut {
namespace palm {

ShardedStreamingIndex::~ShardedStreamingIndex() = default;

Result<std::unique_ptr<ShardedStreamingIndex>> ShardedStreamingIndex::Create(
    storage::StorageManager* root, const std::string& name,
    const Options& options) {
  return Build(root, name, options, /*recover=*/false);
}

Result<std::unique_ptr<ShardedStreamingIndex>> ShardedStreamingIndex::Recover(
    storage::StorageManager* root, const std::string& name,
    const Options& options) {
  if (!options.spec.durable) {
    return Status::InvalidArgument(
        "Recover requires a durable spec (a non-durable stream leaves no "
        "logs to recover from)");
  }
  return Build(root, name, options, /*recover=*/true);
}

Result<std::unique_ptr<ShardedStreamingIndex>> ShardedStreamingIndex::Build(
    storage::StorageManager* root, const std::string& name,
    const Options& options, bool recover) {
  if (root == nullptr) {
    return Status::InvalidArgument("root storage manager is required");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.spec.mode == StreamMode::kStatic) {
    return Status::InvalidArgument(
        "ShardedStreamingIndex wraps streaming variants; use ShardedIndex "
        "for static specs");
  }
  if (!options.spec.async_ingest) {
    return Status::InvalidArgument(
        "sharded streaming requires async_ingest (per-shard strands)");
  }
  auto sharded =
      std::unique_ptr<ShardedStreamingIndex>(new ShardedStreamingIndex(
          options));

  // Each shard is a complete async streaming stack of the wrapped variant;
  // all shards share one background pool (explicit or the process-wide
  // default) but serialize their own cascades on per-shard strands.
  VariantSpec shard_spec = options.spec;
  shard_spec.num_shards = 1;

  for (size_t i = 0; i < options.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    COCONUT_ASSIGN_OR_RETURN(
        shard->storage,
        storage::StorageManager::Create(root->directory() + "/" + name +
                                        "_shard" + std::to_string(i)));
    if (!recover) {
      COCONUT_RETURN_NOT_OK(shard->storage->Clear());
    }
    shard->pool =
        std::make_unique<storage::BufferPool>(options.pool_bytes_per_shard);
    if (options.spec.durable) {
      // The shard's own log: scanned here (recovery) or created fresh.
      stream::Wal::Options wal_options;
      wal_options.test_hook = options.spec.wal_test_hook;
      COCONUT_ASSIGN_OR_RETURN(
          shard->wal,
          stream::Wal::Open(
              shard->storage.get(), "wal",
              static_cast<uint32_t>(options.spec.sax.series_length),
              std::move(wal_options)));
      shard_spec.wal = shard->wal.get();
    }
    if (recover) {
      // The log proved `base_ordinals` series durable before its retained
      // suffix; cut the raw file back to them — replay re-appends the rest.
      COCONUT_ASSIGN_OR_RETURN(
          shard->raw, core::RawSeriesStore::OpenTruncated(
                          shard->storage.get(), "raw",
                          options.spec.sax.series_length,
                          shard->wal->base_ordinals()));
    } else {
      COCONUT_ASSIGN_OR_RETURN(
          shard->raw,
          core::RawSeriesStore::Create(shard->storage.get(), "raw",
                                       options.spec.sax.series_length));
    }
    COCONUT_ASSIGN_OR_RETURN(
        shard->index,
        CreateStreamingIndex(shard_spec, shard->storage.get(), "stream",
                             shard->pool.get(), shard->raw.get()));
    if (recover) {
      stream::WalRecoverOutcome outcome;
      COCONUT_RETURN_NOT_OK(shard->wal->Recover(shard->index.get(),
                                                shard->raw.get(), &outcome));
      if (outcome.local_to_global.size() < outcome.ordinals) {
        return Status::DataLoss(
            "shard " + std::to_string(i) + " recovered " +
            std::to_string(outcome.ordinals) + " ordinals but only " +
            std::to_string(outcome.local_to_global.size()) + " id mappings");
      }
      // A trailing map whose admit never committed maps an ordinal the
      // crash un-consumed; the next admission reuses both.
      outcome.local_to_global.resize(outcome.ordinals);
      for (uint64_t local = 0; local < outcome.local_to_global.size();
           ++local) {
        const uint64_t global_id = outcome.local_to_global[local];
        shard->local_to_global.Set(local, global_id);
        sharded->recovered_next_id_ =
            std::max(sharded->recovered_next_id_, global_id + 1);
      }
      sharded->last_timestamp_ =
          std::max(sharded->last_timestamp_, outcome.watermark);
    }
    sharded->shards_.push_back(std::move(shard));
  }

  if (options.num_shards > 1) {
    const size_t threads =
        options.query_threads != 0
            ? options.query_threads
            : std::min<size_t>(options.num_shards, 8);
    if (threads > 1) {
      sharded->query_pool_ = std::make_unique<ThreadPool>(threads);
    }
  }
  return sharded;
}

size_t ShardedStreamingIndex::ShardOf(
    std::span<const float> znorm_values) const {
  // Shared with the static ShardedIndex (shard_route.h): a series lands
  // in the same key range whether bulk-built or streamed.
  return ShardOfSeries(znorm_values, options_.spec.sax, shards_.size());
}

Status ShardedStreamingIndex::Ingest(uint64_t series_id,
                                     std::span<const float> znorm_values,
                                     int64_t timestamp) {
  if (static_cast<int>(znorm_values.size()) !=
      options_.spec.sax.series_length) {
    return Status::InvalidArgument("series length mismatch");
  }
  // Stream-order contract against the *global* watermark: a regression
  // that lands on a different shard than the previous maximum must still
  // be rejected (kStrict) or clamped (kClamp) — per-shard watermarks
  // would only see their own subsequence. Non-permissive policies hold
  // watermark_mu_ across the whole admission: check-then-commit in
  // separate critical sections would let two racing producers admit a
  // regression the unsharded index rejects (a global order is inherently
  // one serialization point). kPermissive — the default and the hot path
  // — needs no watermark at all and keeps full cross-shard concurrency.
  if (options_.spec.timestamp_policy == stream::TimestampPolicy::kPermissive) {
    return AdmitToShard(series_id, znorm_values, timestamp);
  }
  std::lock_guard<std::mutex> lock(watermark_mu_);
  if (options_.spec.timestamp_policy == stream::TimestampPolicy::kStrict &&
      timestamp < last_timestamp_) {
    return Status::InvalidArgument(
        "timestamp regression rejected by kStrict policy");
  }
  if (options_.spec.timestamp_policy == stream::TimestampPolicy::kClamp) {
    timestamp = std::max(timestamp, last_timestamp_);
  }
  // The watermark commits only on successful admission: a refused entry
  // (surfaced background error, backpressure reject) must not tighten
  // what kStrict accepts next.
  COCONUT_RETURN_NOT_OK(AdmitToShard(series_id, znorm_values, timestamp));
  last_timestamp_ = std::max(last_timestamp_, timestamp);
  return Status::OK();
}

Status ShardedStreamingIndex::AdmitToShard(uint64_t series_id,
                                           std::span<const float> znorm_values,
                                           int64_t timestamp) {
  // Routing recomputes the summarization the inner Ingest derives again;
  // accepted duplication, same trade as the static ShardedIndex (changing
  // StreamingIndex::Ingest to take a precomputed key would ripple through
  // every variant).
  Shard& shard = *shards_[ShardOf(znorm_values)];
  // The admission path is serialized per shard so the raw ordinal, the
  // id-map slot and the inner ingest agree; a backpressure block inside
  // the inner Ingest holds only this shard's lock, so other shards keep
  // admitting.
  std::lock_guard<std::mutex> ingest_lock(shard.ingest_mu);
  COCONUT_ASSIGN_OR_RETURN(const uint64_t local_id,
                           shard.raw->Append(znorm_values));
  // The map covers the ordinal even if the inner index then refuses the
  // entry (a surfaced background error, a backpressure reject): ids of
  // later admissions keep lining up with the raw file, and searches never
  // return unindexed slots. The slot commits before the inner Ingest
  // publishes the entry citing it, so a gather that sees the entry also
  // sees the mapping.
  shard.local_to_global.Set(local_id, series_id);
  // Durable streams journal the mapping immediately before the record
  // that consumes the ordinal: the inner Ingest logs the admit inside its
  // own critical section, and a refusal burns the ordinal with a hole, so
  // replay keeps ids lined up with the raw file either way. Everything
  // here is under ingest_mu, so map and admit/hole always share a commit.
  if (shard.wal != nullptr) {
    shard.wal->AppendMap(series_id);
  }
  const Status admitted =
      shard.index->Ingest(local_id, znorm_values, timestamp);
  if (!admitted.ok() && shard.wal != nullptr) {
    shard.wal->AppendHole();
  }
  return admitted;
}

Status ShardedStreamingIndex::CommitDurable() {
  // Fan the ack gate out: every shard's pending records become durable
  // before the batch is acknowledged. Drain all shards even on error so
  // one failed log does not leave another's batch uncommitted forever.
  Status first;
  for (auto& shard : shards_) {
    if (shard->wal == nullptr) continue;
    const Status committed = shard->wal->Commit();
    if (first.ok() && !committed.ok()) first = committed;
  }
  return first;
}

Status ShardedStreamingIndex::TruncateDurableLogs() {
  Status first;
  for (auto& shard : shards_) {
    if (shard->wal == nullptr) continue;
    const Status truncated = shard->wal->TruncateBefore(shard->raw.get());
    if (first.ok() && !truncated.ok()) first = truncated;
  }
  return first;
}

Status ShardedStreamingIndex::FlushAll() {
  // Cross-shard drain barrier: every shard's buffer seals and its strand
  // empties. Shards drain independently, so an error in one does not
  // leave another's cascade half-deferred — drain them all, surface the
  // first failure.
  Status first;
  for (auto& shard : shards_) {
    const Status flushed = shard->raw->Flush();
    if (first.ok() && !flushed.ok()) first = flushed;
    const Status drained = shard->index->FlushAll();
    if (first.ok() && !drained.ok()) first = drained;
  }
  return first;
}

Result<core::SearchResult> ShardedStreamingIndex::ScatterSearch(
    std::span<const float> query, const core::SearchOptions& options,
    core::QueryCounters* counters, bool exact) {
  const size_t k = shards_.size();
  std::vector<Result<core::SearchResult>> results(
      k, Result<core::SearchResult>(Status::Internal("not executed")));
  std::vector<core::QueryCounters> shard_counters(k);

  // Inner async streaming indexes are snapshot-isolated — each shard's
  // search evaluates one atomic snapshot of that shard's state and never
  // blocks on (or is corrupted by) its concurrent seals, so no per-shard
  // serialization is needed here, unlike the static sharded path.
  auto search_shard = [&](size_t i) {
    results[i] = exact ? shards_[i]->index->ExactSearch(query, options,
                                                        &shard_counters[i])
                       : shards_[i]->index->ApproxSearch(query, options,
                                                         &shard_counters[i]);
  };

  if (query_pool_ == nullptr || k == 1) {
    for (size_t i = 0; i < k; ++i) search_shard(i);
  } else {
    WaitGroup wg;
    wg.Add(k);
    for (size_t i = 0; i < k; ++i) {
      query_pool_->Submit([i, &wg, &search_shard] {
        search_shard(i);
        wg.Done();
      });
    }
    wg.Wait();
  }

  // Gather: smallest distance wins; exact ties break toward the smaller
  // global id so the answer is deterministic whatever the shard layout.
  core::SearchResult best;
  for (size_t i = 0; i < k; ++i) {
    COCONUT_RETURN_NOT_OK(results[i].status());
    core::SearchResult r = results[i].value();
    if (r.found) {
      r.series_id = shards_[i]->local_to_global.Get(r.series_id);
      if (!best.found || r.distance_sq < best.distance_sq ||
          (r.distance_sq == best.distance_sq &&
           r.series_id < best.series_id)) {
        best = r;
      }
    }
    if (counters != nullptr) {
      counters->Add(shard_counters[i]);
    }
  }
  return best;
}

Result<core::SearchResult> ShardedStreamingIndex::ExactSearch(
    std::span<const float> query, const core::SearchOptions& options,
    core::QueryCounters* counters) {
  return ScatterSearch(query, options, counters, /*exact=*/true);
}

Result<core::SearchResult> ShardedStreamingIndex::ApproxSearch(
    std::span<const float> query, const core::SearchOptions& options,
    core::QueryCounters* counters) {
  return ScatterSearch(query, options, counters, /*exact=*/false);
}

uint64_t ShardedStreamingIndex::num_entries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index->num_entries();
  return total;
}

size_t ShardedStreamingIndex::num_partitions() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->index->num_partitions();
  return total;
}

uint64_t ShardedStreamingIndex::index_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->index->index_bytes();
  return total;
}

std::string ShardedStreamingIndex::describe() const {
  return "ShardedStream[" + std::to_string(shards_.size()) + "x" +
         shards_[0]->index->describe() + "]";
}

stream::StreamingStats ShardedStreamingIndex::SnapshotStats() const {
  // Each shard's snapshot is taken under that shard's state lock, so
  // every addend is internally consistent; the aggregate is the sum of K
  // such snapshots read in order (consecutive aggregate reads therefore
  // never see entries shrink — each shard's later read dominates its
  // earlier one).
  stream::StreamingStats total;
  for (const auto& shard : shards_) {
    total.Add(shard->index->SnapshotStats());
  }
  return total;
}

storage::IoStats ShardedStreamingIndex::AggregateIoStats() const {
  storage::IoStats total;
  for (const auto& shard : shards_) {
    total.Add(shard->storage->SnapshotIoStats());
  }
  return total;
}

}  // namespace palm
}  // namespace coconut
