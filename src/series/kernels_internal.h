#ifndef COCONUT_SERIES_KERNELS_INTERNAL_H_
#define COCONUT_SERIES_KERNELS_INTERNAL_H_

#include "series/kernels.h"

// Shared between the dispatch TU (kernels.cc) and the per-ISA TUs
// (kernels_avx2.cc / kernels_avx512.cc). Not part of the public API.

namespace coconut {
namespace series {
namespace kernels {
namespace internal {

/// Table accessors for the ISA-specific translation units. Each returns
/// nullptr when the TU was compiled without its instruction set (the TUs
/// self-guard on __AVX2__ / __AVX512F__ so a toolchain without the flags
/// still links).
const KernelTable* Avx2Table();
const KernelTable* Avx512Table();

/// Scalar reference kernels. The SIMD TUs call these for fallbacks
/// (fractional PAA segment bounds) and the dispatch TU builds the scalar
/// table from them. Preconditions as documented on KernelTable.
void ComputePaaScalar(const float* values, size_t n, int num_segments,
                      float* out);
void SaxFromPaaScalar(const float* paa, int num_segments, int bits,
                      uint8_t* out);
double EuclideanSqScalar(const float* a, const float* b, size_t n);
double EuclideanSqEaScalar(const float* a, const float* b, size_t n,
                           double threshold);
double MinDistAccScalar(const float* query_paa, const float* lower,
                        const float* upper, int num_segments);
void EuclideanSqEaBatchScalar(const float* candidate, size_t n,
                              const float* const* queries, size_t num_queries,
                              const double* thresholds, double* out);

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_KERNELS_INTERNAL_H_
