#ifndef COCONUT_SERIES_ISAX_H_
#define COCONUT_SERIES_ISAX_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "series/series.h"

namespace coconut {
namespace series {

/// Upper bound on segments supported by the fixed-size SaxWord/SortableKey
/// representations (16 segments x 8 bits = 128-bit keys).
inline constexpr int kMaxSegments = 16;

/// Shape of the summarization: how a series of `series_length` points is
/// split into `num_segments` PAA segments, each quantized to
/// 2^bits_per_segment iSAX symbols.
struct SaxConfig {
  int series_length = 256;
  int num_segments = 16;
  int bits_per_segment = 8;

  int cardinality() const { return 1 << bits_per_segment; }
  int key_bits() const { return num_segments * bits_per_segment; }

  bool Valid() const {
    return series_length > 0 && num_segments > 0 &&
           num_segments <= kMaxSegments && bits_per_segment > 0 &&
           bits_per_segment <= 8 && series_length >= num_segments;
  }

  bool operator==(const SaxConfig&) const = default;
};

/// An iSAX word: one symbol per segment, at the configuration's full
/// cardinality. Unused trailing segments are zero.
using SaxWord = std::array<uint8_t, kMaxSegments>;

/// Quantizes a PAA vector into an iSAX word.
SaxWord ComputeSaxFromPaa(std::span<const float> paa, const SaxConfig& config);

/// PAA + quantization in one call. `values` must have length
/// config.series_length and should already be z-normalized.
SaxWord ComputeSax(std::span<const Value> values, const SaxConfig& config);

/// Debug rendering, e.g. "[3.7 0.12 ...]" -> "37.12...." style "s0.s1..."
std::string SaxWordToString(const SaxWord& word, const SaxConfig& config);

}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_ISAX_H_
