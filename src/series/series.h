#ifndef COCONUT_SERIES_SERIES_H_
#define COCONUT_SERIES_SERIES_H_

#include <cstdint>
#include <span>
#include <vector>

namespace coconut {
namespace series {

/// Data series values are single-precision floats, matching the public data
/// series benchmarks the paper uses.
using Value = float;

/// Z-normalizes `values` in place: zero mean, unit variance. Constant
/// series (variance ~ 0) are mapped to all-zeros rather than dividing by
/// zero. Similarity search on data series is conventionally performed on
/// z-normalized series, and every index in this repo ingests normalized
/// values.
void ZNormalize(std::span<Value> values);

/// Returns a z-normalized copy.
std::vector<Value> ZNormalized(std::span<const Value> values);

/// A flat, cache-friendly collection of equal-length data series. Series i
/// occupies values()[i*length .. (i+1)*length).
class SeriesCollection {
 public:
  SeriesCollection(size_t length) : length_(length) {}

  /// Appends one series; its size must equal length().
  void Append(std::span<const Value> series) {
    data_.insert(data_.end(), series.begin(), series.end());
  }

  /// Read-only view of series `i`.
  std::span<const Value> operator[](size_t i) const {
    return {data_.data() + i * length_, length_};
  }

  /// Mutable view of series `i`.
  std::span<Value> Mutable(size_t i) {
    return {data_.data() + i * length_, length_};
  }

  size_t size() const { return length_ == 0 ? 0 : data_.size() / length_; }
  size_t length() const { return length_; }
  const std::vector<Value>& data() const { return data_; }
  std::vector<Value>& mutable_data() { return data_; }

  void Reserve(size_t n) { data_.reserve(n * length_); }

 private:
  size_t length_;
  std::vector<Value> data_;
};

}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_SERIES_H_
