// AVX2+FMA tier of the hot kernels. Compiled with -mavx2 -mfma via
// per-source CMake flags; self-guarded so a toolchain without those flags
// still produces a (table-less) object file.
#include "series/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstring>

#include "series/breakpoints.h"

namespace coconut {
namespace series {
namespace kernels {
namespace internal {
namespace {

inline __m256d Widen4(const float* p) {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

inline double HsumPair(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);  // [v0+v2, v1+v3]
  const __m128d sh = _mm_unpackhi_pd(s, s);
  return _mm_cvtsd_f64(_mm_add_sd(s, sh));
}

// Fixed reduction order shared by euclidean_sq, euclidean_sq_ea and the
// batch kernel so all three agree bit-for-bit within this table.
inline double Hsum4(const __m256d acc[4]) {
  return (HsumPair(acc[0]) + HsumPair(acc[1])) +
         (HsumPair(acc[2]) + HsumPair(acc[3]));
}

// One 16-point block: widen both sides to double, subtract in double
// (bit-exact vs the scalar kernel's per-term arithmetic) and FMA into the
// four lane accumulators.
inline void EuclidBlock(const float* a, const float* b, __m256d acc[4]) {
  for (int k = 0; k < 4; ++k) {
    const __m256d d = _mm256_sub_pd(Widen4(a + 4 * k), Widen4(b + 4 * k));
    acc[k] = _mm256_fmadd_pd(d, d, acc[k]);
  }
}

double EuclideanSqAvx2(const float* a, const float* b, size_t n) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) EuclidBlock(a + i, b + i, acc);
  double total = Hsum4(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double EuclideanSqEaAvx2(const float* a, const float* b, size_t n,
                         double threshold) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  size_t i = 0;
  while (i + 16 <= n) {
    EuclidBlock(a + i, b + i, acc);
    i += 16;
    const double partial = Hsum4(acc);
    if (partial > threshold) return partial;
  }
  double total = Hsum4(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

// Queries are scored in chunks so the per-query accumulator state stays in
// registers / L1. Within a chunk the candidate block is widened once and
// reused by every still-active query.
constexpr size_t kBatchChunk = 4;

void EuclideanSqEaBatchAvx2(const float* candidate, size_t n,
                            const float* const* queries, size_t num_queries,
                            const double* thresholds, double* out) {
  for (size_t q0 = 0; q0 < num_queries; q0 += kBatchChunk) {
    const size_t m =
        (num_queries - q0 < kBatchChunk) ? num_queries - q0 : kBatchChunk;
    __m256d acc[kBatchChunk][4];
    bool done[kBatchChunk] = {};
    for (size_t q = 0; q < m; ++q) {
      for (int k = 0; k < 4; ++k) acc[q][k] = _mm256_setzero_pd();
    }
    size_t active = m;
    size_t i = 0;
    while (i + 16 <= n && active > 0) {
      __m256d cand[4];
      for (int k = 0; k < 4; ++k) cand[k] = Widen4(candidate + i + 4 * k);
      for (size_t q = 0; q < m; ++q) {
        if (done[q]) continue;
        const float* p = queries[q0 + q] + i;
        for (int k = 0; k < 4; ++k) {
          const __m256d d = _mm256_sub_pd(Widen4(p + 4 * k), cand[k]);
          acc[q][k] = _mm256_fmadd_pd(d, d, acc[q][k]);
        }
        const double partial = Hsum4(acc[q]);
        if (partial > thresholds[q0 + q]) {
          out[q0 + q] = partial;
          done[q] = true;
          --active;
        }
      }
      i += 16;
    }
    for (size_t q = 0; q < m; ++q) {
      if (done[q]) continue;
      double total = Hsum4(acc[q]);
      const float* p = queries[q0 + q];
      for (size_t j = i; j < n; ++j) {
        const double d = static_cast<double>(p[j]) - candidate[j];
        total += d * d;
      }
      out[q0 + q] = total;
    }
  }
}

// Segments-in-lanes PAA for the even-division case: lane s sums
// values[s*L + j] for ascending j, in double — the exact order and
// precision of the scalar kernel, so results are bit-identical. The
// fractional case delegates to scalar.
void ComputePaaAvx2(const float* values, size_t n, int num_segments,
                    float* out) {
  const size_t ns = static_cast<size_t>(num_segments);
  // Fractional segment bounds take the scalar path (bit-identical anyway);
  // so do lengths beyond the int32 gather-index range.
  if (n % ns != 0 || n > (1u << 30)) {
    ComputePaaScalar(values, n, num_segments, out);
    return;
  }
  const size_t seg_len = n / ns;
  const double seg_len_d = static_cast<double>(seg_len);
  int s = 0;
  for (; s + 4 <= num_segments; s += 4) {
    __m128i idx = _mm_setr_epi32(
        static_cast<int>(s * seg_len), static_cast<int>((s + 1) * seg_len),
        static_cast<int>((s + 2) * seg_len), static_cast<int>((s + 3) * seg_len));
    const __m128i ones = _mm_set1_epi32(1);
    __m256d acc = _mm256_setzero_pd();
    for (size_t j = 0; j < seg_len; ++j) {
      const __m128 v = _mm_i32gather_ps(values, idx, 4);
      acc = _mm256_add_pd(acc, _mm256_cvtps_pd(v));
      idx = _mm_add_epi32(idx, ones);
    }
    const __m256d mean = _mm256_div_pd(acc, _mm256_set1_pd(seg_len_d));
    _mm_storeu_ps(out + s, _mm256_cvtpd_ps(mean));
  }
  for (; s < num_segments; ++s) {
    double acc = 0.0;
    const float* p = values + static_cast<size_t>(s) * seg_len;
    for (size_t j = 0; j < seg_len; ++j) acc += p[j];
    out[s] = static_cast<float>(acc / seg_len_d);
  }
}

// sax_from_paa deliberately stays scalar on this tier: the 4-lane
// gather-based binary search (see git history) measurably loses to the
// scalar upper_bound on gather-slow parts — BENCH_kernels.json has tracked
// the regression since the dispatch layer landed. The AVX-512 tier keeps
// its 8-lane form, where the gather amortizes over twice the lanes. Bit-
// identity is trivial here: the table entry *is* the scalar kernel.

// Per-segment gaps vectorized in float — max(max(lo-q, q-up), 0) matches
// the scalar branches including NaN/inf edge cases (maxps returns its
// second operand on unordered compares) — then squared and summed in
// scalar order in double, so the result is bit-identical to scalar.
double MinDistAccAvx2(const float* query_paa, const float* lower,
                      const float* upper, int num_segments) {
  if (num_segments > 16) {
    return MinDistAccScalar(query_paa, lower, upper, num_segments);
  }
  float gap[16];
  int s = 0;
  for (; s + 8 <= num_segments; s += 8) {
    const __m256 q = _mm256_loadu_ps(query_paa + s);
    const __m256 lo = _mm256_loadu_ps(lower + s);
    const __m256 up = _mm256_loadu_ps(upper + s);
    const __m256 g = _mm256_max_ps(
        _mm256_max_ps(_mm256_sub_ps(lo, q), _mm256_sub_ps(q, up)),
        _mm256_setzero_ps());
    _mm256_storeu_ps(gap + s, g);
  }
  for (; s < num_segments; ++s) {
    float g = 0.0f;
    if (query_paa[s] < lower[s]) {
      g = lower[s] - query_paa[s];
    } else if (query_paa[s] > upper[s]) {
      g = query_paa[s] - upper[s];
    }
    gap[s] = g;
  }
  double acc = 0.0;
  for (int k = 0; k < num_segments; ++k) {
    const double d = gap[k];
    acc += d * d;
  }
  return acc;
}

constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,
    "avx2",
    &ComputePaaAvx2,
    &SaxFromPaaScalar,  // Demoted: scalar beats the gather binary search.
    &EuclideanSqAvx2,
    &EuclideanSqEaAvx2,
    &MinDistAccAvx2,
    &EuclideanSqEaBatchAvx2,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#else  // !(__AVX2__ && __FMA__)

namespace coconut {
namespace series {
namespace kernels {
namespace internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#endif
