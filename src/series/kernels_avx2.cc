// AVX2+FMA tier of the hot kernels. Compiled with -mavx2 -mfma via
// per-source CMake flags; self-guarded so a toolchain without those flags
// still produces a (table-less) object file.
#include "series/kernels_internal.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <array>
#include <cmath>
#include <cstring>

#include "series/breakpoints.h"

namespace coconut {
namespace series {
namespace kernels {
namespace internal {
namespace {

inline __m256d Widen4(const float* p) {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

inline double HsumPair(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);  // [v0+v2, v1+v3]
  const __m128d sh = _mm_unpackhi_pd(s, s);
  return _mm_cvtsd_f64(_mm_add_sd(s, sh));
}

// Fixed reduction order shared by euclidean_sq, euclidean_sq_ea and the
// batch kernel so all three agree bit-for-bit within this table.
inline double Hsum4(const __m256d acc[4]) {
  return (HsumPair(acc[0]) + HsumPair(acc[1])) +
         (HsumPair(acc[2]) + HsumPair(acc[3]));
}

// One 16-point block: widen both sides to double, subtract in double
// (bit-exact vs the scalar kernel's per-term arithmetic) and FMA into the
// four lane accumulators.
inline void EuclidBlock(const float* a, const float* b, __m256d acc[4]) {
  for (int k = 0; k < 4; ++k) {
    const __m256d d = _mm256_sub_pd(Widen4(a + 4 * k), Widen4(b + 4 * k));
    acc[k] = _mm256_fmadd_pd(d, d, acc[k]);
  }
}

double EuclideanSqAvx2(const float* a, const float* b, size_t n) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) EuclidBlock(a + i, b + i, acc);
  double total = Hsum4(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double EuclideanSqEaAvx2(const float* a, const float* b, size_t n,
                         double threshold) {
  __m256d acc[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                    _mm256_setzero_pd(), _mm256_setzero_pd()};
  size_t i = 0;
  while (i + 16 <= n) {
    EuclidBlock(a + i, b + i, acc);
    i += 16;
    const double partial = Hsum4(acc);
    if (partial > threshold) return partial;
  }
  double total = Hsum4(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

// Queries are scored in chunks so the per-query accumulator state stays in
// registers / L1. Within a chunk the candidate block is widened once and
// reused by every still-active query.
constexpr size_t kBatchChunk = 4;

void EuclideanSqEaBatchAvx2(const float* candidate, size_t n,
                            const float* const* queries, size_t num_queries,
                            const double* thresholds, double* out) {
  for (size_t q0 = 0; q0 < num_queries; q0 += kBatchChunk) {
    const size_t m =
        (num_queries - q0 < kBatchChunk) ? num_queries - q0 : kBatchChunk;
    __m256d acc[kBatchChunk][4];
    bool done[kBatchChunk] = {};
    for (size_t q = 0; q < m; ++q) {
      for (int k = 0; k < 4; ++k) acc[q][k] = _mm256_setzero_pd();
    }
    size_t active = m;
    size_t i = 0;
    while (i + 16 <= n && active > 0) {
      __m256d cand[4];
      for (int k = 0; k < 4; ++k) cand[k] = Widen4(candidate + i + 4 * k);
      for (size_t q = 0; q < m; ++q) {
        if (done[q]) continue;
        const float* p = queries[q0 + q] + i;
        for (int k = 0; k < 4; ++k) {
          const __m256d d = _mm256_sub_pd(Widen4(p + 4 * k), cand[k]);
          acc[q][k] = _mm256_fmadd_pd(d, d, acc[q][k]);
        }
        const double partial = Hsum4(acc[q]);
        if (partial > thresholds[q0 + q]) {
          out[q0 + q] = partial;
          done[q] = true;
          --active;
        }
      }
      i += 16;
    }
    for (size_t q = 0; q < m; ++q) {
      if (done[q]) continue;
      double total = Hsum4(acc[q]);
      const float* p = queries[q0 + q];
      for (size_t j = i; j < n; ++j) {
        const double d = static_cast<double>(p[j]) - candidate[j];
        total += d * d;
      }
      out[q0 + q] = total;
    }
  }
}

// Segments-in-lanes PAA for the even-division case: lane s sums
// values[s*L + j] for ascending j, in double — the exact order and
// precision of the scalar kernel, so results are bit-identical. The
// fractional case delegates to scalar.
void ComputePaaAvx2(const float* values, size_t n, int num_segments,
                    float* out) {
  const size_t ns = static_cast<size_t>(num_segments);
  // Fractional segment bounds take the scalar path (bit-identical anyway);
  // so do lengths beyond the int32 gather-index range.
  if (n % ns != 0 || n > (1u << 30)) {
    ComputePaaScalar(values, n, num_segments, out);
    return;
  }
  const size_t seg_len = n / ns;
  const double seg_len_d = static_cast<double>(seg_len);
  int s = 0;
  for (; s + 4 <= num_segments; s += 4) {
    __m128i idx = _mm_setr_epi32(
        static_cast<int>(s * seg_len), static_cast<int>((s + 1) * seg_len),
        static_cast<int>((s + 2) * seg_len), static_cast<int>((s + 3) * seg_len));
    const __m128i ones = _mm_set1_epi32(1);
    __m256d acc = _mm256_setzero_pd();
    for (size_t j = 0; j < seg_len; ++j) {
      const __m128 v = _mm_i32gather_ps(values, idx, 4);
      acc = _mm256_add_pd(acc, _mm256_cvtps_pd(v));
      idx = _mm_add_epi32(idx, ones);
    }
    const __m256d mean = _mm256_div_pd(acc, _mm256_set1_pd(seg_len_d));
    _mm_storeu_ps(out + s, _mm256_cvtpd_ps(mean));
  }
  for (; s < num_segments; ++s) {
    double acc = 0.0;
    const float* p = values + static_cast<size_t>(s) * seg_len;
    for (size_t j = 0; j < seg_len; ++j) acc += p[j];
    out[s] = static_cast<float>(acc / seg_len_d);
  }
}

// sax_from_paa: shuffle-free compare-count quantization. An earlier 4-lane
// gather-based binary search measurably lost to the scalar upper_bound on
// gather-slow parts (BENCH_kernels.json tracked the regression, and the
// slot was demoted to scalar). This form uses no gathers at all:
//
//   symbol = |{ t in breakpoints : !(v < t) }|
//
// which equals upper_bound's index by monotonicity, including NaN (every
// _CMP_NLT_UQ compare is unordered-true, so NaN counts all 2^bits - 1
// breakpoints and lands on the top symbol, exactly like the scalar
// kernel's upper_bound over a NaN). All compares run in double against
// the double breakpoint table — the scalar kernel's precision.
//
// bits == 8 runs two levels: a coarse pivot-major pass (15 pivots, every
// 16th breakpoint, broadcast against 8 widened lanes) picks each lane's
// 16-wide bucket, then a fine pass counts the bucket's 15 breakpoints
// with four regular 256-bit loads from a padded row table + movemask /
// popcount. bits <= 4 has at most 15 breakpoints total, so the coarse
// pass alone is the answer. 5..7-bit cardinalities are not used by any
// index configuration (isax defaults to 8) and delegate to scalar.

/// Breakpoint tables laid out for the compare-count passes, built once per
/// process (magic static) from the canonical double table.
struct SaxTables8 {
  /// pivots[k] = breakpoints[16k + 15]: the upper fence of bucket k.
  double pivots[15];
  /// rows[c][j] = breakpoints[16c + j] for j < 15; slot 15 pads with
  /// +inf and is masked out of the popcount anyway.
  alignas(32) double rows[16][16];
};

const SaxTables8& Tables8() {
  static const SaxTables8 tables = [] {
    SaxTables8 t;
    const std::vector<double>& tab = Breakpoints::ForBits(8);  // 255 entries
    for (int k = 0; k < 15; ++k) t.pivots[k] = tab[16 * k + 15];
    for (int c = 0; c < 16; ++c) {
      for (int j = 0; j < 15; ++j) t.rows[c][j] = tab[16 * c + j];
      t.rows[c][15] = HUGE_VAL;
    }
    return t;
  }();
  return tables;
}

/// Padded single row for bits <= 4 (2^bits - 1 <= 15 breakpoints).
struct SaxTableSmall {
  alignas(32) double row[16];
};

const SaxTableSmall& TablesSmall(int bits) {
  // Index 0 unused; one magic static builds every small cardinality.
  static const std::array<SaxTableSmall, 5> built = [] {
    std::array<SaxTableSmall, 5> all{};
    for (int b = 1; b <= 4; ++b) {
      const std::vector<double>& tab = Breakpoints::ForBits(b);
      for (size_t j = 0; j < 16; ++j) {
        all[b].row[j] = j < tab.size() ? tab[j] : HUGE_VAL;
      }
    }
    return all;
  }();
  return built[bits];
}

/// Counts breakpoints <= v (unordered counts too) for the 8 lanes starting
/// at `paa`, over `n` pivot values broadcast one at a time. Counts land in
/// lanes[0..7].
inline void PivotCount8(const float* paa, const double* pivots, int n,
                        long long lanes[8]) {
  const __m256d v_lo = Widen4(paa);
  const __m256d v_hi = Widen4(paa + 4);
  __m256i cnt_lo = _mm256_setzero_si256();
  __m256i cnt_hi = _mm256_setzero_si256();
  for (int k = 0; k < n; ++k) {
    const __m256d t = _mm256_set1_pd(pivots[k]);
    // The compare mask is all-ones (-1) per passing lane; subtracting it
    // increments the lane count branchlessly.
    cnt_lo = _mm256_sub_epi64(
        cnt_lo, _mm256_castpd_si256(_mm256_cmp_pd(v_lo, t, _CMP_NLT_UQ)));
    cnt_hi = _mm256_sub_epi64(
        cnt_hi, _mm256_castpd_si256(_mm256_cmp_pd(v_hi, t, _CMP_NLT_UQ)));
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), cnt_lo);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4), cnt_hi);
}

void SaxFromPaaAvx2(const float* paa, int num_segments, int bits,
                    uint8_t* out) {
  if (bits == 8) {
    const SaxTables8& tables = Tables8();
    int s = 0;
    for (; s + 8 <= num_segments; s += 8) {
      alignas(32) long long coarse[8];
      PivotCount8(paa + s, tables.pivots, 15, coarse);
      for (int k = 0; k < 8; ++k) {
        // Fine pass: count the chosen bucket's 15 breakpoints with four
        // regular loads; lane 15 is padding, masked off the popcount.
        const __m256d v =
            _mm256_set1_pd(static_cast<double>(paa[s + k]));
        const double* row = tables.rows[coarse[k]];
        int mask = 0;
        for (int j = 0; j < 4; ++j) {
          mask |= _mm256_movemask_pd(_mm256_cmp_pd(
                      v, _mm256_load_pd(row + 4 * j), _CMP_NLT_UQ))
                  << (4 * j);
        }
        out[s + k] = static_cast<uint8_t>(
            (coarse[k] << 4) + __builtin_popcount(mask & 0x7FFF));
      }
    }
    if (s < num_segments) {
      SaxFromPaaScalar(paa + s, num_segments - s, bits, out + s);
    }
    return;
  }
  if (bits <= 4) {
    const int n = (1 << bits) - 1;
    const SaxTableSmall& table = TablesSmall(bits);
    int s = 0;
    for (; s + 8 <= num_segments; s += 8) {
      alignas(32) long long counts[8];
      PivotCount8(paa + s, table.row, n, counts);
      for (int k = 0; k < 8; ++k) {
        out[s + k] = static_cast<uint8_t>(counts[k]);
      }
    }
    if (s < num_segments) {
      SaxFromPaaScalar(paa + s, num_segments - s, bits, out + s);
    }
    return;
  }
  SaxFromPaaScalar(paa, num_segments, bits, out);
}

// Per-segment gaps vectorized in float — max(max(lo-q, q-up), 0) matches
// the scalar branches including NaN/inf edge cases (maxps returns its
// second operand on unordered compares) — then squared and summed in
// scalar order in double, so the result is bit-identical to scalar.
double MinDistAccAvx2(const float* query_paa, const float* lower,
                      const float* upper, int num_segments) {
  if (num_segments > 16) {
    return MinDistAccScalar(query_paa, lower, upper, num_segments);
  }
  float gap[16];
  int s = 0;
  for (; s + 8 <= num_segments; s += 8) {
    const __m256 q = _mm256_loadu_ps(query_paa + s);
    const __m256 lo = _mm256_loadu_ps(lower + s);
    const __m256 up = _mm256_loadu_ps(upper + s);
    const __m256 g = _mm256_max_ps(
        _mm256_max_ps(_mm256_sub_ps(lo, q), _mm256_sub_ps(q, up)),
        _mm256_setzero_ps());
    _mm256_storeu_ps(gap + s, g);
  }
  for (; s < num_segments; ++s) {
    float g = 0.0f;
    if (query_paa[s] < lower[s]) {
      g = lower[s] - query_paa[s];
    } else if (query_paa[s] > upper[s]) {
      g = query_paa[s] - upper[s];
    }
    gap[s] = g;
  }
  double acc = 0.0;
  for (int k = 0; k < num_segments; ++k) {
    const double d = gap[k];
    acc += d * d;
  }
  return acc;
}

constexpr KernelTable kAvx2Table = {
    Isa::kAvx2,
    "avx2",
    &ComputePaaAvx2,
    &SaxFromPaaAvx2,
    &EuclideanSqAvx2,
    &EuclideanSqEaAvx2,
    &MinDistAccAvx2,
    &EuclideanSqEaBatchAvx2,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#else  // !(__AVX2__ && __FMA__)

namespace coconut {
namespace series {
namespace kernels {
namespace internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#endif
