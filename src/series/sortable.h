#ifndef COCONUT_SERIES_SORTABLE_H_
#define COCONUT_SERIES_SORTABLE_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "series/isax.h"

namespace coconut {
namespace series {

/// The sortable summarization at the heart of Coconut.
///
/// A SortableKey interleaves the bits of every iSAX symbol round-robin,
/// most-significant bits first: bit 0 of the key is the MSB of segment 0's
/// symbol, bit 1 the MSB of segment 1's, ..., then the second bit of each
/// symbol, and so on. Sorting by this key is a z-order traversal of iSAX
/// space, so series that are similar in *all* segments are adjacent in the
/// sorted order — unlike segment-major packing, which only clusters by the
/// first segment (the flaw Section 1 of the paper describes).
///
/// The interleaving is lossless: DeinterleaveKey recovers the exact iSAX
/// word, so lower-bounding distances can be computed straight from stored
/// keys ("invertibility" in the Coconut paper).
///
/// Keys compare lexicographically; words[0] holds key bits 0..63 (bit 0 in
/// the word's MSB), words[1] bits 64..127.
struct SortableKey {
  std::array<uint64_t, 2> words{0, 0};

  auto operator<=>(const SortableKey&) const = default;

  /// Smallest possible key.
  static SortableKey Min() { return SortableKey{}; }
  /// Largest possible key.
  static SortableKey Max() {
    return SortableKey{{~0ULL, ~0ULL}};
  }

  /// 32 hex chars, most significant first.
  std::string ToHex() const;
};

/// Interleaves an iSAX word into its sortable key.
SortableKey InterleaveSax(const SaxWord& word, const SaxConfig& config);

/// Inverts InterleaveSax, recovering the iSAX word exactly.
SaxWord DeinterleaveKey(const SortableKey& key, const SaxConfig& config);

/// The *non*-sortable baseline: concatenates symbols segment after segment
/// (the "original order within the data series" layout the paper says fails
/// to cluster similar series). Used by the E8 experiment to quantify how
/// much interleaving matters.
SortableKey SegmentMajorKey(const SaxWord& word, const SaxConfig& config);

/// Inverts SegmentMajorKey.
SaxWord SegmentMajorToSax(const SortableKey& key, const SaxConfig& config);

}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_SORTABLE_H_
