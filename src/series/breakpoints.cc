#include "series/breakpoints.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace coconut {
namespace series {

namespace {

std::vector<double> BuildTable(int bits) {
  const int cardinality = 1 << bits;
  std::vector<double> table(cardinality - 1);
  for (int i = 1; i < cardinality; ++i) {
    table[i - 1] =
        Breakpoints::InverseNormalCdf(static_cast<double>(i) / cardinality);
  }
  return table;
}

// Conservative double->float narrowing for region bounds: rounding to
// nearest could move a lower edge *up* (or an upper edge *down*), which
// would let MINDIST exceed a true distance and prune a real neighbor.
// Rounding outward keeps the bound sound at the cost of an infinitesimally
// looser region.
float FloorToFloat(double x) {
  if (x <= -HUGE_VAL) return -HUGE_VALF;
  float f = static_cast<float>(x);
  if (static_cast<double>(f) > x) f = std::nextafterf(f, -HUGE_VALF);
  return f;
}

float CeilToFloat(double x) {
  if (x >= HUGE_VAL) return HUGE_VALF;
  float f = static_cast<float>(x);
  if (static_cast<double>(f) < x) f = std::nextafterf(f, HUGE_VALF);
  return f;
}

std::vector<float> BuildRegionLowerF(int bits) {
  const int cardinality = 1 << bits;
  std::vector<float> table(cardinality);
  for (int s = 0; s < cardinality; ++s) {
    table[s] = FloorToFloat(
        Breakpoints::RegionLower(static_cast<uint8_t>(s), bits));
  }
  return table;
}

std::vector<float> BuildRegionUpperF(int bits) {
  const int cardinality = 1 << bits;
  std::vector<float> table(cardinality);
  for (int s = 0; s < cardinality; ++s) {
    table[s] = CeilToFloat(
        Breakpoints::RegionUpper(static_cast<uint8_t>(s), bits));
  }
  return table;
}

}  // namespace

double Breakpoints::InverseNormalCdf(double p) {
  // Peter Acklam's rational approximation with one Halley refinement step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double kPLow = 0.02425;

  double x;
  if (p <= 0.0) return -HUGE_VAL;
  if (p >= 1.0) return HUGE_VAL;
  if (p < kPLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - kPLow) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method against the normal CDF via erfc.
  const double e = 0.5 * std::erfc(-x / std::sqrt(2.0)) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

const std::vector<double>& Breakpoints::ForBits(int bits) {
  static const std::array<std::vector<double>, 9> tables = [] {
    std::array<std::vector<double>, 9> t;
    for (int b = 1; b <= 8; ++b) t[b] = BuildTable(b);
    return t;
  }();
  return tables[bits];
}

uint8_t Breakpoints::Quantize(double value, int bits) {
  const auto& table = ForBits(bits);
  // First breakpoint strictly greater than value; symbol = its index.
  auto it = std::upper_bound(table.begin(), table.end(), value);
  return static_cast<uint8_t>(it - table.begin());
}

double Breakpoints::RegionLower(uint8_t s, int bits) {
  if (s == 0) return -HUGE_VAL;
  return ForBits(bits)[s - 1];
}

double Breakpoints::RegionUpper(uint8_t s, int bits) {
  const auto& table = ForBits(bits);
  if (s >= table.size()) return HUGE_VAL;
  return table[s];
}

const std::vector<float>& Breakpoints::RegionLowerF(int bits) {
  static const std::array<std::vector<float>, 9> tables = [] {
    std::array<std::vector<float>, 9> t;
    for (int b = 1; b <= 8; ++b) t[b] = BuildRegionLowerF(b);
    return t;
  }();
  return tables[bits];
}

const std::vector<float>& Breakpoints::RegionUpperF(int bits) {
  static const std::array<std::vector<float>, 9> tables = [] {
    std::array<std::vector<float>, 9> t;
    for (int b = 1; b <= 8; ++b) t[b] = BuildRegionUpperF(b);
    return t;
  }();
  return tables[bits];
}

}  // namespace series
}  // namespace coconut
