#ifndef COCONUT_SERIES_PAA_H_
#define COCONUT_SERIES_PAA_H_

#include <span>
#include <vector>

#include "series/series.h"

namespace coconut {
namespace series {

/// Piecewise Aggregate Approximation: the mean of each of `num_segments`
/// equal-length chunks. The series length need not divide evenly; boundary
/// points contribute fractionally so the approximation stays a valid basis
/// for the lower-bounding distance. Degenerate inputs have defined
/// semantics: an empty series yields all-zero segments (never NaN), series
/// shorter than num_segments use fractional-width segments, and
/// num_segments <= 0 writes nothing. Dispatches to the active
/// series::kernels tier; all tiers produce bit-identical PAA.
std::vector<float> ComputePaa(std::span<const Value> values, int num_segments);

/// In-place variant writing into `out` (size must be >= num_segments).
void ComputePaa(std::span<const Value> values, int num_segments,
                std::span<float> out);

}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_PAA_H_
