// AVX-512 (F+DQ+VL) tier of the hot kernels. Compiled with
// -mavx512f -mavx512dq -mavx512vl -mfma via per-source CMake flags;
// self-guarded so a toolchain without them still produces an object file.
//
// Same numerical contract as the AVX2 tier: PAA / SAX / MINDIST are
// bit-identical to scalar; Euclidean sums reassociate (here into two
// 8-lane double accumulators per 16-point block) with euclidean_sq,
// euclidean_sq_ea and the batch kernel sharing one reduction order.
#include "series/kernels_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__AVX512VL__) && \
    defined(__FMA__)

#include <immintrin.h>

#include "series/breakpoints.h"

namespace coconut {
namespace series {
namespace kernels {
namespace internal {
namespace {

inline __m512d Widen8(const float* p) {
  return _mm512_cvtps_pd(_mm256_loadu_ps(p));
}

inline double HsumPair256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  const __m128d sh = _mm_unpackhi_pd(s, s);
  return _mm_cvtsd_f64(_mm_add_sd(s, sh));
}

inline double Hsum512(__m512d v) {
  const __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  return HsumPair256(_mm256_add_pd(lo, hi));
}

// Fixed reduction order shared by all three Euclidean kernels of this tier.
inline double Hsum2(const __m512d acc[2]) {
  return Hsum512(acc[0]) + Hsum512(acc[1]);
}

inline void EuclidBlock(const float* a, const float* b, __m512d acc[2]) {
  for (int k = 0; k < 2; ++k) {
    const __m512d d = _mm512_sub_pd(Widen8(a + 8 * k), Widen8(b + 8 * k));
    acc[k] = _mm512_fmadd_pd(d, d, acc[k]);
  }
}

double EuclideanSqAvx512(const float* a, const float* b, size_t n) {
  __m512d acc[2] = {_mm512_setzero_pd(), _mm512_setzero_pd()};
  size_t i = 0;
  for (; i + 16 <= n; i += 16) EuclidBlock(a + i, b + i, acc);
  double total = Hsum2(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double EuclideanSqEaAvx512(const float* a, const float* b, size_t n,
                           double threshold) {
  __m512d acc[2] = {_mm512_setzero_pd(), _mm512_setzero_pd()};
  size_t i = 0;
  while (i + 16 <= n) {
    EuclidBlock(a + i, b + i, acc);
    i += 16;
    const double partial = Hsum2(acc);
    if (partial > threshold) return partial;
  }
  double total = Hsum2(acc);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

constexpr size_t kBatchChunk = 8;

void EuclideanSqEaBatchAvx512(const float* candidate, size_t n,
                              const float* const* queries, size_t num_queries,
                              const double* thresholds, double* out) {
  for (size_t q0 = 0; q0 < num_queries; q0 += kBatchChunk) {
    const size_t m =
        (num_queries - q0 < kBatchChunk) ? num_queries - q0 : kBatchChunk;
    __m512d acc[kBatchChunk][2];
    bool done[kBatchChunk] = {};
    for (size_t q = 0; q < m; ++q) {
      acc[q][0] = _mm512_setzero_pd();
      acc[q][1] = _mm512_setzero_pd();
    }
    size_t active = m;
    size_t i = 0;
    while (i + 16 <= n && active > 0) {
      __m512d cand[2];
      cand[0] = Widen8(candidate + i);
      cand[1] = Widen8(candidate + i + 8);
      for (size_t q = 0; q < m; ++q) {
        if (done[q]) continue;
        const float* p = queries[q0 + q] + i;
        for (int k = 0; k < 2; ++k) {
          const __m512d d = _mm512_sub_pd(Widen8(p + 8 * k), cand[k]);
          acc[q][k] = _mm512_fmadd_pd(d, d, acc[q][k]);
        }
        const double partial = Hsum2(acc[q]);
        if (partial > thresholds[q0 + q]) {
          out[q0 + q] = partial;
          done[q] = true;
          --active;
        }
      }
      i += 16;
    }
    for (size_t q = 0; q < m; ++q) {
      if (done[q]) continue;
      double total = Hsum2(acc[q]);
      const float* p = queries[q0 + q];
      for (size_t j = i; j < n; ++j) {
        const double d = static_cast<double>(p[j]) - candidate[j];
        total += d * d;
      }
      out[q0 + q] = total;
    }
  }
}

// Segments-in-lanes PAA (see the AVX2 tier): 8 segments per __m512d, each
// lane summing its segment in scalar order in double — bit-identical to
// scalar. Fractional division and oversized inputs delegate to scalar.
void ComputePaaAvx512(const float* values, size_t n, int num_segments,
                      float* out) {
  const size_t ns = static_cast<size_t>(num_segments);
  if (n % ns != 0 || n > (1u << 30)) {
    ComputePaaScalar(values, n, num_segments, out);
    return;
  }
  const size_t seg_len = n / ns;
  const double seg_len_d = static_cast<double>(seg_len);
  int s = 0;
  for (; s + 8 <= num_segments; s += 8) {
    alignas(32) int idx0[8];
    for (int k = 0; k < 8; ++k) {
      idx0[k] = static_cast<int>((s + k) * seg_len);
    }
    __m256i idx = _mm256_load_si256(reinterpret_cast<const __m256i*>(idx0));
    const __m256i ones = _mm256_set1_epi32(1);
    __m512d acc = _mm512_setzero_pd();
    for (size_t j = 0; j < seg_len; ++j) {
      const __m256 v = _mm256_i32gather_ps(values, idx, 4);
      acc = _mm512_add_pd(acc, _mm512_cvtps_pd(v));
      idx = _mm256_add_epi32(idx, ones);
    }
    const __m512d mean = _mm512_div_pd(acc, _mm512_set1_pd(seg_len_d));
    _mm256_storeu_ps(out + s, _mm512_cvtpd_ps(mean));
  }
  for (; s < num_segments; ++s) {
    double acc = 0.0;
    const float* p = values + static_cast<size_t>(s) * seg_len;
    for (size_t j = 0; j < seg_len; ++j) acc += p[j];
    out[s] = static_cast<float>(acc / seg_len_d);
  }
}

// Branchless 8-lane binary search; mask-add on !(v < t) (NLT, unordered
// true) matches std::upper_bound semantics including NaN -> top symbol.
void SaxFromPaaAvx512(const float* paa, int num_segments, int bits,
                      uint8_t* out) {
  const double* tab = Breakpoints::ForBits(bits).data();
  int s = 0;
  for (; s + 8 <= num_segments; s += 8) {
    const __m512d v = Widen8(paa + s);
    __m512i sym = _mm512_setzero_si512();  // 8 x int64 symbols
    for (int b = bits - 1; b >= 0; --b) {
      const long long step = 1ll << b;
      const __m512i mid = _mm512_add_epi64(sym, _mm512_set1_epi64(step - 1));
      const __m512d t = _mm512_i64gather_pd(mid, tab, 8);
      const __mmask8 ge = _mm512_cmp_pd_mask(v, t, _CMP_NLT_UQ);
      sym = _mm512_mask_add_epi64(sym, ge, sym, _mm512_set1_epi64(step));
    }
    alignas(64) long long lanes[8];
    _mm512_store_si512(reinterpret_cast<__m512i*>(lanes), sym);
    for (int k = 0; k < 8; ++k) out[s + k] = static_cast<uint8_t>(lanes[k]);
  }
  if (s < num_segments) {
    SaxFromPaaScalar(paa + s, num_segments - s, bits, out + s);
  }
}

// Same gap formulation as the AVX2 tier (bit-identical to scalar); with at
// most 16 segments a 256-bit sweep is already full-width.
double MinDistAccAvx512(const float* query_paa, const float* lower,
                        const float* upper, int num_segments) {
  if (num_segments > 16) {
    return MinDistAccScalar(query_paa, lower, upper, num_segments);
  }
  float gap[16];
  int s = 0;
  for (; s + 8 <= num_segments; s += 8) {
    const __m256 q = _mm256_loadu_ps(query_paa + s);
    const __m256 lo = _mm256_loadu_ps(lower + s);
    const __m256 up = _mm256_loadu_ps(upper + s);
    const __m256 g = _mm256_max_ps(
        _mm256_max_ps(_mm256_sub_ps(lo, q), _mm256_sub_ps(q, up)),
        _mm256_setzero_ps());
    _mm256_storeu_ps(gap + s, g);
  }
  for (; s < num_segments; ++s) {
    float g = 0.0f;
    if (query_paa[s] < lower[s]) {
      g = lower[s] - query_paa[s];
    } else if (query_paa[s] > upper[s]) {
      g = query_paa[s] - upper[s];
    }
    gap[s] = g;
  }
  double acc = 0.0;
  for (int k = 0; k < num_segments; ++k) {
    const double d = gap[k];
    acc += d * d;
  }
  return acc;
}

constexpr KernelTable kAvx512Table = {
    Isa::kAvx512,
    "avx512",
    &ComputePaaAvx512,
    &SaxFromPaaAvx512,
    &EuclideanSqAvx512,
    &EuclideanSqEaAvx512,
    &MinDistAccAvx512,
    &EuclideanSqEaBatchAvx512,
};

}  // namespace

const KernelTable* Avx512Table() { return &kAvx512Table; }

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#else  // !(__AVX512F__ && __AVX512DQ__ && __AVX512VL__ && __FMA__)

namespace coconut {
namespace series {
namespace kernels {
namespace internal {

const KernelTable* Avx512Table() { return nullptr; }

}  // namespace internal
}  // namespace kernels
}  // namespace series
}  // namespace coconut

#endif
