#ifndef COCONUT_SERIES_KERNELS_H_
#define COCONUT_SERIES_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coconut {
namespace series {
namespace kernels {

/// Instruction sets the hot kernels are specialized for, in ascending
/// capability order. kScalar is the reference implementation and is always
/// available; the SIMD tiers exist only when both the compiler that built
/// this binary and the CPU it runs on support them.
enum class Isa : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One implementation tier of the four hot kernels (plus the batched
/// distance variant). All functions tolerate unaligned pointers and
/// arbitrary lengths (remainders are handled with scalar tails).
///
/// Numerical contract, relied on by the oracle suites:
///  - compute_paa, sax_from_paa and mindist_acc are BIT-IDENTICAL across
///    ISAs (the SIMD variants keep scalar summation/comparison order, and
///    fall back to scalar where they cannot) — except that a NaN result
///    only promises NaN-ness, not its sign/payload bits: IEEE 754 leaves
///    NaN propagation unspecified and compilers exploit that per build
///    mode (the same scalar source folds inf + -inf to a different NaN at
///    -O2 than at -O0/under TSan), so no tier can pin it. Downstream is
///    indifferent: sax_from_paa sends every NaN to the top symbol.
///  - euclidean_sq / euclidean_sq_ea reassociate the summation: SIMD
///    results differ from scalar by at most the reassociation error of an
///    n-term double sum (each term is computed bit-exactly in double, so
///    the relative error is bounded by ~n * 2^-52 — far below the 1e-6
///    tolerances the oracles use). Within one table, euclidean_sq_ea with
///    threshold = +inf is bit-identical to euclidean_sq, and the batch
///    kernel is bit-identical to per-query euclidean_sq_ea calls.
struct KernelTable {
  Isa isa;
  const char* name;

  /// PAA over `n` values into `num_segments` segment means. Requires
  /// n >= 1 and num_segments >= 1; `out` has room for num_segments floats.
  void (*compute_paa)(const float* values, size_t n, int num_segments,
                      float* out);

  /// Quantizes `num_segments` PAA means to iSAX symbols at cardinality
  /// 2^bits. NaN quantizes to the top symbol and values exactly on a
  /// breakpoint round up, matching std::upper_bound on the breakpoint
  /// table.
  void (*sax_from_paa)(const float* paa, int num_segments, int bits,
                       uint8_t* out);

  /// Sum over n points of (a[i] - b[i])^2, accumulated in double.
  double (*euclidean_sq)(const float* a, const float* b, size_t n);

  /// Early-abandoning variant: returns a partial sum > threshold as soon
  /// as one is observed (checked every 16 points, like the scalar code).
  double (*euclidean_sq_ea)(const float* a, const float* b, size_t n,
                            double threshold);

  /// Unscaled MINDIST accumulator: sum over segments of gap^2 where gap
  /// is the distance from query_paa[s] to the interval
  /// [lower[s], upper[s]] (zero inside). Callers apply the n/w scale.
  double (*mindist_acc)(const float* query_paa, const float* lower,
                        const float* upper, int num_segments);

  /// Batched early abandon: scores ONE candidate against `num_queries`
  /// queries (each of length n) with per-query thresholds, writing one
  /// result per query. out[q] equals
  /// euclidean_sq_ea(queries[q], candidate, n, thresholds[q]) of the same
  /// table bit-for-bit; the batch amortizes loading/widening the candidate
  /// across queries.
  void (*euclidean_sq_ea_batch)(const float* candidate, size_t n,
                                const float* const* queries,
                                size_t num_queries, const double* thresholds,
                                double* out);
};

/// The active table. Selected on first use: the COCONUT_FORCE_KERNEL
/// environment variable ("scalar" | "avx2" | "avx512") wins when set — an
/// unknown or unsupported value falls back to scalar with a warning on
/// stderr — otherwise the highest CPUID-supported tier is picked.
/// Thread-safe; the returned reference is valid for the process lifetime.
const KernelTable& Active();

/// Isa of the active table.
Isa ActiveIsa();

/// Stable lowercase name ("scalar", "avx2", "avx512").
const char* IsaName(Isa isa);

/// True when this build AND this CPU can run `isa` (kScalar always can).
bool IsaSupported(Isa isa);

/// All supported ISAs in ascending order; always starts with kScalar.
std::vector<Isa> SupportedIsas();

/// Test hook: pins dispatch to `isa`. Returns false (dispatch unchanged)
/// when unsupported. Do not call concurrently with running queries.
bool ForceIsa(Isa isa);

/// Undoes ForceIsa: re-evaluates COCONUT_FORCE_KERNEL and CPUID.
void ResetForcedIsa();

}  // namespace kernels
}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_KERNELS_H_
