#include "series/series.h"

#include <cmath>

namespace coconut {
namespace series {

void ZNormalize(std::span<Value> values) {
  if (values.empty()) return;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (Value v : values) {
    sum += v;
    sum_sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(values.size());
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  if (variance < 1e-9) {
    for (Value& v : values) v = 0.0f;
    return;
  }
  const double inv_std = 1.0 / std::sqrt(variance);
  for (Value& v : values) {
    v = static_cast<Value>((v - mean) * inv_std);
  }
}

std::vector<Value> ZNormalized(std::span<const Value> values) {
  std::vector<Value> out(values.begin(), values.end());
  ZNormalize(out);
  return out;
}

}  // namespace series
}  // namespace coconut
