#include "series/distance.h"

#include <algorithm>
#include <cmath>

#include "series/breakpoints.h"
#include "series/kernels.h"

namespace coconut {
namespace series {

namespace {

// A shorter operand used to be read out of bounds when lengths disagreed;
// comparing the common prefix is the defined behavior now (equal lengths
// remain the contract for meaningful distances).
inline size_t CommonLength(std::span<const Value> a, std::span<const Value> b) {
  return std::min(a.size(), b.size());
}

}  // namespace

double EuclideanSquared(std::span<const Value> a, std::span<const Value> b) {
  const size_t n = CommonLength(a, b);
  if (n == 0) return 0.0;
  return kernels::Active().euclidean_sq(a.data(), b.data(), n);
}

double EuclideanSquaredEarlyAbandon(std::span<const Value> a,
                                    std::span<const Value> b,
                                    double threshold) {
  const size_t n = CommonLength(a, b);
  if (n == 0) return 0.0;
  return kernels::Active().euclidean_sq_ea(a.data(), b.data(), n, threshold);
}

void EuclideanSquaredEarlyAbandonBatch(std::span<const Value> candidate,
                                       std::span<const float* const> queries,
                                       std::span<const double> thresholds,
                                       std::span<double> out) {
  const size_t nq = queries.size();
  if (nq == 0) return;
  if (candidate.empty()) {
    std::fill_n(out.begin(), nq, 0.0);
    return;
  }
  kernels::Active().euclidean_sq_ea_batch(candidate.data(), candidate.size(),
                                          queries.data(), nq,
                                          thresholds.data(), out.data());
}

SaxRegion RegionFromSax(const SaxWord& word, const SaxConfig& config) {
  const auto& lower = Breakpoints::RegionLowerF(config.bits_per_segment);
  const auto& upper = Breakpoints::RegionUpperF(config.bits_per_segment);
  SaxRegion region;
  for (int s = 0; s < config.num_segments; ++s) {
    region.lower[s] = lower[word[s]];
    region.upper[s] = upper[word[s]];
  }
  return region;
}

SaxRegion RegionFromSymbolRange(const SaxWord& min_symbol,
                                const SaxWord& max_symbol,
                                const SaxConfig& config) {
  const auto& lower = Breakpoints::RegionLowerF(config.bits_per_segment);
  const auto& upper = Breakpoints::RegionUpperF(config.bits_per_segment);
  SaxRegion region;
  for (int s = 0; s < config.num_segments; ++s) {
    region.lower[s] = lower[min_symbol[s]];
    region.upper[s] = upper[max_symbol[s]];
  }
  return region;
}

SaxRegion RegionFromPrefix(const SaxWord& prefix,
                           std::span<const uint8_t> prefix_bits,
                           const SaxConfig& config) {
  const int full_bits = config.bits_per_segment;
  const auto& lower = Breakpoints::RegionLowerF(full_bits);
  const auto& upper = Breakpoints::RegionUpperF(full_bits);
  SaxRegion region;
  for (int s = 0; s < config.num_segments; ++s) {
    const int pb = prefix_bits[s];
    if (pb == 0) {
      region.lower[s] = -HUGE_VALF;
      region.upper[s] = HUGE_VALF;
      continue;
    }
    // The prefix fixes the top pb bits; the covered symbols at full
    // cardinality are [prefix << (full-pb), (prefix+1) << (full-pb) - 1].
    const int shift = full_bits - pb;
    const uint8_t lo_sym = static_cast<uint8_t>(prefix[s] << shift);
    const uint8_t hi_sym =
        static_cast<uint8_t>(((prefix[s] + 1u) << shift) - 1u);
    region.lower[s] = lower[lo_sym];
    region.upper[s] = upper[hi_sym];
  }
  return region;
}

double MinDistSquared(std::span<const float> query_paa,
                      const SaxRegion& region, const SaxConfig& config) {
  const double acc = kernels::Active().mindist_acc(
      query_paa.data(), region.lower.data(), region.upper.data(),
      config.num_segments);
  const double scale = static_cast<double>(config.series_length) /
                       config.num_segments;
  return scale * acc;
}

double MinDistSquaredToSax(std::span<const float> query_paa,
                           const SaxWord& word, const SaxConfig& config) {
  return MinDistSquared(query_paa, RegionFromSax(word, config), config);
}

}  // namespace series
}  // namespace coconut
