#include "series/distance.h"

#include <cmath>

#include "series/breakpoints.h"

namespace coconut {
namespace series {

namespace {

// Conservative double->float narrowing for region bounds: rounding to
// nearest could move a lower edge *up* (or an upper edge *down*), which
// would let MINDIST exceed a true distance and prune a real neighbor.
// Rounding outward keeps the bound sound at the cost of an infinitesimally
// looser region.
inline float FloorToFloat(double x) {
  if (x <= -HUGE_VAL) return -HUGE_VALF;
  float f = static_cast<float>(x);
  if (static_cast<double>(f) > x) f = std::nextafterf(f, -HUGE_VALF);
  return f;
}

inline float CeilToFloat(double x) {
  if (x >= HUGE_VAL) return HUGE_VALF;
  float f = static_cast<float>(x);
  if (static_cast<double>(f) < x) f = std::nextafterf(f, HUGE_VALF);
  return f;
}

}  // namespace

double EuclideanSquared(std::span<const Value> a, std::span<const Value> b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double EuclideanSquaredEarlyAbandon(std::span<const Value> a,
                                    std::span<const Value> b,
                                    double threshold) {
  double acc = 0.0;
  const size_t n = a.size();
  size_t i = 0;
  // Check the abandon condition every 16 points to keep the loop tight.
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; ++j, ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      acc += d * d;
    }
    if (acc > threshold) return acc;
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

SaxRegion RegionFromSax(const SaxWord& word, const SaxConfig& config) {
  SaxRegion region;
  for (int s = 0; s < config.num_segments; ++s) {
    region.lower[s] = FloorToFloat(
        Breakpoints::RegionLower(word[s], config.bits_per_segment));
    region.upper[s] = CeilToFloat(
        Breakpoints::RegionUpper(word[s], config.bits_per_segment));
  }
  return region;
}

SaxRegion RegionFromSymbolRange(const SaxWord& min_symbol,
                                const SaxWord& max_symbol,
                                const SaxConfig& config) {
  SaxRegion region;
  for (int s = 0; s < config.num_segments; ++s) {
    region.lower[s] = FloorToFloat(
        Breakpoints::RegionLower(min_symbol[s], config.bits_per_segment));
    region.upper[s] = CeilToFloat(
        Breakpoints::RegionUpper(max_symbol[s], config.bits_per_segment));
  }
  return region;
}

SaxRegion RegionFromPrefix(const SaxWord& prefix,
                           std::span<const uint8_t> prefix_bits,
                           const SaxConfig& config) {
  SaxRegion region;
  const int full_bits = config.bits_per_segment;
  for (int s = 0; s < config.num_segments; ++s) {
    const int pb = prefix_bits[s];
    if (pb == 0) {
      region.lower[s] = -HUGE_VALF;
      region.upper[s] = HUGE_VALF;
      continue;
    }
    // The prefix fixes the top pb bits; the covered symbols at full
    // cardinality are [prefix << (full-pb), (prefix+1) << (full-pb) - 1].
    const int shift = full_bits - pb;
    const uint8_t lo_sym = static_cast<uint8_t>(prefix[s] << shift);
    const uint8_t hi_sym =
        static_cast<uint8_t>(((prefix[s] + 1u) << shift) - 1u);
    region.lower[s] = FloorToFloat(Breakpoints::RegionLower(lo_sym, full_bits));
    region.upper[s] = CeilToFloat(Breakpoints::RegionUpper(hi_sym, full_bits));
  }
  return region;
}

double MinDistSquared(std::span<const float> query_paa,
                      const SaxRegion& region, const SaxConfig& config) {
  double acc = 0.0;
  for (int s = 0; s < config.num_segments; ++s) {
    double d = 0.0;
    if (query_paa[s] < region.lower[s]) {
      d = region.lower[s] - query_paa[s];
    } else if (query_paa[s] > region.upper[s]) {
      d = query_paa[s] - region.upper[s];
    }
    acc += d * d;
  }
  const double scale = static_cast<double>(config.series_length) /
                       config.num_segments;
  return scale * acc;
}

double MinDistSquaredToSax(std::span<const float> query_paa,
                           const SaxWord& word, const SaxConfig& config) {
  return MinDistSquared(query_paa, RegionFromSax(word, config), config);
}

}  // namespace series
}  // namespace coconut
