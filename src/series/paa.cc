#include "series/paa.h"

namespace coconut {
namespace series {

void ComputePaa(std::span<const Value> values, int num_segments,
                std::span<float> out) {
  const size_t n = values.size();
  const double seg_len = static_cast<double>(n) / num_segments;
  for (int s = 0; s < num_segments; ++s) {
    const double begin = s * seg_len;
    const double end = (s + 1) * seg_len;
    double acc = 0.0;
    // Whole points fully inside [begin, end), fractional ends weighted.
    size_t first = static_cast<size_t>(begin);
    size_t last = static_cast<size_t>(end) + (end > static_cast<size_t>(end) ? 1 : 0);
    if (last > n) last = n;
    for (size_t i = first; i < last; ++i) {
      double w = 1.0;
      if (static_cast<double>(i) < begin) w -= begin - i;
      if (static_cast<double>(i + 1) > end) w -= (i + 1) - end;
      acc += w * values[i];
    }
    out[s] = static_cast<float>(acc / seg_len);
  }
}

std::vector<float> ComputePaa(std::span<const Value> values,
                              int num_segments) {
  std::vector<float> out(num_segments);
  ComputePaa(values, num_segments, out);
  return out;
}

}  // namespace series
}  // namespace coconut
