#include "series/paa.h"

#include <algorithm>

#include "series/kernels.h"

namespace coconut {
namespace series {

void ComputePaa(std::span<const Value> values, int num_segments,
                std::span<float> out) {
  if (num_segments <= 0) return;
  if (values.empty()) {
    // An empty series used to divide 0/0 and emit NaN segments that poison
    // SAX words downstream; the mean of nothing is defined as 0 (the
    // z-normalized global mean) instead.
    std::fill_n(out.begin(), num_segments, 0.0f);
    return;
  }
  kernels::Active().compute_paa(values.data(), values.size(), num_segments,
                                out.data());
}

std::vector<float> ComputePaa(std::span<const Value> values,
                              int num_segments) {
  std::vector<float> out(num_segments > 0 ? num_segments : 0);
  ComputePaa(values, num_segments, out);
  return out;
}

}  // namespace series
}  // namespace coconut
