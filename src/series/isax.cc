#include "series/isax.h"

#include "series/kernels.h"
#include "series/paa.h"

namespace coconut {
namespace series {

SaxWord ComputeSaxFromPaa(std::span<const float> paa,
                          const SaxConfig& config) {
  SaxWord word{};
  kernels::Active().sax_from_paa(paa.data(), config.num_segments,
                                 config.bits_per_segment, word.data());
  return word;
}

SaxWord ComputeSax(std::span<const Value> values, const SaxConfig& config) {
  std::array<float, kMaxSegments> paa;
  ComputePaa(values, config.num_segments,
             std::span<float>(paa.data(), config.num_segments));
  return ComputeSaxFromPaa(
      std::span<const float>(paa.data(), config.num_segments), config);
}

std::string SaxWordToString(const SaxWord& word, const SaxConfig& config) {
  std::string out = "[";
  for (int s = 0; s < config.num_segments; ++s) {
    if (s > 0) out += ' ';
    out += std::to_string(static_cast<int>(word[s]));
  }
  out += ']';
  return out;
}

}  // namespace series
}  // namespace coconut
