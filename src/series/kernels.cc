#include "series/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "series/breakpoints.h"
#include "series/kernels_internal.h"

namespace coconut {
namespace series {
namespace kernels {

namespace internal {

void ComputePaaScalar(const float* values, size_t n, int num_segments,
                      float* out) {
  const double seg_len = static_cast<double>(n) / num_segments;
  for (int s = 0; s < num_segments; ++s) {
    const double begin = s * seg_len;
    const double end = (s + 1) * seg_len;
    double acc = 0.0;
    // Whole points fully inside [begin, end), fractional ends weighted.
    size_t first = static_cast<size_t>(begin);
    size_t last =
        static_cast<size_t>(end) + (end > static_cast<size_t>(end) ? 1 : 0);
    if (last > n) last = n;
    for (size_t i = first; i < last; ++i) {
      double w = 1.0;
      if (static_cast<double>(i) < begin) w -= begin - i;
      if (static_cast<double>(i + 1) > end) w -= (i + 1) - end;
      acc += w * values[i];
    }
    out[s] = static_cast<float>(acc / seg_len);
  }
}

void SaxFromPaaScalar(const float* paa, int num_segments, int bits,
                      uint8_t* out) {
  for (int s = 0; s < num_segments; ++s) {
    out[s] = Breakpoints::Quantize(paa[s], bits);
  }
}

double EuclideanSqScalar(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double EuclideanSqEaScalar(const float* a, const float* b, size_t n,
                           double threshold) {
  double acc = 0.0;
  size_t i = 0;
  // Check the abandon condition every 16 points to keep the loop tight.
  while (i + 16 <= n) {
    for (size_t j = 0; j < 16; ++j, ++i) {
      const double d = static_cast<double>(a[i]) - b[i];
      acc += d * d;
    }
    if (acc > threshold) return acc;
  }
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}

double MinDistAccScalar(const float* query_paa, const float* lower,
                        const float* upper, int num_segments) {
  double acc = 0.0;
  for (int s = 0; s < num_segments; ++s) {
    double d = 0.0;
    if (query_paa[s] < lower[s]) {
      d = lower[s] - query_paa[s];
    } else if (query_paa[s] > upper[s]) {
      d = query_paa[s] - upper[s];
    }
    acc += d * d;
  }
  return acc;
}

void EuclideanSqEaBatchScalar(const float* candidate, size_t n,
                              const float* const* queries, size_t num_queries,
                              const double* thresholds, double* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    out[q] = EuclideanSqEaScalar(queries[q], candidate, n, thresholds[q]);
  }
}

}  // namespace internal

namespace {

constexpr KernelTable kScalarTable = {
    Isa::kScalar,
    "scalar",
    &internal::ComputePaaScalar,
    &internal::SaxFromPaaScalar,
    &internal::EuclideanSqScalar,
    &internal::EuclideanSqEaScalar,
    &internal::MinDistAccScalar,
    &internal::EuclideanSqEaBatchScalar,
};

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarTable;
    case Isa::kAvx2:
      return internal::Avx2Table();
    case Isa::kAvx512:
      return internal::Avx512Table();
  }
  return nullptr;
}

bool CpuSupports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq") &&
             __builtin_cpu_supports("avx512vl");
#else
    default:
      return false;
#endif
  }
  return false;
}

const KernelTable* DetectDefault() {
  const char* env = std::getenv("COCONUT_FORCE_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    bool known = true;
    Isa forced = Isa::kScalar;
    if (std::strcmp(env, "scalar") == 0) {
      forced = Isa::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      forced = Isa::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      forced = Isa::kAvx512;
    } else {
      known = false;
    }
    if (known && IsaSupported(forced)) return TableFor(forced);
    std::fprintf(stderr,
                 "[coconut] COCONUT_FORCE_KERNEL=%s %s; using scalar kernels\n",
                 env,
                 known ? "is not supported by this build/CPU"
                       : "is not a recognized kernel tier");
    return &kScalarTable;
  }
  if (IsaSupported(Isa::kAvx512)) return TableFor(Isa::kAvx512);
  if (IsaSupported(Isa::kAvx2)) return TableFor(Isa::kAvx2);
  return &kScalarTable;
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ActiveSlow() {
  const KernelTable* detected = DetectDefault();
  const KernelTable* expected = nullptr;
  // First caller wins; a concurrent racer detects the same table anyway.
  g_active.compare_exchange_strong(expected, detected,
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const KernelTable& Active() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) t = ActiveSlow();
  return *t;
}

Isa ActiveIsa() { return Active().isa; }

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool IsaSupported(Isa isa) {
  return CpuSupports(isa) && TableFor(isa) != nullptr;
}

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (IsaSupported(isa)) out.push_back(isa);
  }
  return out;
}

bool ForceIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  g_active.store(TableFor(isa), std::memory_order_release);
  return true;
}

void ResetForcedIsa() {
  g_active.store(DetectDefault(), std::memory_order_release);
}

}  // namespace kernels
}  // namespace series
}  // namespace coconut
