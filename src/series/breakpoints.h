#ifndef COCONUT_SERIES_BREAKPOINTS_H_
#define COCONUT_SERIES_BREAKPOINTS_H_

#include <cstdint>
#include <vector>

namespace coconut {
namespace series {

/// iSAX quantization breakpoints: the 2^bits - 1 quantiles of the standard
/// normal distribution that split it into 2^bits equiprobable regions.
/// Symbol value s (0..2^bits-1) covers [breakpoint[s-1], breakpoint[s]) with
/// -inf / +inf sentinels at the ends, and symbols are ordered by value so
/// quantization is monotone — the property sortable summarizations build on.
class Breakpoints {
 public:
  /// Cached breakpoint table for `bits` in [1, 8].
  static const std::vector<double>& ForBits(int bits);

  /// Quantizes `value` to its symbol at cardinality 2^bits.
  static uint8_t Quantize(double value, int bits);

  /// Lower edge of symbol `s` at cardinality 2^bits (-HUGE_VAL for s = 0).
  static double RegionLower(uint8_t s, int bits);

  /// Upper edge of symbol `s` at cardinality 2^bits (+HUGE_VAL for the top).
  static double RegionUpper(uint8_t s, int bits);

  /// Per-symbol region edges pre-narrowed to float with conservative
  /// outward rounding (lower edges floored, upper edges ceiled) so MINDIST
  /// stays a sound lower bound. Indexed by symbol; size 2^bits, with
  /// lower[0] = -inf and upper[2^bits - 1] = +inf. Cached per `bits` so
  /// region construction on the query path is a plain table lookup.
  static const std::vector<float>& RegionLowerF(int bits);
  static const std::vector<float>& RegionUpperF(int bits);

  /// Inverse CDF of the standard normal (Acklam's rational approximation,
  /// |relative error| < 1.15e-9). Exposed for tests.
  static double InverseNormalCdf(double p);
};

}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_BREAKPOINTS_H_
