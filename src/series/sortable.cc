#include "series/sortable.h"

#include <cstdio>

namespace coconut {
namespace series {

namespace {

// Sets global key bit `t` (0 = most significant of the whole key).
inline void SetKeyBit(SortableKey* key, int t) {
  key->words[t / 64] |= 1ULL << (63 - (t % 64));
}

// Reads global key bit `t`.
inline uint8_t GetKeyBit(const SortableKey& key, int t) {
  return static_cast<uint8_t>((key.words[t / 64] >> (63 - (t % 64))) & 1ULL);
}

}  // namespace

std::string SortableKey::ToHex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(words[0]),
                static_cast<unsigned long long>(words[1]));
  return buf;
}

SortableKey InterleaveSax(const SaxWord& word, const SaxConfig& config) {
  SortableKey key;
  const int bits = config.bits_per_segment;
  const int segs = config.num_segments;
  for (int round = 0; round < bits; ++round) {
    for (int seg = 0; seg < segs; ++seg) {
      const uint8_t bit =
          static_cast<uint8_t>((word[seg] >> (bits - 1 - round)) & 1);
      if (bit != 0) SetKeyBit(&key, round * segs + seg);
    }
  }
  return key;
}

SaxWord DeinterleaveKey(const SortableKey& key, const SaxConfig& config) {
  SaxWord word{};
  const int bits = config.bits_per_segment;
  const int segs = config.num_segments;
  for (int round = 0; round < bits; ++round) {
    for (int seg = 0; seg < segs; ++seg) {
      if (GetKeyBit(key, round * segs + seg) != 0) {
        word[seg] = static_cast<uint8_t>(word[seg] |
                                         (1u << (bits - 1 - round)));
      }
    }
  }
  return word;
}

SortableKey SegmentMajorKey(const SaxWord& word, const SaxConfig& config) {
  SortableKey key;
  const int bits = config.bits_per_segment;
  const int segs = config.num_segments;
  int t = 0;
  for (int seg = 0; seg < segs; ++seg) {
    for (int b = 0; b < bits; ++b, ++t) {
      if (((word[seg] >> (bits - 1 - b)) & 1) != 0) SetKeyBit(&key, t);
    }
  }
  return key;
}

SaxWord SegmentMajorToSax(const SortableKey& key, const SaxConfig& config) {
  SaxWord word{};
  const int bits = config.bits_per_segment;
  const int segs = config.num_segments;
  int t = 0;
  for (int seg = 0; seg < segs; ++seg) {
    for (int b = 0; b < bits; ++b, ++t) {
      if (GetKeyBit(key, t) != 0) {
        word[seg] = static_cast<uint8_t>(word[seg] | (1u << (bits - 1 - b)));
      }
    }
  }
  return word;
}

}  // namespace series
}  // namespace coconut
