#ifndef COCONUT_SERIES_DISTANCE_H_
#define COCONUT_SERIES_DISTANCE_H_

#include <array>
#include <span>

#include "series/isax.h"
#include "series/series.h"

namespace coconut {
namespace series {

/// Squared Euclidean distance between two equal-length series. Mismatched
/// lengths are handled at the kernel boundary by comparing only the common
/// prefix (a shorter operand used to be read out of bounds). Dispatches to
/// the active series::kernels tier; SIMD tiers agree with scalar within
/// summation-reassociation error (each term is computed in double).
double EuclideanSquared(std::span<const Value> a, std::span<const Value> b);

/// Squared Euclidean distance that stops accumulating once it exceeds
/// `threshold` (returns a value > threshold in that case). Exact search uses
/// this to abandon raw-series comparisons early. Same length-mismatch and
/// dispatch semantics as EuclideanSquared; with threshold = +inf the result
/// is bit-identical to EuclideanSquared under the same kernel tier.
double EuclideanSquaredEarlyAbandon(std::span<const Value> a,
                                    std::span<const Value> b,
                                    double threshold);

/// Batched early abandon: scores ONE candidate series against many queries,
/// each with its own abandon threshold, writing one squared distance per
/// query into `out`. Every pointer in `queries` must reference
/// candidate.size() floats, and `thresholds` / `out` must have
/// queries.size() entries. out[q] equals
/// EuclideanSquaredEarlyAbandon(query_q, candidate, thresholds[q])
/// bit-for-bit under the same kernel tier; the batch form lets SIMD tiers
/// widen the candidate once per block and reuse it across queries.
void EuclideanSquaredEarlyAbandonBatch(std::span<const Value> candidate,
                                       std::span<const float* const> queries,
                                       std::span<const double> thresholds,
                                       std::span<double> out);

/// A hyper-rectangle in PAA space: per-segment value bounds. Regions come
/// from a single iSAX word (the cell the word quantizes to) or from a range
/// of words (e.g. everything stored in one index page).
struct SaxRegion {
  std::array<float, kMaxSegments> lower;
  std::array<float, kMaxSegments> upper;
};

/// Region of a single iSAX word at full cardinality.
SaxRegion RegionFromSax(const SaxWord& word, const SaxConfig& config);

/// Region spanned by per-segment symbol ranges [min_symbol, max_symbol];
/// used for page-level pruning where a page stores many words.
SaxRegion RegionFromSymbolRange(const SaxWord& min_symbol,
                                const SaxWord& max_symbol,
                                const SaxConfig& config);

/// Region of an iSAX prefix: only the top `prefix_bits[s]` bits of each
/// symbol are fixed (ADS+ internal nodes). `prefix_bits` of 0 leaves the
/// segment unconstrained.
SaxRegion RegionFromPrefix(const SaxWord& prefix,
                           std::span<const uint8_t> prefix_bits,
                           const SaxConfig& config);

/// MINDIST lower bound (squared) between a query's PAA vector and a region.
/// Guaranteed <= the true squared Euclidean distance between the
/// z-normalized query and any series whose summarization falls inside the
/// region. Scale factor n/w converts per-segment gaps to full-length
/// distance, as in the iSAX papers.
double MinDistSquared(std::span<const float> query_paa, const SaxRegion& region,
                      const SaxConfig& config);

/// Convenience: MINDIST from a query PAA to a single iSAX word's region.
double MinDistSquaredToSax(std::span<const float> query_paa,
                           const SaxWord& word, const SaxConfig& config);

}  // namespace series
}  // namespace coconut

#endif  // COCONUT_SERIES_DISTANCE_H_
