#ifndef COCONUT_CORE_ENTRY_H_
#define COCONUT_CORE_ENTRY_H_

#include <cstdint>
#include <cstring>

#include "series/sortable.h"

namespace coconut {
namespace core {

/// The fixed 32-byte index record every Coconut structure stores and sorts.
///
/// Non-materialized indexes store only IndexEntry records; the series body
/// stays in the raw data file and is fetched through `series_id`.
/// Materialized ("Full") indexes append the series values right after the
/// entry inside index pages, trading space and construction time for
/// queries that never touch the raw file (Section 2, space/time trade-off).
struct IndexEntry {
  series::SortableKey key;  ///< Interleaved sortable summarization.
  uint64_t series_id;       ///< Ordinal in the raw data store.
  int64_t timestamp;        ///< Arrival time; kInfinitePast for static data.

  friend bool operator==(const IndexEntry& a, const IndexEntry& b) {
    return a.key == b.key && a.series_id == b.series_id &&
           a.timestamp == b.timestamp;
  }
};
static_assert(sizeof(IndexEntry) == 32, "IndexEntry must pack to 32 bytes");
static_assert(std::is_trivially_copyable_v<IndexEntry>);

/// Timestamp used for static (non-streaming) data.
inline constexpr int64_t kNoTimestamp = 0;

/// Orders entries by sortable key, breaking ties by series id so sorts are
/// total and deterministic.
struct EntryKeyLess {
  bool operator()(const IndexEntry& a, const IndexEntry& b) const {
    if (a.key != b.key) return a.key < b.key;
    return a.series_id < b.series_id;
  }
};

/// Raw-byte comparator over serialized IndexEntry records (the external
/// sorter works on untyped fixed-size records).
inline bool EntryBytesLess(const uint8_t* a, const uint8_t* b) {
  IndexEntry ea;
  IndexEntry eb;
  std::memcpy(&ea, a, sizeof(ea));
  std::memcpy(&eb, b, sizeof(eb));
  return EntryKeyLess()(ea, eb);
}

}  // namespace core
}  // namespace coconut

#endif  // COCONUT_CORE_ENTRY_H_
