#include "core/raw_store.h"

#include <cstring>

#include "storage/page.h"

namespace coconut {
namespace core {

namespace {

using storage::kPageSize;
using storage::Page;

constexpr uint64_t kMagic = 0xC0C04A17DA7A0001ULL;
// Buffer up to 64 series (or ~1 MiB) before appending.
constexpr uint64_t kFlushSeries = 64;

}  // namespace

Result<std::unique_ptr<RawSeriesStore>> RawSeriesStore::Create(
    storage::StorageManager* storage, const std::string& name,
    int series_length) {
  if (series_length <= 0) {
    return Status::InvalidArgument("series_length must be positive");
  }
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                           storage->CreateFile(name));
  // Reserve the header page.
  Page header;
  COCONUT_RETURN_NOT_OK(file->Append(header.data(), kPageSize));
  auto store = std::unique_ptr<RawSeriesStore>(
      new RawSeriesStore(std::move(file), series_length, 0));
  COCONUT_RETURN_NOT_OK(store->WriteHeader());
  return store;
}

Result<std::unique_ptr<RawSeriesStore>> RawSeriesStore::Open(
    storage::StorageManager* storage, const std::string& name) {
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                           storage->OpenFile(name));
  Page header;
  COCONUT_RETURN_NOT_OK(file->ReadPage(0, &header));
  if (header.Read<uint64_t>(0) != kMagic) {
    return Status::InvalidArgument("'" + name + "' is not a RawSeriesStore");
  }
  const int length = static_cast<int>(header.Read<uint32_t>(8));
  const uint64_t count = header.Read<uint64_t>(16);
  return std::unique_ptr<RawSeriesStore>(
      new RawSeriesStore(std::move(file), length, count));
}

Result<std::unique_ptr<RawSeriesStore>> RawSeriesStore::OpenTruncated(
    storage::StorageManager* storage, const std::string& name,
    int series_length, uint64_t count) {
  if (series_length <= 0) {
    return Status::InvalidArgument("series_length must be positive");
  }
  std::unique_ptr<storage::File> file;
  if (storage->Exists(name)) {
    COCONUT_ASSIGN_OR_RETURN(file, storage->OpenFile(name));
  } else {
    COCONUT_ASSIGN_OR_RETURN(file, storage->CreateFile(name));
  }
  // Cut the data region to exactly `count` series: a longer file holds
  // unacknowledged appends that must not resurrect; a shorter one (lost
  // buffered tail, or a file that vanished entirely) is extended with
  // zeros and overwritten by replay.
  const uint64_t data_bytes =
      count * static_cast<uint64_t>(series_length) * sizeof(float);
  COCONUT_RETURN_NOT_OK(file->Truncate(kPageSize + data_bytes));
  auto store = std::unique_ptr<RawSeriesStore>(
      new RawSeriesStore(std::move(file), series_length, count));
  COCONUT_RETURN_NOT_OK(store->WriteHeader());
  return store;
}

Status RawSeriesStore::WriteHeader() {
  Page header;
  header.Write<uint64_t>(0, kMagic);
  header.Write<uint32_t>(8, static_cast<uint32_t>(series_length_));
  header.Write<uint64_t>(16, count_);
  return file_->WritePage(0, header);
}

Result<uint64_t> RawSeriesStore::Append(std::span<const float> values) {
  if (values.size() != static_cast<size_t>(series_length_)) {
    return Status::InvalidArgument("series length mismatch on Append");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  append_buffer_.insert(append_buffer_.end(), values.begin(), values.end());
  ++buffered_series_;
  const uint64_t id = count_++;
  if (buffered_series_ >= kFlushSeries) {
    // Drain data only; the header (a random write) is deferred to Flush()
    // so steady-state ingestion stays purely sequential.
    COCONUT_RETURN_NOT_OK(file_->Append(
        append_buffer_.data(), append_buffer_.size() * sizeof(float)));
    append_buffer_.clear();
    buffered_series_ = 0;
  }
  return id;
}

Status RawSeriesStore::Flush() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (buffered_series_ > 0) {
    COCONUT_RETURN_NOT_OK(file_->Append(
        append_buffer_.data(), append_buffer_.size() * sizeof(float)));
    append_buffer_.clear();
    buffered_series_ = 0;
  }
  return WriteHeader();
}

Status RawSeriesStore::Sync() {
  COCONUT_RETURN_NOT_OK(Flush());
  std::unique_lock<std::shared_mutex> lock(mu_);
  return file_->Sync();
}

Status RawSeriesStore::Get(uint64_t id, std::span<float> out) const {
  if (out.size() != static_cast<size_t>(series_length_)) {
    return Status::InvalidArgument("output span length mismatch");
  }
  // Shared: concurrent readers proceed together (preads are independent),
  // while Append/Flush take the lock exclusively to move the buffer.
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= count_) {
    return Status::NotFound("series id " + std::to_string(id) +
                            " out of range");
  }
  const uint64_t persisted = count_ - buffered_series_;
  if (id >= persisted) {
    // Still in the append buffer.
    const size_t pos =
        static_cast<size_t>(id - persisted) * series_length_;
    std::memcpy(out.data(), append_buffer_.data() + pos,
                series_length_ * sizeof(float));
    return Status::OK();
  }
  const uint64_t offset =
      kPageSize + id * static_cast<uint64_t>(series_length_) * sizeof(float);
  return file_->ReadAt(offset, out.data(), series_length_ * sizeof(float));
}

}  // namespace core
}  // namespace coconut
