#ifndef COCONUT_CORE_INDEX_H_
#define COCONUT_CORE_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/status.h"
#include "core/types.h"

namespace coconut {
namespace core {

/// Uniform facade over every static index family in the Figure-1 matrix
/// (ADS+, CTree, CLSM — materialized or not). The Palm server, the factory
/// and the streaming wrappers all speak this interface.
///
/// Lifecycle: Insert() any number of series (z-normalized), then
/// Finalize(). For bulk-built structures (CTree) Insert before Finalize
/// feeds the construction sort and queries are only legal afterwards; for
/// incremental structures (CLSM, ADS+) Finalize merely drains buffers.
/// Post-Finalize Inserts are supported by every family (the B-tree takes
/// the top-down insert path with its fill-factor slack).
class DataSeriesIndex {
 public:
  virtual ~DataSeriesIndex() = default;

  /// Adds one z-normalized series under `series_id`.
  virtual Status Insert(uint64_t series_id,
                        std::span<const float> znorm_values,
                        int64_t timestamp) = 0;

  /// Seals construction / drains buffers. Idempotent.
  virtual Status Finalize() = 0;

  virtual Result<SearchResult> ApproxSearch(std::span<const float> query,
                                            const SearchOptions& options,
                                            QueryCounters* counters) = 0;

  virtual Result<SearchResult> ExactSearch(std::span<const float> query,
                                           const SearchOptions& options,
                                           QueryCounters* counters) = 0;

  /// Exact search for a batch of same-length queries under one set of
  /// options. `results` must have queries.size() slots; `counters`, when
  /// non-empty, must too (one per query). Families with a shared-scan
  /// implementation override this so each candidate read is scored against
  /// every query (the batched distance kernels); the default is a
  /// sequential loop, so the batch form is always exact — per-query results
  /// match ExactSearch up to tie-breaks among equidistant series.
  virtual Status ExactSearchBatch(std::span<const std::span<const float>> queries,
                                  const SearchOptions& options,
                                  std::span<SearchResult> results,
                                  std::span<QueryCounters> counters) {
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryCounters* c = counters.empty() ? nullptr : &counters[i];
      COCONUT_ASSIGN_OR_RETURN(results[i], ExactSearch(queries[i], options, c));
    }
    return Status::OK();
  }

  virtual uint64_t num_entries() const = 0;

  /// Bytes of index structures on disk (excludes the raw data file).
  virtual uint64_t index_bytes() const = 0;

  /// Human-readable variant name, e.g. "CTreeFull".
  virtual std::string describe() const = 0;

  /// Monotonic snapshot-version stamp: bumped on every mutation that can
  /// change any query answer (Insert admission, Finalize, background
  /// publication of sealed runs/partitions). Two equal reads bracketing a
  /// query prove the query saw a single stable snapshot, which is what the
  /// service-layer answer cache keys its validity on. Never decreases.
  ///
  /// Adapters over composite structures (CLSM, sharded fan-outs) override
  /// this to expose the inner structure's counter (or a monotone sum of
  /// per-shard counters — sound because every component only increases).
  virtual uint64_t snapshot_version() const {
    return snapshot_version_.load(std::memory_order_acquire);
  }

 protected:
  /// Marks a mutation; implementations call this at every admission /
  /// publication site. Thread-safe.
  void BumpSnapshotVersion() {
    snapshot_version_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> snapshot_version_{0};
};

}  // namespace core
}  // namespace coconut

#endif  // COCONUT_CORE_INDEX_H_
