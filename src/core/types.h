#ifndef COCONUT_CORE_TYPES_H_
#define COCONUT_CORE_TYPES_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace coconut {
namespace core {

/// Closed time interval [begin, end] over entry timestamps. Streaming
/// queries ("find the nearest neighbor within the last hour") carry one.
struct TimeWindow {
  int64_t begin = std::numeric_limits<int64_t>::min();
  int64_t end = std::numeric_limits<int64_t>::max();

  bool Contains(int64_t t) const { return t >= begin && t <= end; }

  bool Intersects(int64_t lo, int64_t hi) const {
    return lo <= end && hi >= begin;
  }

  /// Whether [lo, hi] lies entirely inside the window (no per-entry
  /// timestamp checks needed for such a partition).
  bool Covers(int64_t lo, int64_t hi) const { return begin <= lo && hi <= end; }

  static TimeWindow All() { return TimeWindow{}; }
};

/// Outcome of a similarity query.
struct SearchResult {
  bool found = false;
  uint64_t series_id = 0;
  /// Squared Euclidean distance between the (z-normalized) query and match.
  double distance_sq = std::numeric_limits<double>::infinity();
  int64_t timestamp = 0;

  /// Replaces this result if `other` is closer.
  void Improve(const SearchResult& other) {
    if (other.found && other.distance_sq < distance_sq) *this = other;
  }
};

/// Per-query knobs.
struct SearchOptions {
  /// Temporal constraint; entries outside are ignored. Default: unbounded.
  TimeWindow window = TimeWindow::All();
  /// How many best-summarization candidates an approximate search verifies
  /// against the raw series (non-materialized indexes pay one random I/O
  /// per verification).
  int approx_candidates = 10;
};

/// Counters describing how one query executed (reported next to IoStats).
struct QueryCounters {
  uint64_t leaves_visited = 0;
  uint64_t leaves_pruned = 0;
  uint64_t entries_examined = 0;
  uint64_t raw_fetches = 0;
  uint64_t partitions_visited = 0;
  uint64_t partitions_skipped = 0;

  void Reset() { *this = QueryCounters{}; }

  /// Accumulates counters gathered on another thread (scatter-gather
  /// queries run each shard/partition with a private QueryCounters and
  /// merge at the join point — counter objects are never shared across
  /// running threads). One helper so every gather site picks up future
  /// counters automatically.
  void Add(const QueryCounters& other) {
    leaves_visited += other.leaves_visited;
    leaves_pruned += other.leaves_pruned;
    entries_examined += other.entries_examined;
    raw_fetches += other.raw_fetches;
    partitions_visited += other.partitions_visited;
    partitions_skipped += other.partitions_skipped;
  }
};

}  // namespace core
}  // namespace coconut

#endif  // COCONUT_CORE_TYPES_H_
