#ifndef COCONUT_CORE_ADAPTERS_H_
#define COCONUT_CORE_ADAPTERS_H_

#include <memory>
#include <string>

#include "ads/ads_index.h"
#include "clsm/clsm.h"
#include "core/index.h"
#include "ctree/ctree.h"

namespace coconut {
namespace core {

/// CTree behind the DataSeriesIndex facade. Inserts before Finalize feed
/// the external-sort bulk build; after Finalize they take the B-tree's
/// top-down insert path (leaf rewrite or split).
class CTreeIndexAdapter : public DataSeriesIndex {
 public:
  static Result<std::unique_ptr<CTreeIndexAdapter>> Create(
      storage::StorageManager* storage, const std::string& name,
      const ctree::CTree::Options& options, storage::BufferPool* pool,
      RawSeriesStore* raw);

  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override;
  Status Finalize() override;
  Result<SearchResult> ApproxSearch(std::span<const float> query,
                                    const SearchOptions& options,
                                    QueryCounters* counters) override;
  Result<SearchResult> ExactSearch(std::span<const float> query,
                                   const SearchOptions& options,
                                   QueryCounters* counters) override;
  /// Shared-scan batch path (seqtable::ExactScanTableMulti + batched
  /// distance kernels) instead of the base class's sequential loop.
  Status ExactSearchBatch(std::span<const std::span<const float>> queries,
                          const SearchOptions& options,
                          std::span<SearchResult> results,
                          std::span<QueryCounters> counters) override;
  uint64_t num_entries() const override;
  uint64_t index_bytes() const override;
  std::string describe() const override;

  /// Valid only after Finalize().
  ctree::CTree* tree() { return tree_.get(); }

 private:
  CTreeIndexAdapter(storage::StorageManager* storage, std::string name,
                    const ctree::CTree::Options& options,
                    storage::BufferPool* pool, RawSeriesStore* raw)
      : storage_(storage),
        name_(std::move(name)),
        options_(options),
        pool_(pool),
        raw_(raw) {}

  storage::StorageManager* storage_;
  std::string name_;
  ctree::CTree::Options options_;
  storage::BufferPool* pool_;
  RawSeriesStore* raw_;
  std::unique_ptr<ctree::CTree::Builder> builder_;
  std::unique_ptr<ctree::CTree> tree_;
  uint64_t pending_ = 0;
};

/// CLSM behind the facade (already incremental; Finalize = flush).
class ClsmIndexAdapter : public DataSeriesIndex {
 public:
  static Result<std::unique_ptr<ClsmIndexAdapter>> Create(
      storage::StorageManager* storage, const std::string& name,
      const clsm::Clsm::Options& options, storage::BufferPool* pool,
      RawSeriesStore* raw);

  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    return lsm_->Insert(series_id, znorm_values, timestamp);
  }
  Status Finalize() override { return lsm_->FlushBuffer(); }
  Result<SearchResult> ApproxSearch(std::span<const float> query,
                                    const SearchOptions& options,
                                    QueryCounters* counters) override {
    return lsm_->ApproxSearch(query, options, counters);
  }
  Result<SearchResult> ExactSearch(std::span<const float> query,
                                   const SearchOptions& options,
                                   QueryCounters* counters) override {
    return lsm_->ExactSearch(query, options, counters);
  }
  uint64_t num_entries() const override { return lsm_->num_entries(); }
  uint64_t index_bytes() const override { return lsm_->total_file_bytes(); }
  std::string describe() const override;

  /// CLSM mutates itself through background flush/merge cascades the
  /// adapter never sees, so the version lives inside the structure.
  uint64_t snapshot_version() const override {
    return lsm_->snapshot_version();
  }

  clsm::Clsm* lsm() { return lsm_.get(); }

 private:
  explicit ClsmIndexAdapter(std::unique_ptr<clsm::Clsm> lsm)
      : lsm_(std::move(lsm)) {}

  std::unique_ptr<clsm::Clsm> lsm_;
};

/// ADS+ behind the facade (incremental; Finalize = flush buffers).
class AdsIndexAdapter : public DataSeriesIndex {
 public:
  static Result<std::unique_ptr<AdsIndexAdapter>> Create(
      storage::StorageManager* storage, const std::string& name,
      const ads::AdsIndex::Options& options, RawSeriesStore* raw);

  Status Insert(uint64_t series_id, std::span<const float> znorm_values,
                int64_t timestamp) override {
    Status status = ads_->Insert(series_id, znorm_values, timestamp);
    if (status.ok()) BumpSnapshotVersion();
    return status;
  }
  Status Finalize() override {
    COCONUT_RETURN_NOT_OK(ads_->FlushAll());
    BumpSnapshotVersion();
    return Status::OK();
  }
  Result<SearchResult> ApproxSearch(std::span<const float> query,
                                    const SearchOptions& options,
                                    QueryCounters* counters) override {
    return ads_->ApproxSearch(query, options, counters);
  }
  Result<SearchResult> ExactSearch(std::span<const float> query,
                                   const SearchOptions& options,
                                   QueryCounters* counters) override {
    return ads_->ExactSearch(query, options, counters);
  }
  uint64_t num_entries() const override { return ads_->num_entries(); }
  uint64_t index_bytes() const override { return ads_->total_file_bytes(); }
  std::string describe() const override;

  ads::AdsIndex* ads() { return ads_.get(); }

 private:
  explicit AdsIndexAdapter(std::unique_ptr<ads::AdsIndex> ads)
      : ads_(std::move(ads)) {}

  std::unique_ptr<ads::AdsIndex> ads_;
};

}  // namespace core
}  // namespace coconut

#endif  // COCONUT_CORE_ADAPTERS_H_
