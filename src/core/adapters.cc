#include "core/adapters.h"

namespace coconut {
namespace core {

// -------------------------------------------------------------- CTree

Result<std::unique_ptr<CTreeIndexAdapter>> CTreeIndexAdapter::Create(
    storage::StorageManager* storage, const std::string& name,
    const ctree::CTree::Options& options, storage::BufferPool* pool,
    RawSeriesStore* raw) {
  auto adapter = std::unique_ptr<CTreeIndexAdapter>(
      new CTreeIndexAdapter(storage, name, options, pool, raw));
  COCONUT_ASSIGN_OR_RETURN(adapter->builder_,
                           ctree::CTree::Builder::Create(storage, name,
                                                         options));
  return adapter;
}

Status CTreeIndexAdapter::Insert(uint64_t series_id,
                                 std::span<const float> znorm_values,
                                 int64_t timestamp) {
  Status status;
  if (tree_ != nullptr) {
    status = tree_->Insert(series_id, znorm_values, timestamp);
  } else {
    ++pending_;
    status = builder_->Add(series_id, znorm_values, timestamp);
  }
  if (status.ok()) BumpSnapshotVersion();
  return status;
}

Status CTreeIndexAdapter::Finalize() {
  if (tree_ != nullptr) {
    COCONUT_RETURN_NOT_OK(tree_->Flush());
    BumpSnapshotVersion();
    return Status::OK();
  }
  COCONUT_ASSIGN_OR_RETURN(tree_, builder_->Finish(pool_, raw_));
  builder_.reset();
  BumpSnapshotVersion();
  return Status::OK();
}

Result<SearchResult> CTreeIndexAdapter::ApproxSearch(
    std::span<const float> query, const SearchOptions& options,
    QueryCounters* counters) {
  if (tree_ == nullptr) {
    return Status::Internal("CTree queried before Finalize()");
  }
  return tree_->ApproxSearch(query, options, counters);
}

Result<SearchResult> CTreeIndexAdapter::ExactSearch(
    std::span<const float> query, const SearchOptions& options,
    QueryCounters* counters) {
  if (tree_ == nullptr) {
    return Status::Internal("CTree queried before Finalize()");
  }
  return tree_->ExactSearch(query, options, counters);
}

Status CTreeIndexAdapter::ExactSearchBatch(
    std::span<const std::span<const float>> queries,
    const SearchOptions& options, std::span<SearchResult> results,
    std::span<QueryCounters> counters) {
  if (tree_ == nullptr) {
    return Status::Internal("CTree queried before Finalize()");
  }
  return tree_->ExactSearchBatch(queries, options, results, counters);
}

uint64_t CTreeIndexAdapter::num_entries() const {
  return tree_ != nullptr ? tree_->num_entries() : pending_;
}

uint64_t CTreeIndexAdapter::index_bytes() const {
  return tree_ != nullptr ? tree_->file_bytes() : 0;
}

std::string CTreeIndexAdapter::describe() const {
  return options_.materialized ? "CTreeFull" : "CTree";
}

// -------------------------------------------------------------- CLSM

Result<std::unique_ptr<ClsmIndexAdapter>> ClsmIndexAdapter::Create(
    storage::StorageManager* storage, const std::string& name,
    const clsm::Clsm::Options& options, storage::BufferPool* pool,
    RawSeriesStore* raw) {
  COCONUT_ASSIGN_OR_RETURN(
      std::unique_ptr<clsm::Clsm> lsm,
      clsm::Clsm::Create(storage, name, options, pool, raw));
  return std::unique_ptr<ClsmIndexAdapter>(
      new ClsmIndexAdapter(std::move(lsm)));
}

std::string ClsmIndexAdapter::describe() const {
  return lsm_->options().materialized ? "CLSMFull" : "CLSM";
}

// -------------------------------------------------------------- ADS+

Result<std::unique_ptr<AdsIndexAdapter>> AdsIndexAdapter::Create(
    storage::StorageManager* storage, const std::string& name,
    const ads::AdsIndex::Options& options, RawSeriesStore* raw) {
  COCONUT_ASSIGN_OR_RETURN(std::unique_ptr<ads::AdsIndex> ads,
                           ads::AdsIndex::Create(storage, name, options, raw));
  return std::unique_ptr<AdsIndexAdapter>(new AdsIndexAdapter(std::move(ads)));
}

std::string AdsIndexAdapter::describe() const {
  return ads_->options().materialized ? "ADSFull" : "ADS+";
}

}  // namespace core
}  // namespace coconut
