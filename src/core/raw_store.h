#ifndef COCONUT_CORE_RAW_STORE_H_
#define COCONUT_CORE_RAW_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>

#include "common/status.h"
#include "storage/storage_manager.h"

namespace coconut {
namespace core {

/// The raw data series file. Series are appended once (sequential writes,
/// buffered) and fetched by ordinal id (one random read each) — the
/// "access the raw data file to fetch the original data series" cost that
/// non-materialized indexes pay at query time (Section 2 of the paper).
///
/// Thread-safe: one writer may Append/Flush while any number of readers
/// Get concurrently (readers share the lock; fetches of persisted series
/// are plain preads). Concurrent streaming ingest+query needs exactly
/// this — the ingester appends the series before handing it to the index,
/// so any id a query discovers is already fetchable.
class RawSeriesStore {
 public:
  /// Creates an empty store for series of `series_length` points.
  static Result<std::unique_ptr<RawSeriesStore>> Create(
      storage::StorageManager* storage, const std::string& name,
      int series_length);

  /// Opens an existing store.
  static Result<std::unique_ptr<RawSeriesStore>> Open(
      storage::StorageManager* storage, const std::string& name);

  /// Crash-recovery open: opens `name` if it exists (creating it fresh
  /// otherwise) and truncates it to exactly `count` series — the count the
  /// write-ahead log proved durable. A crashed process may have left fewer
  /// series (buffered tail lost) or more (appended but never acknowledged);
  /// replay re-appends from the log either way, so the file is cut back to
  /// the durable prefix and the header rewritten.
  static Result<std::unique_ptr<RawSeriesStore>> OpenTruncated(
      storage::StorageManager* storage, const std::string& name,
      int series_length, uint64_t count);

  /// Appends one series (values.size() must equal series_length); returns
  /// its id. Writes are buffered; call Flush() before reading new ids.
  Result<uint64_t> Append(std::span<const float> values);

  /// Reads series `id` into `out` (size series_length).
  Status Get(uint64_t id, std::span<float> out) const;

  /// Drains the append buffer and persists the header.
  Status Flush();

  /// Flush + fsync: after this returns, every appended series survives a
  /// crash. The write-ahead log syncs the raw file before truncating its
  /// own tail (the log is the only other copy of those payloads).
  Status Sync();

  uint64_t count() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return count_;
  }
  int series_length() const { return series_length_; }
  uint64_t file_bytes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return file_->size_bytes();
  }

 private:
  RawSeriesStore(std::unique_ptr<storage::File> file, int series_length,
                 uint64_t count)
      : file_(std::move(file)), series_length_(series_length), count_(count) {}

  Status WriteHeader();

  mutable std::shared_mutex mu_;
  std::unique_ptr<storage::File> file_;
  const int series_length_;
  uint64_t count_;
  std::vector<float> append_buffer_;
  uint64_t buffered_series_ = 0;
};

}  // namespace core
}  // namespace coconut

#endif  // COCONUT_CORE_RAW_STORE_H_
