#ifndef COCONUT_WORKLOAD_SEISMIC_H_
#define COCONUT_WORKLOAD_SEISMIC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "series/series.h"

namespace coconut {
namespace workload {

/// One timestamped batch of a seismic stream.
struct SeismicBatch {
  series::SeriesCollection series;
  std::vector<int64_t> timestamps;
  /// Which series in the batch contain an earthquake signature.
  std::vector<bool> has_event;

  explicit SeismicBatch(size_t length) : series(length) {}
};

/// Synthetic substitute for the IRIS seismic feed of Scenario 2 (see
/// DESIGN.md substitutions): continuous microseism background with
/// Poisson-arriving earthquake signatures (impulsive P-wave onset followed
/// by a larger S-wave with an exponentially decaying coda). Batches carry
/// monotonically increasing timestamps, modelling windows cut from a live
/// channel.
class SeismicGenerator {
 public:
  struct Options {
    size_t series_length = 256;
    size_t batch_size = 256;
    /// Probability that any one series in a batch contains an event.
    double event_probability = 0.05;
    /// Event amplitude relative to background sigma.
    double signal_to_noise = 8.0;
    /// Timestamp step between consecutive series in the stream.
    int64_t tick = 1;
    uint64_t seed = 7;
  };

  explicit SeismicGenerator(const Options& options)
      : options_(options), rng_(options.seed) {}

  /// Produces the next batch; timestamps continue from the previous batch.
  SeismicBatch NextBatch();

  /// A clean earthquake signature template (z-normalized) for querying.
  std::vector<float> EarthquakeTemplate(uint64_t seed) const;

  int64_t current_time() const { return now_; }

 private:
  std::vector<float> Background();
  void AddEarthquake(std::vector<float>* trace, Rng* rng) const;

  Options options_;
  Rng rng_;
  int64_t now_ = 0;
};

}  // namespace workload
}  // namespace coconut

#endif  // COCONUT_WORKLOAD_SEISMIC_H_
