#include "workload/generator.h"

namespace coconut {
namespace workload {

std::vector<float> RandomWalkGenerator::Next() {
  std::vector<float> values(length_);
  double x = 0.0;
  for (size_t i = 0; i < length_; ++i) {
    x += rng_.NextGaussian();
    values[i] = static_cast<float>(x);
  }
  series::ZNormalize(values);
  return values;
}

series::SeriesCollection RandomWalkGenerator::Generate(size_t count) {
  series::SeriesCollection collection(length_);
  collection.Reserve(count);
  for (size_t i = 0; i < count; ++i) collection.Append(Next());
  return collection;
}

std::vector<std::vector<float>> MakeNoisyQueries(
    const series::SeriesCollection& collection, size_t count, double noise,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> queries;
  queries.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    const size_t base = rng.NextBounded(collection.size());
    std::vector<float> query(collection[base].begin(),
                             collection[base].end());
    for (float& v : query) {
      v += static_cast<float>(noise * rng.NextGaussian());
    }
    series::ZNormalize(query);
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace workload
}  // namespace coconut
