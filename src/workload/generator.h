#ifndef COCONUT_WORKLOAD_GENERATOR_H_
#define COCONUT_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "series/series.h"

namespace coconut {
namespace workload {

/// The standard synthetic workload of the data series indexing literature:
/// cumulative sums of Gaussian steps, z-normalized.
class RandomWalkGenerator {
 public:
  RandomWalkGenerator(size_t series_length, uint64_t seed)
      : length_(series_length), rng_(seed) {}

  /// Generates one z-normalized series.
  std::vector<float> Next();

  /// Generates a collection of `count` series.
  series::SeriesCollection Generate(size_t count);

 private:
  size_t length_;
  Rng rng_;
};

/// Query workload: noisy copies of indexed series (the "known patterns"
/// the demo searches for) re-normalized. `noise` is the per-point Gaussian
/// sigma added before re-normalization.
std::vector<std::vector<float>> MakeNoisyQueries(
    const series::SeriesCollection& collection, size_t count, double noise,
    uint64_t seed);

}  // namespace workload
}  // namespace coconut

#endif  // COCONUT_WORKLOAD_GENERATOR_H_
