#ifndef COCONUT_WORKLOAD_ASTRONOMY_H_
#define COCONUT_WORKLOAD_ASTRONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "series/series.h"

namespace coconut {
namespace workload {

/// What a synthetic light curve contains (Scenario 1 searches for the
/// "known patterns of interest — a supernova, a binary star, etc.").
enum class AstronomyClass {
  kNoise,        ///< Red-noise background only.
  kBinaryStar,   ///< Periodic eclipse dips.
  kSupernova,    ///< Fast-rise, exponential-decay transient.
  kVariableStar, ///< Smooth sinusoidal pulsation.
};

const char* AstronomyClassName(AstronomyClass c);

/// Synthetic substitute for the demo's "large collection of raw astronomy
/// data series" (see DESIGN.md substitutions): red-noise light curves with
/// planted, parameter-randomized astrophysical patterns. The generator
/// remembers each series' class so experiments can verify that searching
/// with a pattern template really retrieves series of that class.
class AstronomyGenerator {
 public:
  struct Options {
    size_t series_length = 256;
    /// Fraction of series carrying each pattern (remainder is noise).
    double binary_fraction = 0.05;
    double supernova_fraction = 0.05;
    double variable_fraction = 0.05;
    /// Pattern amplitude relative to the noise sigma.
    double signal_to_noise = 6.0;
    uint64_t seed = 42;
  };

  explicit AstronomyGenerator(const Options& options) : options_(options), rng_(options.seed) {}

  /// Generates `count` z-normalized light curves; labels() afterwards has
  /// one class per series.
  series::SeriesCollection Generate(size_t count);

  const std::vector<AstronomyClass>& labels() const { return labels_; }

  /// A clean (noise-free) z-normalized template of a pattern class, usable
  /// as a query target.
  std::vector<float> PatternTemplate(AstronomyClass c, uint64_t seed) const;

 private:
  std::vector<float> NoiseCurve();
  void AddBinaryStar(std::vector<float>* curve, Rng* rng) const;
  void AddSupernova(std::vector<float>* curve, Rng* rng) const;
  void AddVariableStar(std::vector<float>* curve, Rng* rng) const;

  Options options_;
  Rng rng_;
  std::vector<AstronomyClass> labels_;
};

}  // namespace workload
}  // namespace coconut

#endif  // COCONUT_WORKLOAD_ASTRONOMY_H_
