#include "workload/astronomy.h"

#include <cmath>
#include <numbers>

namespace coconut {
namespace workload {

const char* AstronomyClassName(AstronomyClass c) {
  switch (c) {
    case AstronomyClass::kNoise:
      return "noise";
    case AstronomyClass::kBinaryStar:
      return "binary_star";
    case AstronomyClass::kSupernova:
      return "supernova";
    case AstronomyClass::kVariableStar:
      return "variable_star";
  }
  return "?";
}

std::vector<float> AstronomyGenerator::NoiseCurve() {
  // AR(1) red noise: photometric measurements are correlated in time.
  std::vector<float> curve(options_.series_length);
  double x = 0.0;
  const double phi = 0.9;
  for (size_t i = 0; i < curve.size(); ++i) {
    x = phi * x + rng_.NextGaussian();
    curve[i] = static_cast<float>(x);
  }
  return curve;
}

void AstronomyGenerator::AddBinaryStar(std::vector<float>* curve,
                                       Rng* rng) const {
  // Eclipsing binary: periodic box-shaped brightness dips.
  const size_t n = curve->size();
  const size_t period = n / (2 + rng->NextBounded(6));     // 2..7 eclipses.
  const size_t dip_width = std::max<size_t>(2, period / 8);
  const size_t phase = rng->NextBounded(period);
  const double depth = options_.signal_to_noise * (0.8 + 0.4 * rng->NextDouble());
  for (size_t i = phase; i < n; i += period) {
    for (size_t j = i; j < std::min(n, i + dip_width); ++j) {
      (*curve)[j] -= static_cast<float>(depth);
    }
  }
}

void AstronomyGenerator::AddSupernova(std::vector<float>* curve,
                                      Rng* rng) const {
  // Transient: sharp rise over ~3% of the curve, exponential decay after.
  const size_t n = curve->size();
  const size_t onset = n / 8 + rng->NextBounded(n / 2);
  const size_t rise = std::max<size_t>(2, n / 32);
  const double peak = options_.signal_to_noise * (1.0 + rng->NextDouble());
  const double decay_tau = n / 6.0;
  for (size_t i = onset; i < n; ++i) {
    double level;
    if (i < onset + rise) {
      level = peak * static_cast<double>(i - onset + 1) / rise;
    } else {
      level = peak * std::exp(-static_cast<double>(i - onset - rise) /
                              decay_tau);
    }
    (*curve)[i] += static_cast<float>(level);
  }
}

void AstronomyGenerator::AddVariableStar(std::vector<float>* curve,
                                         Rng* rng) const {
  // Pulsating variable: smooth sinusoid with random period and phase.
  const size_t n = curve->size();
  const double cycles = 1.5 + 4.0 * rng->NextDouble();
  const double phase = 2.0 * std::numbers::pi * rng->NextDouble();
  const double amplitude =
      options_.signal_to_noise * (0.6 + 0.6 * rng->NextDouble());
  for (size_t i = 0; i < n; ++i) {
    (*curve)[i] += static_cast<float>(
        amplitude *
        std::sin(2.0 * std::numbers::pi * cycles * i / n + phase));
  }
}

series::SeriesCollection AstronomyGenerator::Generate(size_t count) {
  series::SeriesCollection collection(options_.series_length);
  collection.Reserve(count);
  labels_.clear();
  labels_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<float> curve = NoiseCurve();
    const double dice = rng_.NextDouble();
    AstronomyClass cls = AstronomyClass::kNoise;
    if (dice < options_.binary_fraction) {
      cls = AstronomyClass::kBinaryStar;
      AddBinaryStar(&curve, &rng_);
    } else if (dice < options_.binary_fraction +
                          options_.supernova_fraction) {
      cls = AstronomyClass::kSupernova;
      AddSupernova(&curve, &rng_);
    } else if (dice < options_.binary_fraction +
                          options_.supernova_fraction +
                          options_.variable_fraction) {
      cls = AstronomyClass::kVariableStar;
      AddVariableStar(&curve, &rng_);
    }
    series::ZNormalize(curve);
    collection.Append(curve);
    labels_.push_back(cls);
  }
  return collection;
}

std::vector<float> AstronomyGenerator::PatternTemplate(AstronomyClass c,
                                                       uint64_t seed) const {
  Rng rng(seed);
  std::vector<float> curve(options_.series_length, 0.0f);
  switch (c) {
    case AstronomyClass::kNoise:
      for (float& v : curve) v = static_cast<float>(rng.NextGaussian());
      break;
    case AstronomyClass::kBinaryStar:
      AddBinaryStar(&curve, &rng);
      break;
    case AstronomyClass::kSupernova:
      AddSupernova(&curve, &rng);
      break;
    case AstronomyClass::kVariableStar:
      AddVariableStar(&curve, &rng);
      break;
  }
  series::ZNormalize(curve);
  return curve;
}

}  // namespace workload
}  // namespace coconut
