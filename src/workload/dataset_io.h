#ifndef COCONUT_WORKLOAD_DATASET_IO_H_
#define COCONUT_WORKLOAD_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "series/series.h"

namespace coconut {
namespace workload {

/// Writes a collection as the flat binary row-major float32 format used by
/// the public data series benchmarks (and the original Coconut code):
/// count * length floats, no header. Shape travels out of band.
Status WriteDataset(const std::string& path,
                    const series::SeriesCollection& collection);

/// Reads a flat float32 dataset of fixed-length series. The file size must
/// be a multiple of series_length * 4.
Result<series::SeriesCollection> ReadDataset(const std::string& path,
                                             size_t series_length);

}  // namespace workload
}  // namespace coconut

#endif  // COCONUT_WORKLOAD_DATASET_IO_H_
