#include "workload/seismic.h"

#include <cmath>
#include <numbers>

namespace coconut {
namespace workload {

std::vector<float> SeismicGenerator::Background() {
  // Microseism: band-limited noise modelled as an AR(2) process with a
  // gentle oscillatory component (ocean-wave band).
  std::vector<float> trace(options_.series_length);
  double x1 = 0.0;
  double x2 = 0.0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const double x = 1.6 * x1 - 0.7 * x2 + rng_.NextGaussian();
    trace[i] = static_cast<float>(x);
    x2 = x1;
    x1 = x;
  }
  return trace;
}

void SeismicGenerator::AddEarthquake(std::vector<float>* trace,
                                     Rng* rng) const {
  const size_t n = trace->size();
  const size_t p_onset = n / 8 + rng->NextBounded(n / 3);
  // S-wave follows the P-wave after a travel-time gap.
  const size_t sp_gap = n / 16 + rng->NextBounded(n / 8);
  const size_t s_onset = std::min(n - 1, p_onset + sp_gap);
  const double p_amp = options_.signal_to_noise * 0.4;
  const double s_amp = options_.signal_to_noise;
  const double p_tau = n / 24.0;
  const double s_tau = n / 8.0;
  const double p_freq = 8.0 + 6.0 * rng->NextDouble();   // Higher frequency.
  const double s_freq = 3.0 + 3.0 * rng->NextDouble();   // Lower, stronger.
  for (size_t i = p_onset; i < n; ++i) {
    const double t = static_cast<double>(i - p_onset);
    const double envelope = p_amp * (t / 2.0 + 1.0) * std::exp(-t / p_tau);
    (*trace)[i] += static_cast<float>(
        envelope *
        std::sin(2.0 * std::numbers::pi * p_freq * i / n));
  }
  for (size_t i = s_onset; i < n; ++i) {
    const double t = static_cast<double>(i - s_onset);
    const double envelope = s_amp * (t / 3.0 + 1.0) * std::exp(-t / s_tau);
    (*trace)[i] += static_cast<float>(
        envelope *
        std::sin(2.0 * std::numbers::pi * s_freq * i / n));
  }
}

SeismicBatch SeismicGenerator::NextBatch() {
  SeismicBatch batch(options_.series_length);
  batch.series.Reserve(options_.batch_size);
  batch.timestamps.reserve(options_.batch_size);
  batch.has_event.reserve(options_.batch_size);
  for (size_t i = 0; i < options_.batch_size; ++i) {
    std::vector<float> trace = Background();
    const bool event = rng_.NextDouble() < options_.event_probability;
    if (event) AddEarthquake(&trace, &rng_);
    series::ZNormalize(trace);
    batch.series.Append(trace);
    batch.timestamps.push_back(now_);
    batch.has_event.push_back(event);
    now_ += options_.tick;
  }
  return batch;
}

std::vector<float> SeismicGenerator::EarthquakeTemplate(uint64_t seed) const {
  Rng rng(seed);
  std::vector<float> trace(options_.series_length, 0.0f);
  AddEarthquake(&trace, &rng);
  series::ZNormalize(trace);
  return trace;
}

}  // namespace workload
}  // namespace coconut
