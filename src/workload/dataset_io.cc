#include "workload/dataset_io.h"

#include <cstdio>

namespace coconut {
namespace workload {

Status WriteDataset(const std::string& path,
                    const series::SeriesCollection& collection) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const auto& data = collection.data();
  const size_t written = std::fwrite(data.data(), sizeof(float), data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<series::SeriesCollection> ReadDataset(const std::string& path,
                                             size_t series_length) {
  if (series_length == 0) {
    return Status::InvalidArgument("series_length must be > 0");
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0 ||
      static_cast<size_t>(size) % (series_length * sizeof(float)) != 0) {
    std::fclose(f);
    return Status::InvalidArgument(
        "'" + path + "' is not a multiple of the series size");
  }
  series::SeriesCollection collection(series_length);
  collection.mutable_data().resize(static_cast<size_t>(size) / sizeof(float));
  const size_t read = std::fread(collection.mutable_data().data(),
                                 sizeof(float),
                                 collection.mutable_data().size(), f);
  std::fclose(f);
  if (read != collection.mutable_data().size()) {
    return Status::IoError("short read from '" + path + "'");
  }
  return collection;
}

}  // namespace workload
}  // namespace coconut
